//! General (directed) disk graphs with per-station radii.
//!
//! The paper's open problems (Section 1.4) note that with non-uniform
//! transmit powers "the appropriate graph-based model is no longer a
//! unit-disk graph but a (directed) general disk graph, based on disks of
//! arbitrary radii" — and that point location is already harder there.
//! This module provides that model for the comparison harness.

use sinr_geometry::Point;

/// A directed disk graph: vertex `i` has transmission radius `rᵢ`, and
/// there is an arc `i → j` iff `dist(sᵢ, sⱼ) ≤ rᵢ`.
///
/// # Examples
///
/// ```
/// use sinr_graphs::DiskGraph;
/// use sinr_geometry::Point;
///
/// let g = DiskGraph::new(
///     vec![Point::new(0.0, 0.0), Point::new(2.0, 0.0)],
///     vec![3.0, 1.0],
/// );
/// assert!(g.arc(0, 1));  // s0 reaches 2 ≤ 3
/// assert!(!g.arc(1, 0)); // s1 reaches only 1 < 2
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DiskGraph {
    positions: Vec<Point>,
    radii: Vec<f64>,
}

impl DiskGraph {
    /// Creates a disk graph from positions and per-vertex radii.
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ or any radius is not positive and
    /// finite.
    pub fn new(positions: Vec<Point>, radii: Vec<f64>) -> Self {
        assert_eq!(
            positions.len(),
            radii.len(),
            "positions/radii length mismatch"
        );
        assert!(
            radii.iter().all(|r| *r > 0.0 && r.is_finite()),
            "all radii must be positive and finite"
        );
        DiskGraph { positions, radii }
    }

    /// Builds the disk graph induced by transmit powers under path loss
    /// `α`: station `i` covers the points where its *solo* signal would
    /// clear `β·N`, i.e. radius `(ψᵢ/(β·N))^{1/α}`.
    ///
    /// # Panics
    ///
    /// Panics if `noise` or `beta` are not strictly positive, or `alpha`
    /// is not strictly positive.
    pub fn from_powers(
        positions: Vec<Point>,
        powers: &[f64],
        noise: f64,
        beta: f64,
        alpha: f64,
    ) -> Self {
        assert!(noise > 0.0 && beta > 0.0 && alpha > 0.0);
        let radii = powers
            .iter()
            .map(|psi| (psi / (beta * noise)).powf(1.0 / alpha))
            .collect();
        DiskGraph::new(positions, radii)
    }

    /// Number of vertices.
    pub fn len(&self) -> usize {
        self.positions.len()
    }

    /// True when the graph has no vertices.
    pub fn is_empty(&self) -> bool {
        self.positions.is_empty()
    }

    /// The position of vertex `i`.
    pub fn position(&self, i: usize) -> Point {
        self.positions[i]
    }

    /// The radius of vertex `i`.
    pub fn radius(&self, i: usize) -> f64 {
        self.radii[i]
    }

    /// Directed adjacency: does `i` reach `j`?
    pub fn arc(&self, i: usize, j: usize) -> bool {
        i != j && self.positions[i].dist(self.positions[j]) <= self.radii[i]
    }

    /// Does vertex `i`'s disk cover point `p`?
    pub fn covers(&self, i: usize, p: Point) -> bool {
        self.positions[i].dist(p) <= self.radii[i]
    }

    /// Out-neighbours of `i` (vertices its disk covers).
    pub fn out_neighbors(&self, i: usize) -> impl Iterator<Item = usize> + '_ {
        (0..self.len()).filter(move |j| self.arc(i, *j))
    }

    /// In-neighbours of `i` (vertices whose disks cover `i`).
    pub fn in_neighbors(&self, i: usize) -> impl Iterator<Item = usize> + '_ {
        (0..self.len()).filter(move |j| self.arc(*j, i))
    }

    /// True when the arc relation is symmetric (holds automatically for
    /// equal radii — then the disk graph *is* a UDG).
    pub fn is_symmetric(&self) -> bool {
        for i in 0..self.len() {
            for j in 0..i {
                if self.arc(i, j) != self.arc(j, i) {
                    return false;
                }
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn directed_asymmetry() {
        let g = DiskGraph::new(
            vec![
                Point::new(0.0, 0.0),
                Point::new(2.0, 0.0),
                Point::new(5.0, 0.0),
            ],
            vec![10.0, 1.0, 3.5],
        );
        assert!(g.arc(0, 1) && g.arc(0, 2));
        assert!(!g.arc(1, 0) && !g.arc(1, 2));
        assert!(g.arc(2, 1));
        assert!(!g.is_symmetric());
        assert_eq!(g.out_neighbors(0).count(), 2);
        assert_eq!(g.in_neighbors(1).count(), 2);
    }

    #[test]
    fn equal_radii_is_symmetric() {
        let g = DiskGraph::new(
            vec![
                Point::new(0.0, 0.0),
                Point::new(1.0, 0.0),
                Point::new(9.0, 0.0),
            ],
            vec![2.0, 2.0, 2.0],
        );
        assert!(g.is_symmetric());
    }

    #[test]
    fn radii_from_powers() {
        // ψ = 4, β = 1, N = 1, α = 2 ⇒ radius 2.
        let g = DiskGraph::from_powers(
            vec![Point::new(0.0, 0.0), Point::new(10.0, 0.0)],
            &[4.0, 16.0],
            1.0,
            1.0,
            2.0,
        );
        assert!((g.radius(0) - 2.0).abs() < 1e-12);
        assert!((g.radius(1) - 4.0).abs() < 1e-12);
        // α = 4 shrinks radii toward 1: 16^(1/4) = 2.
        let g4 = DiskGraph::from_powers(
            vec![Point::new(0.0, 0.0), Point::new(10.0, 0.0)],
            &[4.0, 16.0],
            1.0,
            1.0,
            4.0,
        );
        assert!((g4.radius(1) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn coverage() {
        let g = DiskGraph::new(vec![Point::ORIGIN], vec![1.5]);
        assert!(g.covers(0, Point::new(1.0, 1.0)));
        assert!(!g.covers(0, Point::new(1.5, 1.5)));
    }

    #[test]
    #[should_panic]
    fn mismatched_lengths_panic() {
        let _ = DiskGraph::new(vec![Point::ORIGIN], vec![1.0, 2.0]);
    }
}
