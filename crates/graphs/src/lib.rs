//! # sinr-graphs
//!
//! Graph-based wireless-network models and their comparison against the
//! SINR model — the substrate behind Section 1 and Figures 2–4 of
//! *"SINR Diagrams"* (Avin et al., PODC 2009).
//!
//! The paper contrasts the physically accurate SINR model with the
//! simplified graph models protocol designers actually use:
//!
//! * [`UnitDiskGraph`] — the classical UDG (also called the *protocol
//!   model*): stations are adjacent iff within unit (or radius-`r`)
//!   distance; a transmission is received iff the receiver is adjacent to
//!   exactly one concurrently transmitting station;
//! * [`DiskGraph`] — the directed generalisation with per-station radii
//!   (the model the paper notes makes point location harder);
//! * [`QuasiUnitDiskGraph`] — Kuhn–Wattenhofer–Zollinger's Q-UDG with an
//!   inner guaranteed-connectivity radius and an outer possible-
//!   connectivity radius (the paper's Theorem 2 "lends support" to this
//!   model);
//! * [`InterferencePair`] — the two-graph formulation: a connectivity
//!   graph plus a (larger) interference graph;
//! * [`compare`] — classification of UDG-vs-SINR reception outcomes
//!   (*false positives* from ignored cumulative interference, *false
//!   negatives* from the naive collision rule), reproducing the
//!   phenomena of Figures 2–4.

#![deny(missing_docs)]
#![deny(unsafe_code)]

pub mod compare;
pub mod diskgraph;
pub mod interference;
pub mod protocol;
pub mod qudg;
pub mod udg;

pub use compare::{classify_at, Comparison, DisagreementCounts};
pub use diskgraph::DiskGraph;
pub use interference::InterferencePair;
pub use protocol::ProtocolModel;
pub use qudg::QuasiUnitDiskGraph;
pub use udg::UnitDiskGraph;
