//! Property-based tests for the graph models and the SINR comparison.

use proptest::prelude::*;
use sinr_core::Network;
use sinr_geometry::Point;
use sinr_graphs::{classify_at, Comparison, InterferencePair, ProtocolModel, UnitDiskGraph};

fn pts(n: std::ops::Range<usize>) -> impl Strategy<Value = Vec<Point>> {
    prop::collection::vec(
        ((-60i32..60), (-60i32..60))
            .prop_map(|(x, y)| Point::new(x as f64 / 10.0, y as f64 / 10.0)),
        n,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// UDG adjacency is symmetric and respects the radius exactly.
    #[test]
    fn udg_symmetry(sites in pts(2..20), r in 0.2f64..4.0) {
        let g = UnitDiskGraph::new(sites.clone(), r);
        for i in 0..g.len() {
            for j in 0..g.len() {
                prop_assert_eq!(g.adjacent(i, j), g.adjacent(j, i));
                if i != j {
                    prop_assert_eq!(g.adjacent(i, j), sites[i].dist(sites[j]) <= r);
                }
            }
        }
    }

    /// Protocol-model reception is unique: at most one station heard at
    /// any point, and `heard_at` agrees with `is_heard`.
    #[test]
    fn protocol_uniqueness(
        sites in pts(2..12),
        r in 0.3f64..3.0,
        qx in -8.0f64..8.0, qy in -8.0f64..8.0,
        mask_bits in any::<u16>(),
    ) {
        let model = ProtocolModel::new(sites.clone(), r);
        let tx: Vec<bool> = (0..sites.len()).map(|i| mask_bits & (1 << i) != 0).collect();
        let q = Point::new(qx, qy);
        let heard: Vec<usize> =
            (0..sites.len()).filter(|&i| model.is_heard(&tx, i, q)).collect();
        prop_assert!(heard.len() <= 1);
        prop_assert_eq!(model.heard_at(&tx, q), heard.first().copied());
    }

    /// Components partition the vertex set.
    #[test]
    fn components_partition(sites in pts(1..25), r in 0.2f64..4.0) {
        let g = UnitDiskGraph::new(sites, r);
        let comps = g.components();
        let mut seen = vec![false; g.len()];
        for comp in &comps {
            for &v in comp {
                prop_assert!(!seen[v], "vertex {} in two components", v);
                seen[v] = true;
            }
        }
        prop_assert!(seen.iter().all(|s| *s));
    }

    /// The interference pair rejects reception whenever the plain UDG
    /// protocol model would (Gi ⊇ Gc makes it strictly more conservative
    /// for the same radius).
    #[test]
    fn interference_pair_conservative(
        sites in pts(2..10),
        r in 0.3f64..2.0,
        mask_bits in any::<u16>(),
    ) {
        let n = sites.len();
        let pair = InterferencePair::from_radii(sites.clone(), r, 2.0 * r);
        let plain = InterferencePair::from_radii(sites.clone(), r, r);
        let tx: Vec<bool> = (0..n).map(|i| mask_bits & (1 << i) != 0).collect();
        for recv in 0..n {
            for send in 0..n {
                if pair.receives(&tx, recv, send) {
                    prop_assert!(
                        plain.receives(&tx, recv, send),
                        "2-hop pair accepted what the plain pair rejected"
                    );
                }
            }
        }
    }

    /// The SINR-vs-UDG classifier is consistent with the individual
    /// models at every point.
    #[test]
    fn classifier_consistency(
        sites in pts(2..7),
        qx in -8.0f64..8.0, qy in -8.0f64..8.0,
    ) {
        // need distinct positions for a valid network
        let mut unique = sites.clone();
        unique.sort_by(|a, b| (a.x, a.y).partial_cmp(&(b.x, b.y)).unwrap());
        unique.dedup_by(|a, b| a.dist(*b) < 1e-9);
        prop_assume!(unique.len() >= 2);
        let net = Network::uniform(unique.clone(), 0.02, 1.5).unwrap();
        let udg = ProtocolModel::new(unique.clone(), 1.0);
        let tx = vec![true; unique.len()];
        let q = Point::new(qx, qy);
        prop_assume!(!unique.contains(&q));
        let outcome = classify_at(&net, &udg, &tx, q);
        let udg_heard = udg.heard_at(&tx, q);
        let sinr_heard = net.heard_at(q);
        match outcome {
            Comparison::AgreeSilent => {
                prop_assert!(udg_heard.is_none() && sinr_heard.is_none())
            }
            Comparison::AgreeHeard(s) => {
                prop_assert_eq!(udg_heard, Some(s.index()));
                prop_assert_eq!(sinr_heard, Some(s));
            }
            Comparison::FalsePositive(s) => {
                prop_assert_eq!(udg_heard, Some(s.index()));
                prop_assert!(sinr_heard.is_none());
            }
            Comparison::FalseNegative(s) => {
                prop_assert!(udg_heard.is_none());
                prop_assert_eq!(sinr_heard, Some(s));
            }
            Comparison::Different { udg: u, sinr: s } => {
                prop_assert_eq!(udg_heard, Some(u.index()));
                prop_assert_eq!(sinr_heard, Some(s));
            }
        }
    }
}
