//! Offline API-compatible subset of the `rand` crate.
//!
//! Implements exactly the surface the `sinr-diagrams` workspace uses:
//! [`Rng::gen_range`] over float and integer ranges,
//! [`SeedableRng::seed_from_u64`], and [`rngs::StdRng`]. The generator is
//! splitmix64 — deterministic and statistically fine for test/benchmark
//! workloads, **not** cryptographic and **not** stream-compatible with the
//! real `StdRng`.

use std::ops::{Range, RangeInclusive};

/// A source of random `u64`s.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// User-facing random-value methods (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// A uniform sample from the given range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_from(self)
    }
}

impl<R: RngCore> Rng for R {}

/// Seeding support (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Range types that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draws one uniform sample from `self`.
    fn sample_from<R: Rng>(self, rng: &mut R) -> T;
}

fn unit_f64(bits: u64) -> f64 {
    // 53 high bits → [0, 1) with full double precision.
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: Rng>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range");
        let u = unit_f64(rng.next_u64());
        let v = self.start + u * (self.end - self.start);
        // Guard against rounding up to the excluded endpoint.
        if v >= self.end {
            self.end - (self.end - self.start) * f64::EPSILON
        } else {
            v
        }
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_from<R: Rng>(self, rng: &mut R) -> f64 {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "empty range");
        lo + unit_f64(rng.next_u64()) * (hi - lo)
    }
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: Rng>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128) % span;
                (self.start as i128 + offset as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: Rng>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let offset = (rng.next_u64() as u128) % span;
                (lo as i128 + offset as i128) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// The bundled generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator (splitmix64).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_and_in_range() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: f64 = a.gen_range(-5.0..=5.0);
            let y: f64 = b.gen_range(-5.0..=5.0);
            assert_eq!(x, y);
            assert!((-5.0..=5.0).contains(&x));
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.gen_range(0.0..1.0), c.gen_range(0.0..1.0));
    }

    #[test]
    fn integer_ranges() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 5];
        for _ in 0..200 {
            let k: usize = rng.gen_range(0..5);
            seen[k] = true;
        }
        assert!(seen.iter().all(|s| *s), "all values hit: {seen:?}");
        for _ in 0..200 {
            let k: i32 = rng.gen_range(-3..=3);
            assert!((-3..=3).contains(&k));
        }
    }

    #[test]
    fn half_open_excludes_end() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let v: f64 = rng.gen_range(0.0..1.0);
            assert!((0.0..1.0).contains(&v));
        }
    }
}
