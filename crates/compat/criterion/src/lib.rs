//! Offline API-compatible subset of the `criterion` crate.
//!
//! Supports the surface the `sinr-diagrams` workspace uses: [`Criterion`],
//! [`BenchmarkGroup`] (`sample_size`, `bench_function`,
//! `bench_with_input`, `finish`), [`BenchmarkId`], [`Bencher::iter`], and
//! the [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Measurement is intentionally lightweight: per benchmark it calibrates
//! an iteration count targeting ~1 ms per sample, takes `sample_size`
//! samples, and prints the median ns/iter to stdout. No plots, no saved
//! baselines, no statistical tests — enough to rank kernels and track
//! regressions by eye or by parsing the one-line-per-benchmark output.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export mirroring `criterion::black_box` (the std implementation).
pub use std::hint::black_box;

/// The benchmark harness entry point.
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            sample_size: 20,
        }
    }

    /// Benchmarks a single function outside any group.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(id, self.sample_size, f);
        self
    }
}

/// A named group of benchmarks sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Benchmarks `f` under `self.name/id`.
    pub fn bench_function<I: IntoBenchmarkId, F>(&mut self, id: I, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into_benchmark_id());
        run_benchmark(&full, self.sample_size, f);
        self
    }

    /// Benchmarks `f` with an input value under `self.name/id`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.into_benchmark_id());
        run_benchmark(&full, self.sample_size, |b| f(b, input));
        self
    }

    /// Ends the group (printing happens per benchmark; this is a no-op
    /// kept for API compatibility).
    pub fn finish(self) {}
}

/// A benchmark identifier: function name, parameter, or both.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id from a function name plus a parameter value.
    pub fn new<S: Into<String>, P: Display>(function_name: S, parameter: P) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// An id from a parameter value alone.
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Conversion into the string id used for reporting.
pub trait IntoBenchmarkId {
    /// The rendered id.
    fn into_benchmark_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> String {
        self
    }
}

/// Timing driver handed to benchmark closures.
#[derive(Debug)]
pub struct Bencher {
    sample_size: usize,
    /// Median ns/iter of the last `iter` call, for the harness to report.
    result_ns: Option<f64>,
}

const TARGET_SAMPLE: Duration = Duration::from_millis(1);
const MAX_TOTAL: Duration = Duration::from_millis(300);

impl Bencher {
    /// Times repeated calls of `f`, recording the median ns per iteration.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Calibrate: grow the per-sample iteration count until one sample
        // takes ~TARGET_SAMPLE (or one call already exceeds it).
        let mut iters: u64 = 1;
        let mut elapsed;
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            elapsed = start.elapsed();
            if elapsed >= TARGET_SAMPLE || iters >= 1 << 24 {
                break;
            }
            let growth = if elapsed.is_zero() {
                16
            } else {
                (TARGET_SAMPLE.as_nanos() / elapsed.as_nanos().max(1)).clamp(2, 16) as u64
            };
            iters = iters.saturating_mul(growth);
        }
        let mut samples = Vec::with_capacity(self.sample_size);
        samples.push(elapsed.as_nanos() as f64 / iters as f64);
        let budget_start = Instant::now();
        for _ in 1..self.sample_size {
            if budget_start.elapsed() > MAX_TOTAL {
                break;
            }
            let start = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            samples.push(start.elapsed().as_nanos() as f64 / iters as f64);
        }
        samples.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
        self.result_ns = Some(samples[samples.len() / 2]);
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(id: &str, sample_size: usize, mut f: F) {
    let mut bencher = Bencher {
        sample_size,
        result_ns: None,
    };
    f(&mut bencher);
    match bencher.result_ns {
        Some(ns) => println!("{id:<60} {:>14} ns/iter", format_ns(ns)),
        None => println!("{id:<60} (no measurement)"),
    }
}

fn format_ns(ns: f64) -> String {
    if ns >= 100.0 {
        format!("{ns:.0}")
    } else {
        format!("{ns:.2}")
    }
}

/// Bundles benchmark functions into one named runner function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generates `main` running the given groups (ignores harness CLI args).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_median() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("compat");
        group.sample_size(3);
        group.bench_with_input(BenchmarkId::new("sum", 64), &64u64, |b, n| {
            b.iter(|| (0..*n).sum::<u64>())
        });
        group.bench_function("noop", |b| b.iter(|| 1 + 1));
        group.finish();
    }

    #[test]
    fn benchmark_ids_render() {
        assert_eq!(BenchmarkId::new("f", 10).into_benchmark_id(), "f/10");
        assert_eq!(BenchmarkId::from_parameter(0.5).into_benchmark_id(), "0.5");
    }
}
