//! Offline API-compatible subset of the `proptest` crate.
//!
//! Supports the surface the `sinr-diagrams` workspace uses: the
//! [`proptest!`] macro with an optional `#![proptest_config(..)]` header,
//! [`Strategy`] with [`Strategy::prop_map`], range and tuple strategies,
//! [`any`], [`collection::vec`], and the `prop_assert!` /
//! `prop_assert_eq!` / `prop_assume!` macros.
//!
//! Cases are generated deterministically from the test name and case
//! index. There is **no shrinking**: a failing case panics with its case
//! seed so it can be replayed by rerunning the test (generation is pure).

use std::ops::Range;

/// Deterministic case-generation RNG (splitmix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// A generator for the given case seed.
    pub fn from_seed(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// FNV-1a, used to derive a per-test base seed from the test name.
pub fn fnv1a(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Why a test case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the inputs; the case is re-drawn.
    Reject,
    /// An assertion failed with this message.
    Fail(String),
}

/// The result type test-case bodies produce.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Runner configuration (subset of the real `ProptestConfig`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases required.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running the given number of cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A generator of values of type `Self::Value`.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// The [`Strategy::prop_map`] combinator.
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        let v = self.start + rng.unit_f64() * (self.end - self.start);
        if v >= self.end {
            self.end - (self.end - self.start) * f64::EPSILON
        } else {
            v
        }
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128) % span;
                (self.start as i128 + offset as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);

/// Types with a canonical whole-domain strategy (subset of `Arbitrary`).
pub trait Arbitrary: Sized {
    /// Draws an arbitrary value of this type.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! int_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// The strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// A strategy over the whole domain of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// A strategy for `Vec`s with lengths drawn from `size`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Generates vectors of elements from `element` with a length in
    /// `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty size range");
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start) as u64;
            let n = self.size.start + (rng.next_u64() % span) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Everything a property-test file needs in scope.
pub mod prelude {
    pub use crate::{
        any, collection, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest,
        Arbitrary, Just, ProptestConfig, Strategy, TestCaseError, TestCaseResult,
    };

    /// Mirror of the real prelude's `prop` re-export of the crate root
    /// (callers write `prop::collection::vec(..)`).
    pub use crate as prop;
}

/// Runs one property test: draws cases until `cases` of them pass,
/// rejecting via `prop_assume!` at most `max_rejects` times.
///
/// This is the runtime behind the [`proptest!`] macro; `run_case` receives
/// the case seed and performs generation + body.
pub fn run_property_test(
    name: &str,
    config: &ProptestConfig,
    mut run_case: impl FnMut(u64) -> TestCaseResult,
) {
    let base = fnv1a(name);
    let max_rejects = 10_000u64.max(config.cases as u64 * 64);
    let mut passed = 0u64;
    let mut rejected = 0u64;
    let mut case = 0u64;
    while passed < config.cases as u64 {
        let seed = base ^ case.wrapping_mul(0xA076_1D64_78BD_642F);
        case += 1;
        match run_case(seed) {
            Ok(()) => passed += 1,
            Err(TestCaseError::Reject) => {
                rejected += 1;
                if rejected > max_rejects {
                    panic!(
                        "property `{name}`: too many prop_assume! rejections \
                         ({rejected} rejects for {passed} passes)"
                    );
                }
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!("property `{name}` failed (case seed {seed:#x}):\n{msg}");
            }
        }
    }
}

/// Defines deterministic property tests (subset of the real macro:
/// optional `#![proptest_config(..)]` header, then `fn name(pat in
/// strategy, ..) { body }` items, each of which becomes a `#[test]`).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { config = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { config = $crate::ProptestConfig::default(); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (config = $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strategy:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            $crate::run_property_test(stringify!($name), &config, |__seed| {
                let mut __rng = $crate::TestRng::from_seed(__seed);
                $(let $arg = $crate::Strategy::generate(&($strategy), &mut __rng);)+
                #[allow(unreachable_code)]
                (move || -> $crate::TestCaseResult {
                    { $body }
                    ::std::result::Result::Ok(())
                })()
            });
        }
    )*};
}

/// Fails the current case unless the condition holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!($($fmt)+)));
        }
    };
}

/// Fails the current case unless the two values are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "assertion failed: {:?} == {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "assertion failed: {:?} == {:?}: {}", l, r, format!($($fmt)+));
    }};
}

/// Fails the current case unless the two values differ.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l != r, "assertion failed: {:?} != {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l != r, "assertion failed: {:?} != {:?}: {}", l, r, format!($($fmt)+));
    }};
}

/// Rejects the current case (it is redrawn) unless the condition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Range strategies stay in range; tuples and prop_map compose.
        #[test]
        fn ranges_and_maps(
            x in -5.0f64..5.0,
            (a, b) in ((0i32..10), (10i32..20)),
            v in prop::collection::vec(0usize..4, 1..6),
            s in any::<u64>(),
        ) {
            prop_assert!((-5.0..5.0).contains(&x));
            prop_assert!((0..10).contains(&a) && (10..20).contains(&b));
            prop_assert!(!v.is_empty() && v.len() < 6);
            prop_assert!(v.iter().all(|e| *e < 4));
            let _ = s;
        }

        /// prop_assume rejections are redrawn, early Ok returns work.
        #[test]
        fn assume_and_early_return(k in 0u32..100) {
            prop_assume!(k % 2 == 0);
            if k == 0 {
                return Ok(());
            }
            prop_assert_eq!(k % 2, 0, "k = {}", k);
            prop_assert_ne!(k, 1);
        }
    }

    #[test]
    #[should_panic(expected = "property `fails`")]
    fn failing_property_panics() {
        crate::run_property_test("fails", &ProptestConfig::with_cases(8), |_seed| {
            Err(TestCaseError::Fail("nope".into()))
        });
    }

    #[test]
    fn determinism() {
        let mut first = Vec::new();
        crate::run_property_test("det", &ProptestConfig::with_cases(5), |seed| {
            first.push(seed);
            Ok(())
        });
        let mut second = Vec::new();
        crate::run_property_test("det", &ProptestConfig::with_cases(5), |seed| {
            second.push(seed);
            Ok(())
        });
        assert_eq!(first, second);
    }
}
