//! End-to-end suite for the shared-engine serving path: named networks
//! (`Register`/`Attach`), RCU snapshot publication, the worker-pool
//! session loop, SINR-quantile frames, and shutdown with idle sessions.
//!
//! The differential discipline is the same as `e2e.rs`: every server
//! answer is compared **bit-for-bit** against a fresh local engine
//! built from a client-side mirror of the network at the same revision.
//! What is new here is *who shares what*: many sessions attached to one
//! named network must answer from one shared snapshot per (backend,
//! revision) — asserted through the registry's introspection surface
//! (`Arc` identity, store counts), not just through answer equality.

use rand::{Rng, SeedableRng};
use sinr_core::engine::{BoxedEngine, QueryEngine};
use sinr_core::{ChannelModel, Located, McConfig, Network, StationId, SurgeryOp};
use sinr_geometry::Point;
use sinr_server::{BackendId, Client, ClientError, ErrorCode, Server, TcpTransport};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn grid_network(n_side: usize) -> Network {
    let mut b = Network::builder().background_noise(0.02).threshold(1.5);
    for i in 0..n_side {
        for j in 0..n_side {
            b = b.station(Point::new(i as f64 * 3.0, j as f64 * 3.0));
        }
    }
    b.build().expect("grid network")
}

fn random_queries(rng: &mut rand::rngs::StdRng, n: usize) -> Vec<Point> {
    (0..n)
        .map(|_| Point::new(rng.gen_range(-8.0..12.0), rng.gen_range(-8.0..12.0)))
        .collect()
}

fn fresh_local(backend: BackendId, mirror: &Network) -> BoxedEngine {
    match backend {
        BackendId::ExactScan => BoxedEngine::exact_scan(mirror),
        BackendId::SimdScan => BoxedEngine::simd_scan(mirror),
        BackendId::VoronoiAssisted => BoxedEngine::voronoi_assisted(mirror),
        BackendId::Qds => unreachable!("qds has its own poisoning test"),
    }
}

fn assert_locate_matches(
    client: &mut Client<TcpTransport>,
    backend: BackendId,
    mirror: &Network,
    points: &[Point],
    what: &str,
) {
    let (rev, answers) = client
        .locate_batch(points)
        .unwrap_or_else(|e| panic!("{what}: locate failed: {e}"));
    assert_eq!(rev, mirror.revision(), "{what}: revision fence");
    let local = fresh_local(backend, mirror);
    let mut expected = vec![Located::Silent; points.len()];
    local.locate_batch(points, &mut expected);
    assert_eq!(answers, expected, "{what}: locate diff");
}

/// Register once, attach several clients with mixed backends, mutate
/// through one of them, and check every answer bit-for-bit against a
/// fresh local engine at the fenced revision — the shared-path
/// differential test.
#[test]
fn attached_sessions_differential_with_mutation() {
    let server = Server::bind("127.0.0.1:0").expect("bind");
    let handle = server.spawn().expect("spawn");
    let addr = handle.addr();

    let mut mirror = grid_network(3);
    let mut registrar = Client::connect(addr).expect("connect");
    let rev = registrar
        .register_network("cell-grid", &mirror)
        .expect("register");
    assert_eq!(rev, 0);

    let backends = [
        BackendId::ExactScan,
        BackendId::SimdScan,
        BackendId::VoronoiAssisted,
        BackendId::ExactScan,
    ];
    let mut clients: Vec<(Client<TcpTransport>, BackendId)> = backends
        .iter()
        .map(|&backend| {
            let mut c = Client::connect(addr).expect("connect");
            let rev = c.attach("cell-grid", backend, 0.0).expect("attach");
            assert_eq!(rev, mirror.revision(), "attach revision");
            (c, backend)
        })
        .collect();

    let mut rng = rand::rngs::StdRng::seed_from_u64(0x5A4E);
    for round in 0..12 {
        // Every attached session answers for the current shared
        // revision, each through its own backend.
        let points = random_queries(&mut rng, 48);
        for (client, backend) in &mut clients {
            assert_locate_matches(
                client,
                *backend,
                &mirror,
                &points,
                &format!("round {round}"),
            );
        }
        // SINR + quantiles through one of the clients (exact kernels
        // are shared, so any backend agrees with ExactScan on sinrs).
        let station = StationId(rng.gen_range(0..mirror.len()));
        let (rev, sinrs) = clients[0]
            .0
            .sinr_batch(station, &points)
            .expect("sinr_batch");
        assert_eq!(rev, mirror.revision());
        let local = fresh_local(BackendId::ExactScan, &mirror);
        let mut expected = vec![0.0; points.len()];
        local.sinr_batch(station, &points, &mut expected);
        for (k, (got, want)) in sinrs.iter().zip(&expected).enumerate() {
            assert!(
                got == want || (got.is_infinite() && want.is_infinite()),
                "sinr diff at {k}: {got} vs {want}"
            );
        }

        // Mutate through a rotating client; every mirror-valid op list
        // is accepted once, fenced at the shared revision.
        let mutator = round % clients.len();
        let op = SurgeryOp::Move {
            id: StationId(rng.gen_range(0..mirror.len())),
            to: Point::new(rng.gen_range(-6.0..10.0), rng.gen_range(-6.0..10.0)),
        };
        let fenced = mirror.revision();
        mirror.apply_op(&op).expect("mirror op");
        let new_rev = clients[mutator]
            .0
            .mutate(fenced, &[op])
            .expect("shared mutate");
        assert_eq!(new_rev, mirror.revision(), "published revision");
    }

    // A mutate fenced at a stale revision is rejected for everyone.
    let op = SurgeryOp::Move {
        id: StationId(0),
        to: Point::new(1.0, 1.0),
    };
    match clients[1].0.mutate(0, &[op]) {
        Err(ClientError::Server { code, .. }) => assert_eq!(code, ErrorCode::RevisionMismatch),
        other => panic!("expected RevisionMismatch, got {other:?}"),
    }

    drop(clients);
    drop(registrar);
    handle.shutdown();
}

/// The memory-scaling acceptance test: N sessions attached with one
/// backend share exactly one snapshot store and one published snapshot
/// `Arc`; a mutation publishes a *new* snapshot while the old one —
/// still held by an in-flight reader — keeps answering at its own
/// revision and is freed when that reader lets go.
#[test]
fn snapshots_are_shared_and_rcu_published() {
    let server = Server::bind("127.0.0.1:0").expect("bind");
    let registry = server.registry();
    let handle = server.spawn().expect("spawn");
    let addr = handle.addr();

    let mut mirror = grid_network(3);
    let mut clients: Vec<Client<TcpTransport>> = Vec::new();
    let mut first = Client::connect(addr).expect("connect");
    first.register_network("shared", &mirror).expect("register");
    first
        .attach("shared", BackendId::ExactScan, 0.0)
        .expect("attach");
    clients.push(first);
    for _ in 0..7 {
        let mut c = Client::connect(addr).expect("connect");
        c.attach("shared", BackendId::ExactScan, 0.0)
            .expect("attach");
        clients.push(c);
    }
    let probe = [Point::new(0.5, 0.2), Point::new(4.0, 4.0)];
    for c in &mut clients {
        let (rev, _) = c.locate_batch(&probe).expect("query");
        assert_eq!(rev, 0);
    }

    let named = registry.get("shared").expect("registered network");
    assert_eq!(
        named.store_count(),
        1,
        "8 sessions, one backend: exactly one store"
    );

    // One published snapshot Arc, shared by every load of revision 0.
    let snap0 = named
        .snapshot(BackendId::ExactScan, 0.0)
        .expect("published snapshot");
    let again = named.snapshot(BackendId::ExactScan, 0.0).expect("reload");
    assert!(Arc::ptr_eq(&snap0, &again), "loads of one revision share");
    drop(again);
    assert_eq!(snap0.revision(), 0);

    // A second backend flavour adds exactly one more store — memory
    // scales with (network, backend) pairs, not with session count.
    let mut simd = Client::connect(addr).expect("connect");
    simd.attach("shared", BackendId::SimdScan, 0.0)
        .expect("attach simd");
    assert_eq!(named.store_count(), 2);

    // Mutate: a NEW snapshot is published for everyone...
    let before = snap0
        .engine()
        .try_locate(Point::new(0.5, 0.2))
        .expect("old snapshot serves");
    let op = SurgeryOp::Move {
        id: StationId(0),
        to: Point::new(7.5, 7.5),
    };
    mirror.apply_op(&op).expect("mirror op");
    let new_rev = clients[3]
        .mutate(0, &[op])
        .expect("mutate through an attached session");
    assert_eq!(new_rev, 1);
    let snap1 = named
        .snapshot(BackendId::ExactScan, 0.0)
        .expect("new snapshot");
    assert_eq!(snap1.revision(), 1);
    assert!(
        !Arc::ptr_eq(&snap0, &snap1),
        "mutation must publish a fresh snapshot"
    );

    // ...while the old Arc (an in-flight reader) still answers for its
    // own revision, unaffected by the mutation (RCU grace period).
    assert_eq!(
        snap0
            .engine()
            .try_locate(Point::new(0.5, 0.2))
            .expect("frozen snapshot never goes stale"),
        before
    );
    assert_eq!(snap0.revision(), 0);
    // The store released revision 0 at publication: this test is the
    // last holder, so dropping `snap0` frees that engine.
    assert_eq!(Arc::strong_count(&snap0), 1, "old snapshot ready to free");

    // Every attached session observes the new revision on its next
    // query, bit-identically to a fresh local engine at that revision.
    for c in &mut clients {
        assert_locate_matches(c, BackendId::ExactScan, &mirror, &probe, "post-mutate");
    }

    drop(clients);
    drop(simd);
    handle.shutdown();
}

/// The worker-pool acceptance test: hundreds of concurrent connections
/// on a fixed-size pool, all attached to one named network, mixing
/// Attach / Mutate / LocateBatch — every answer bit-identical to a
/// fresh local engine at the fenced revision.
#[test]
fn worker_pool_serves_hundreds_of_light_clients() {
    const CLIENTS: usize = 260;
    const POOL: usize = 4;

    let server = Server::bind("127.0.0.1:0").expect("bind");
    let handle = server.spawn_pooled(POOL).expect("spawn pooled");
    let addr = handle.addr();

    let mut mirror = grid_network(3);
    let mut registrar = Client::connect(addr).expect("connect");
    registrar
        .register_network("popular", &mirror)
        .expect("register");

    // Hundreds of concurrently-open light sessions on POOL worker
    // threads. All attach up front and stay connected throughout.
    let mut clients: Vec<Client<TcpTransport>> = (0..CLIENTS)
        .map(|k| {
            let mut c = Client::connect(addr).unwrap_or_else(|e| panic!("connect client {k}: {e}"));
            let rev = c
                .attach("popular", BackendId::ExactScan, 0.0)
                .unwrap_or_else(|e| panic!("attach client {k}: {e}"));
            assert_eq!(rev, 0);
            c
        })
        .collect();

    // Two query phases around a mutation, each phase driven by 8
    // threads over disjoint slices of the open connections — real
    // concurrent in-flight frames on the pool.
    for phase in 0..2 {
        let mirror_ref = &mirror;
        std::thread::scope(|s| {
            for (slice_idx, chunk) in clients.chunks_mut(CLIENTS / 8 + 1).enumerate() {
                s.spawn(move || {
                    let mut rng = rand::rngs::StdRng::seed_from_u64(
                        0xC11E47 ^ ((phase as u64) << 32) ^ slice_idx as u64,
                    );
                    for (k, client) in chunk.iter_mut().enumerate() {
                        let points = random_queries(&mut rng, 24);
                        assert_locate_matches(
                            client,
                            BackendId::ExactScan,
                            mirror_ref,
                            &points,
                            &format!("phase {phase}, slice {slice_idx}, client {k}"),
                        );
                    }
                });
            }
        });
        if phase == 0 {
            // One attached session mutates; every one of the hundreds
            // of others observes the published snapshot next query.
            let op = SurgeryOp::Move {
                id: StationId(4),
                to: Point::new(-2.0, 5.0),
            };
            let fenced = mirror.revision();
            mirror.apply_op(&op).expect("mirror op");
            let rev = clients[17].mutate(fenced, &[op]).expect("pooled mutate");
            assert_eq!(rev, mirror.revision());
        }
    }

    // The pool multiplexed every connection: store sharing held.
    let named = handle.registry().get("popular").expect("registered");
    assert_eq!(named.store_count(), 1);

    drop(clients);
    drop(registrar);
    handle.shutdown();
}

/// The pooled and threaded servers speak the same protocol: one mixed
/// script (bind-private, register, attach, quantiles, mutate) answered
/// bit-identically by both.
#[test]
fn pooled_answers_match_threaded_answers() {
    let run = |pooled: bool| -> (Vec<Located>, Vec<f64>, Vec<f64>) {
        let server = Server::bind("127.0.0.1:0").expect("bind");
        let handle = if pooled {
            server.spawn_pooled(2).expect("spawn pooled")
        } else {
            server.spawn().expect("spawn threaded")
        };
        let addr = handle.addr();
        let mut mirror = grid_network(2);

        let mut a = Client::connect(addr).expect("connect");
        a.register_network("n", &mirror).expect("register");
        a.attach("n", BackendId::SimdScan, 0.0).expect("attach");
        let mut b = Client::connect(addr).expect("connect");
        b.attach("n", BackendId::SimdScan, 0.0).expect("attach");

        let op = SurgeryOp::SetPower {
            id: StationId(1),
            power: 1.7,
        };
        mirror.apply_op(&op).expect("mirror");
        a.mutate(0, &[op]).expect("mutate");

        let points: Vec<Point> = (0..40)
            .map(|k| Point::new(k as f64 * 0.31 - 4.0, (k % 7) as f64 * 0.83 - 2.0))
            .collect();
        let (rev, located) = b.locate_batch(&points).expect("locate");
        assert_eq!(rev, 1);
        let (_, sinrs) = b.sinr_batch(StationId(0), &points).expect("sinrs");
        let (_, quants) = b
            .sinr_quantiles_batch(
                StationId(0),
                16,
                7,
                &ChannelModel::LogNormalShadowing { sigma_db: 3.0 },
                &[0.1, 0.5, 0.9],
                &points,
            )
            .expect("quantiles");
        drop(a);
        drop(b);
        handle.shutdown();
        (located, sinrs, quants)
    };

    let (loc_t, sinr_t, quant_t) = run(false);
    let (loc_p, sinr_p, quant_p) = run(true);
    assert_eq!(loc_t, loc_p, "locate answers differ across serving modes");
    for (a, b) in sinr_t.iter().zip(&sinr_p) {
        assert_eq!(a.to_bits(), b.to_bits(), "sinr answers differ");
    }
    for (a, b) in quant_t.iter().zip(&quant_p) {
        assert_eq!(a.to_bits(), b.to_bits(), "quantile answers differ");
    }
}

/// `SinrQuantilesBatch` differential on both the private (`Bind`) and
/// shared (`Attach`) paths, plus its typed failure corners.
#[test]
fn quantiles_differential_and_typed_corners() {
    let server = Server::bind("127.0.0.1:0").expect("bind");
    let handle = server.spawn().expect("spawn");
    let addr = handle.addr();
    let net = grid_network(3);
    let mut rng = rand::rngs::StdRng::seed_from_u64(0x0CAF);

    let check = |client: &mut Client<TcpTransport>, what: &str, rng: &mut rand::rngs::StdRng| {
        let channel = ChannelModel::LogNormalShadowing { sigma_db: 2.5 };
        let quantiles = [0.0, 0.25, 0.5, 0.9, 1.0];
        let points = random_queries(rng, 33);
        let station = StationId(2);
        let (rev, values) = client
            .sinr_quantiles_batch(station, 24, 99, &channel, &quantiles, &points)
            .unwrap_or_else(|e| panic!("{what}: quantiles failed: {e}"));
        assert_eq!(rev, 0, "{what}");
        assert_eq!(values.len(), points.len() * quantiles.len(), "{what}");
        let local = BoxedEngine::exact_scan(&net);
        let mut expected = vec![0.0; values.len()];
        local
            .sinr_quantiles_batch(
                &channel,
                McConfig::new(24, 99),
                station,
                &points,
                &quantiles,
                &mut expected,
            )
            .expect("local replay");
        for (k, (got, want)) in values.iter().zip(&expected).enumerate() {
            assert_eq!(
                got.to_bits(),
                want.to_bits(),
                "{what}: quantile diff at slot {k}: {got} vs {want}"
            );
        }
    };

    // Private path.
    let mut private = Client::connect(addr).expect("connect");
    private
        .bind_network(BackendId::ExactScan, 0.0, &net)
        .expect("bind");
    check(&mut private, "private", &mut rng);

    // Shared path: same answers, served from the shared snapshot.
    private.register_network("q", &net).expect("register");
    let mut shared = Client::connect(addr).expect("connect");
    shared
        .attach("q", BackendId::ExactScan, 0.0)
        .expect("attach");
    check(&mut shared, "attached", &mut rng);

    // Typed corners, all per-request (the session survives each).
    let p = [Point::new(0.5, 0.5)];
    match shared.sinr_quantiles_batch(
        StationId(99),
        8,
        1,
        &ChannelModel::Deterministic,
        &[0.5],
        &p,
    ) {
        Err(ClientError::Server { code, .. }) => assert_eq!(code, ErrorCode::StationOutOfRange),
        other => panic!("expected StationOutOfRange, got {other:?}"),
    }
    match shared.sinr_quantiles_batch(StationId(0), 8, 1, &ChannelModel::Deterministic, &[1.5], &p)
    {
        Err(ClientError::Server { code, .. }) => assert_eq!(code, ErrorCode::InvalidChannel),
        other => panic!("expected InvalidChannel for quantile 1.5, got {other:?}"),
    }
    // A grid whose response could not fit one frame is refused, typed.
    let many_points = vec![Point::new(0.0, 0.0); 60_000];
    let many_quantiles = vec![0.5; 40_000];
    match shared.sinr_quantiles_batch(
        StationId(0),
        8,
        1,
        &ChannelModel::Deterministic,
        &many_quantiles,
        &many_points,
    ) {
        Err(ClientError::Server { code, message }) => {
            assert_eq!(code, ErrorCode::MalformedFrame);
            assert!(message.contains("frame limit"), "message: {message}");
        }
        other => panic!("expected MalformedFrame for oversized grid, got {other:?}"),
    }
    // Still attached and serving after every typed error.
    let (rev, _) = shared.locate_batch(&p).expect("still attached");
    assert_eq!(rev, 0);

    drop(private);
    drop(shared);
    handle.shutdown();
}

/// A mutation the attached backend cannot represent poisons only that
/// backend's shared store: its sessions detach with a typed error (and
/// can re-attach with a capable backend); other backends keep serving.
#[test]
fn poisoned_store_detaches_only_its_backend() {
    let server = Server::bind("127.0.0.1:0").expect("bind");
    let handle = server.spawn().expect("spawn");
    let addr = handle.addr();

    // β > 1, uniform power: qds-eligible.
    let net = Network::uniform(
        vec![
            Point::new(0.0, 0.0),
            Point::new(6.0, 0.0),
            Point::new(3.0, 5.0),
        ],
        0.01,
        1.6,
    )
    .expect("uniform net");

    let mut exact = Client::connect(addr).expect("connect");
    exact.register_network("uni", &net).expect("register");
    exact
        .attach("uni", BackendId::ExactScan, 0.0)
        .expect("attach exact");
    let mut qds = Client::connect(addr).expect("connect");
    qds.attach("uni", BackendId::Qds, 0.25).expect("attach qds");

    let probe = [Point::new(0.5, 0.1)];
    qds.locate_batch(&probe).expect("qds serves while uniform");
    let named = handle.registry().get("uni").expect("registered");
    assert_eq!(named.store_count(), 2);

    // Non-uniform power: the qds store cannot follow and is poisoned.
    let rev = exact
        .mutate(
            0,
            &[SurgeryOp::SetPower {
                id: StationId(0),
                power: 2.0,
            }],
        )
        .expect("the mutation itself succeeds");
    assert_eq!(rev, 1);
    assert_eq!(named.store_count(), 1, "poisoned store dropped");

    // The qds session detaches with the typed code...
    match qds.locate_batch(&probe) {
        Err(ClientError::Server { code, message }) => {
            assert_eq!(code, ErrorCode::UnknownNetwork);
            assert!(message.contains("detached"), "message: {message}");
        }
        other => panic!("expected UnknownNetwork detach, got {other:?}"),
    }
    // ...is then unbound...
    match qds.locate_batch(&probe) {
        Err(ClientError::Server { code, .. }) => assert_eq!(code, ErrorCode::NotBound),
        other => panic!("expected NotBound after detach, got {other:?}"),
    }
    // ...and may re-attach with a backend that can represent the
    // mutated network.
    let rev = qds
        .attach("uni", BackendId::SimdScan, 0.0)
        .expect("re-attach");
    assert_eq!(rev, 1);
    qds.locate_batch(&probe).expect("serving again");

    // The exact session never noticed.
    let (rev, _) = exact.locate_batch(&probe).expect("exact still attached");
    assert_eq!(rev, 1);

    drop(exact);
    drop(qds);
    handle.shutdown();
}

/// Registration and attachment failure corners, all typed and all
/// survivable.
#[test]
fn register_attach_corners_are_typed() {
    let server = Server::bind("127.0.0.1:0").expect("bind");
    let handle = server.spawn().expect("spawn");
    let addr = handle.addr();
    let net = grid_network(2);

    let mut c = Client::connect(addr).expect("connect");
    // Attach before anything is registered: UnknownNetwork, session
    // stays usable.
    match c.attach("ghost", BackendId::ExactScan, 0.0) {
        Err(ClientError::Server { code, .. }) => assert_eq!(code, ErrorCode::UnknownNetwork),
        other => panic!("expected UnknownNetwork, got {other:?}"),
    }
    c.register_network("réseau-7", &net).expect("register");
    // Duplicate name: NameTaken.
    match c.register_network("réseau-7", &net) {
        Err(ClientError::Server { code, .. }) => assert_eq!(code, ErrorCode::NameTaken),
        other => panic!("expected NameTaken, got {other:?}"),
    }
    // Bad qds epsilon at attach: BackendBuild, still unbound.
    match c.attach("réseau-7", BackendId::Qds, 2.0) {
        Err(ClientError::Server { code, .. }) => assert_eq!(code, ErrorCode::BackendBuild),
        other => panic!("expected BackendBuild, got {other:?}"),
    }
    c.attach("réseau-7", BackendId::ExactScan, 0.0)
        .expect("attach after errors");
    // Attach while attached / bind while attached: AlreadyBound.
    match c.attach("réseau-7", BackendId::ExactScan, 0.0) {
        Err(ClientError::Server { code, .. }) => assert_eq!(code, ErrorCode::AlreadyBound),
        other => panic!("expected AlreadyBound, got {other:?}"),
    }
    match c.bind_network(BackendId::ExactScan, 0.0, &net) {
        Err(ClientError::Server { code, .. }) => assert_eq!(code, ErrorCode::AlreadyBound),
        other => panic!("expected AlreadyBound, got {other:?}"),
    }
    // Register from an attached session is fine (mode unchanged).
    c.register_network("second", &net)
        .expect("register while attached");
    let (rev, _) = c
        .locate_batch(&[Point::new(0.1, 0.1)])
        .expect("still attached");
    assert_eq!(rev, 0);

    // A bound (private) session may also register, and its binding
    // survives.
    let mut private = Client::connect(addr).expect("connect");
    private
        .bind_network(BackendId::SimdScan, 0.0, &net)
        .expect("bind");
    private
        .register_network("third", &net)
        .expect("register from bound session");
    match private.attach("third", BackendId::ExactScan, 0.0) {
        Err(ClientError::Server { code, .. }) => assert_eq!(code, ErrorCode::AlreadyBound),
        other => panic!("expected AlreadyBound, got {other:?}"),
    }
    private
        .locate_batch(&[Point::new(0.0, 0.0)])
        .expect("binding intact");

    drop(c);
    drop(private);
    handle.shutdown();
}

/// The shutdown fix: idle connected sessions (threads parked in
/// `read(2)`) no longer wedge `ServerHandle::shutdown` — their sockets
/// are closed and the join returns promptly.
#[test]
fn shutdown_returns_despite_idle_connected_sessions() {
    let server = Server::bind("127.0.0.1:0").expect("bind");
    let handle = server.spawn().expect("spawn");
    let addr = handle.addr();

    // Three connected clients; one bound mid-conversation, two idle
    // since connecting. None will ever disconnect on their own.
    let mut bound = Client::connect(addr).expect("connect");
    bound
        .bind_network(BackendId::ExactScan, 0.0, &grid_network(2))
        .expect("bind");
    let idle_a = Client::connect(addr).expect("connect");
    let idle_b = Client::connect(addr).expect("connect");

    let started = Instant::now();
    handle.shutdown();
    let took = started.elapsed();
    assert!(
        took < Duration::from_secs(8),
        "shutdown wedged on idle sessions: {took:?}"
    );
    drop(bound);
    drop(idle_a);
    drop(idle_b);
}

/// Same contract for the worker-pool server.
#[test]
fn pooled_shutdown_returns_despite_idle_sessions() {
    let server = Server::bind("127.0.0.1:0").expect("bind");
    let handle = server.spawn_pooled(2).expect("spawn pooled");
    let addr = handle.addr();

    let mut active = Client::connect(addr).expect("connect");
    active
        .register_network("n", &grid_network(2))
        .expect("register");
    active
        .attach("n", BackendId::ExactScan, 0.0)
        .expect("attach");
    active
        .locate_batch(&[Point::new(0.0, 0.0)])
        .expect("serving");
    let idle = Client::connect(addr).expect("connect");

    let started = Instant::now();
    handle.shutdown();
    let took = started.elapsed();
    assert!(
        took < Duration::from_secs(8),
        "pooled shutdown wedged: {took:?}"
    );
    drop(active);
    drop(idle);
}

/// `HeatmapBatch` differential: the server's hierarchical raster must
/// equal a local dense raster pixel-for-pixel, in both engine-ownership
/// modes, and the guard rails (degenerate window, oversized grid,
/// unbound session) must answer typed errors without killing the
/// session.
#[test]
fn heatmap_batch_differential_and_guards() {
    let server = Server::bind("127.0.0.1:0").expect("bind");
    let handle = server.spawn().expect("spawn");
    let addr = handle.addr();
    let net = grid_network(3);
    let min = Point::new(-4.0, -3.0);
    let max = Point::new(10.0, 9.5);
    let (w, h) = (96u32, 64u32);

    let check = |client: &mut Client<TcpTransport>, backend: BackendId, what: &str| {
        let (rev, cells, cells_evaluated) = client
            .heatmap_batch(min, max, w, h)
            .unwrap_or_else(|e| panic!("{what}: heatmap failed: {e}"));
        assert_eq!(rev, net.revision(), "{what}: revision fence");
        assert_eq!(cells.len(), (w * h) as usize, "{what}: pixel count");
        assert!(
            cells_evaluated <= u64::from(w * h),
            "{what}: evaluated more pixels than exist"
        );
        // The server contract: identical to locating every pixel centre
        // on the same backend (dense raster, bottom-first row-major).
        let local = fresh_local(backend, &net);
        let dense = sinr_diagram::ReceptionMap::compute_with_engine(
            &local,
            sinr_geometry::BBox::new(min, max),
            w as usize,
            h as usize,
        );
        for row in 0..h as usize {
            for col in 0..w as usize {
                let expected = match dense.at(col, row) {
                    sinr_diagram::PixelLabel::Heard(i) => Located::Reception(i),
                    sinr_diagram::PixelLabel::Silent => Located::Silent,
                };
                assert_eq!(
                    cells[row * w as usize + col],
                    expected,
                    "{what}: pixel ({col}, {row})"
                );
            }
        }
    };

    // Private mode.
    let mut private = Client::connect(addr).expect("connect");
    private
        .bind_network(BackendId::VoronoiAssisted, 0.0, &net)
        .expect("bind");
    check(&mut private, BackendId::VoronoiAssisted, "private");

    // Attached mode (shared snapshot).
    let mut registrar = Client::connect(addr).expect("connect");
    registrar.register_network("heat", &net).expect("register");
    let mut attached = Client::connect(addr).expect("connect");
    attached
        .attach("heat", BackendId::SimdScan, 0.0)
        .expect("attach");
    check(&mut attached, BackendId::SimdScan, "attached");

    // Unbound session: NotBound, survivable.
    let mut unbound = Client::connect(addr).expect("connect");
    match unbound.heatmap_batch(min, max, w, h) {
        Err(ClientError::Server { code, .. }) => assert_eq!(code, ErrorCode::NotBound),
        other => panic!("expected NotBound, got {other:?}"),
    }

    // Degenerate windows and zero dims: MalformedFrame, survivable.
    for (bad_min, bad_max, bw, bh) in [
        (min, max, 0u32, 64u32),
        (min, max, 64, 0),
        (min, Point::new(min.x, max.y), 8, 8),
        (min, Point::new(max.x, min.y), 8, 8),
        (Point::new(f64::NAN, 0.0), max, 8, 8),
        (Point::new(f64::NEG_INFINITY, -1.0), max, 8, 8),
    ] {
        match private.heatmap_batch(bad_min, bad_max, bw, bh) {
            Err(ClientError::Server { code, .. }) => {
                assert_eq!(
                    code,
                    ErrorCode::MalformedFrame,
                    "for {bad_min:?}..{bad_max:?} {bw}x{bh}"
                )
            }
            other => panic!("expected MalformedFrame, got {other:?}"),
        }
    }
    // Regression: a 2048² grid (4 Mi pixels — whose *worst-case* RLE
    // would be 9 B/pixel ≈ 36 MiB, over the frame limit) must round-trip
    // over the wire, because its *actual* run-length encoding of a few
    // dozen fat reception zones is a few hundred KB. The old guard
    // refused this on the worst-case estimate before computing anything.
    {
        let (w2, h2) = (2048u32, 2048u32);
        let (rev, cells, _) = private
            .heatmap_batch(min, max, w2, h2)
            .expect("2048x2048 near-uniform heatmap must round-trip");
        assert_eq!(rev, net.revision(), "2048²: revision fence");
        assert_eq!(cells.len(), (w2 as usize) * (h2 as usize), "2048²: pixels");
        // Pixel-for-pixel against the same hierarchical raster computed
        // locally (itself pinned bit-identical to the dense sweep by the
        // diagram suites).
        let local = fresh_local(BackendId::VoronoiAssisted, &net);
        let (map, _) = sinr_diagram::ReceptionMap::compute_hierarchical_with_engine(
            &local,
            sinr_geometry::BBox::new(min, max),
            w2 as usize,
            h2 as usize,
        );
        for row in 0..h2 as usize {
            for col in 0..w2 as usize {
                let expected = match map.at(col, row) {
                    sinr_diagram::PixelLabel::Heard(i) => Located::Reception(i),
                    sinr_diagram::PixelLabel::Silent => Located::Silent,
                };
                assert_eq!(
                    cells[row * w2 as usize + col],
                    expected,
                    "2048² ({col}, {row})"
                );
            }
        }
    }
    // A grid over the dense pixel cap (16 Mi pixels): refused before any
    // computation — that cap bounds the materialised raster and the
    // client's decode allocation, not the encoded size…
    match private.heatmap_batch(min, max, 8192, 8192) {
        Err(ClientError::Server { code, .. }) => assert_eq!(code, ErrorCode::MalformedFrame),
        other => panic!("expected MalformedFrame for over-cap grid, got {other:?}"),
    }
    // …and the session still serves afterwards.
    check(
        &mut private,
        BackendId::VoronoiAssisted,
        "private after errors",
    );

    drop(private);
    drop(registrar);
    drop(attached);
    drop(unbound);
    handle.shutdown();
}

/// `Unregister` lifecycle: unknown names are typed, live attachments
/// refuse with `StillAttached`, a detached network unregisters, and the
/// name becomes reusable — with the refcount observable through the
/// registry the whole way.
#[test]
fn unregister_refcount_lifecycle() {
    let server = Server::bind("127.0.0.1:0").expect("bind");
    let registry = server.registry();
    let handle = server.spawn().expect("spawn");
    let addr = handle.addr();
    let net = grid_network(2);

    let mut admin = Client::connect(addr).expect("connect");
    match admin.unregister_network("ghost") {
        Err(ClientError::Server { code, .. }) => assert_eq!(code, ErrorCode::UnknownNetwork),
        other => panic!("expected UnknownNetwork, got {other:?}"),
    }
    admin.register_network("grid", &net).expect("register");
    assert_eq!(
        registry.get("grid").expect("registered").attached_count(),
        0
    );

    let mut attacher = Client::connect(addr).expect("connect");
    attacher
        .attach("grid", BackendId::ExactScan, 0.0)
        .expect("attach");
    assert_eq!(
        registry.get("grid").expect("registered").attached_count(),
        1
    );
    match admin.unregister_network("grid") {
        Err(ClientError::Server { code, message }) => {
            assert_eq!(code, ErrorCode::StillAttached);
            assert!(message.contains("1 session"), "message: {message}");
        }
        other => panic!("expected StillAttached, got {other:?}"),
    }
    // The refusal changed nothing: the attached session keeps serving.
    attacher
        .locate_batch(&[Point::new(0.0, 0.0)])
        .expect("still attached and serving");

    // Closing the attached session releases the refcount (the session
    // thread drops its guard on EOF — poll for it).
    drop(attacher);
    let network = registry.get("grid").expect("still registered");
    let deadline = Instant::now() + Duration::from_secs(10);
    while network.attached_count() > 0 {
        assert!(
            Instant::now() < deadline,
            "attachment refcount never released after session close"
        );
        std::thread::sleep(Duration::from_millis(5));
    }
    admin.unregister_network("grid").expect("unregister");
    assert!(registry.get("grid").is_none(), "name gone after unregister");

    // The name is reusable immediately.
    admin
        .register_network("grid", &net)
        .expect("re-register after unregister");

    drop(admin);
    handle.shutdown();
}
