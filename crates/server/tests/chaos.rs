//! Chaos e2e suite: fleets of fault-injected clients against both
//! serving modes, session deadlines, overload shedding, bounded
//! shutdown under half-frame clients, and the reconnecting client.
//!
//! The differential discipline is the same as `e2e.rs` — every answer
//! that **completes** is compared bit-for-bit against a fresh local
//! engine built from a client-side mirror at the same revision. Chaos
//! changes *delivery*, never *content*: a chaotic client may die
//! mid-frame (its seed schedules a cut) and its session simply ends,
//! but no amount of byte-chopping, delay, or short writes may perturb
//! a single answered bit. Every fault schedule derives from a `u64`
//! seed printed in the failure message, so any failure replays.

use rand::{Rng, SeedableRng};
use sinr_core::engine::{BoxedEngine, QueryEngine};
use sinr_core::{ExactScan, Located, Network, StationId, SurgeryOp};
use sinr_geometry::Point;
use sinr_server::server::ServerConfig;
use sinr_server::{
    BackendId, ChaosConfig, ChaosStream, Client, ClientError, ErrorCode, IoTransport,
    ResilientClient, RetryPolicy, Server, ServerHandle,
};
use std::io::Write;
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

const FLEET_SIZE: usize = 64;

/// Transport-level failures a chaotic client is *expected* to see when
/// its own seed cuts the connection (or the server evicts it). Anything
/// else — a typed server error, a wrong answer — is a real bug.
fn transportish(e: &ClientError) -> bool {
    matches!(
        e,
        ClientError::Io(_) | ClientError::Recv(_) | ClientError::ConnectionClosed
    )
}

fn separated_points(rng: &mut rand::rngs::StdRng, n: usize) -> Vec<Point> {
    let mut pts: Vec<Point> = Vec::with_capacity(n);
    let mut guard = 0;
    while pts.len() < n && guard < 10_000 {
        guard += 1;
        let cand = Point::new(rng.gen_range(-5.0..=5.0), rng.gen_range(-5.0..=5.0));
        if pts.iter().all(|p| p.dist(cand) >= 0.8) {
            pts.push(cand);
        }
    }
    pts
}

fn random_network(seed: u64) -> Network {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let n = rng.gen_range(4..8);
    let pts = separated_points(&mut rng, n);
    let mut b = Network::builder()
        .background_noise(0.02)
        .threshold(if rng.gen_range(0..2) == 0 { 0.7 } else { 1.8 });
    for p in pts {
        b = b.station_with_power(p, rng.gen_range(0.5..2.5));
    }
    b.build().expect("≥ 4 separated stations")
}

fn random_queries(rng: &mut rand::rngs::StdRng, n: usize) -> Vec<Point> {
    (0..n)
        .map(|_| Point::new(rng.gen_range(-8.0..8.0), rng.gen_range(-8.0..8.0)))
        .collect()
}

fn random_timestep(rng: &mut rand::rngs::StdRng, mirror: &mut Network) -> Vec<SurgeryOp> {
    let steps = rng.gen_range(1..4);
    let mut ops = Vec::with_capacity(steps);
    for _ in 0..steps {
        let op = match rng.gen_range(0..6) {
            0 | 1 => SurgeryOp::Add {
                position: Point::new(rng.gen_range(-6.0..6.0), rng.gen_range(-6.0..6.0)),
                power: rng.gen_range(0.5..2.5),
            },
            2 if mirror.len() > 3 => SurgeryOp::Remove {
                id: StationId(rng.gen_range(0..mirror.len())),
            },
            3 | 4 => SurgeryOp::Move {
                id: StationId(rng.gen_range(0..mirror.len())),
                to: Point::new(rng.gen_range(-6.0..6.0), rng.gen_range(-6.0..6.0)),
            },
            _ => SurgeryOp::SetPower {
                id: StationId(rng.gen_range(0..mirror.len())),
                power: rng.gen_range(0.5..2.5),
            },
        };
        mirror.apply_op(&op).expect("op valid against the mirror");
        ops.push(op);
    }
    ops
}

fn fresh_local(backend: BackendId, mirror: &Network) -> BoxedEngine {
    match backend {
        BackendId::ExactScan => BoxedEngine::exact_scan(mirror),
        BackendId::SimdScan => BoxedEngine::simd_scan(mirror),
        BackendId::VoronoiAssisted => BoxedEngine::voronoi_assisted(mirror),
        BackendId::Qds => unreachable!("qds is not in the chaos rotation"),
    }
}

fn backend_for(seed: u64) -> BackendId {
    match seed % 3 {
        0 => BackendId::ExactScan,
        1 => BackendId::SimdScan,
        _ => BackendId::VoronoiAssisted,
    }
}

/// One chaotic client's whole session. Returns how many differential
/// checks completed before the session ended (by finishing its rounds
/// or by dying to its own fault schedule — both are fine). Panics on
/// any *content* failure, naming the seed.
fn chaotic_session(addr: SocketAddr, seed: u64) -> usize {
    let Ok(stream) = TcpStream::connect(addr) else {
        return 0;
    };
    let _ = stream.set_nodelay(true);
    let chaos = ChaosStream::new(stream, ChaosConfig::from_seed(seed));
    let mut client = Client::new(IoTransport::new(chaos));
    let backend = backend_for(seed);
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed ^ 0xD1FF);
    let mut mirror = random_network(seed);
    let mut revision = match client.bind_network(backend, 0.0, &mirror) {
        Ok(rev) => rev,
        Err(e) if transportish(&e) => return 0,
        Err(e) => panic!("chaotic bind, seed {seed}: unexpected {e}"),
    };
    assert_eq!(revision, mirror.revision(), "bind revision, seed {seed}");
    let mut checks = 0usize;
    for round in 0..8 {
        match rng.gen_range(0..8) {
            0..=2 => {
                let ops = random_timestep(&mut rng, &mut mirror);
                match client.mutate(revision, &ops) {
                    Ok(rev) => {
                        assert_eq!(
                            rev,
                            mirror.revision(),
                            "post-mutate revision, seed {seed}, round {round}"
                        );
                        revision = rev;
                    }
                    // The cut (or a server deadline) took the session
                    // mid-mutation: the server's private network may or
                    // may not have applied it, but this session is over
                    // and nobody else can observe a private network —
                    // nothing further to check.
                    Err(e) if transportish(&e) => return checks,
                    Err(e) => panic!("chaotic mutate, seed {seed}, round {round}: {e}"),
                }
            }
            3 | 4 => {
                let station = StationId(rng.gen_range(0..mirror.len()));
                let n = rng.gen_range(1..48);
                let points = random_queries(&mut rng, n);
                match client.sinr_batch(station, &points) {
                    Ok((rev, values)) => {
                        assert_eq!(rev, mirror.revision(), "sinr revision, seed {seed}");
                        let local = ExactScan::new(&mirror);
                        let mut expected = vec![0.0; points.len()];
                        local.sinr_batch(station, &points, &mut expected);
                        for (k, (got, want)) in values.iter().zip(&expected).enumerate() {
                            assert!(
                                got == want || (got.is_infinite() && want.is_infinite()),
                                "sinr diff at point {k}, seed {seed}: {got} vs {want}"
                            );
                        }
                        checks += points.len();
                    }
                    Err(e) if transportish(&e) => return checks,
                    Err(e) => panic!("chaotic sinr_batch, seed {seed}, round {round}: {e}"),
                }
            }
            _ => {
                let n = rng.gen_range(1..64);
                let points = random_queries(&mut rng, n);
                match client.locate_batch(&points) {
                    Ok((rev, answers)) => {
                        assert_eq!(rev, mirror.revision(), "locate revision, seed {seed}");
                        let local = fresh_local(backend, &mirror);
                        let mut expected = vec![Located::Silent; points.len()];
                        local.locate_batch(&points, &mut expected);
                        assert_eq!(answers, expected, "locate diff, seed {seed}, round {round}");
                        checks += points.len();
                    }
                    Err(e) if transportish(&e) => return checks,
                    Err(e) => panic!("chaotic locate, seed {seed}, round {round}: {e}"),
                }
            }
        }
    }
    checks
}

/// Hardened-but-generous config for the fleets: deadlines armed far
/// above honest chaotic latency (chaos delays are microseconds), so
/// they exercise the deadline plumbing without evicting live clients.
fn fleet_config() -> ServerConfig {
    ServerConfig {
        idle_deadline: Some(Duration::from_secs(30)),
        frame_deadline: Some(Duration::from_secs(10)),
        shutdown_join_bound: Duration::from_secs(5),
        ..ServerConfig::default()
    }
}

fn run_fleet(handle: ServerHandle, seed_base: u64, fleet: usize) {
    let addr = handle.addr();
    let threads: Vec<_> = (0..fleet)
        .map(|i| {
            let seed = seed_base + i as u64;
            std::thread::spawn(move || chaotic_session(addr, seed))
        })
        .collect();
    let mut checks = 0usize;
    let mut survivors = 0usize;
    for t in threads {
        let c = t.join().expect("chaotic client panicked — see its seed");
        checks += c;
        if c > 0 {
            survivors += 1;
        }
    }
    // Cut seeds die early, but most of the fleet must have produced
    // verified answers — otherwise the test silently checked nothing.
    assert!(
        survivors >= fleet / 2,
        "only {survivors}/{fleet} chaotic clients completed any check"
    );
    assert!(checks > 0);
    let started = Instant::now();
    let abandoned = handle.shutdown();
    assert!(
        started.elapsed() < Duration::from_secs(8),
        "shutdown exceeded its bound under chaos"
    );
    assert_eq!(abandoned, 0, "shutdown abandoned sessions under chaos");
}

#[test]
fn chaotic_fleet_threaded() {
    let server = Server::bind("127.0.0.1:0")
        .unwrap()
        .with_config(fleet_config());
    run_fleet(server.spawn().unwrap(), 0x9000, FLEET_SIZE);
}

#[test]
fn chaotic_fleet_pooled() {
    let server = Server::bind("127.0.0.1:0")
        .unwrap()
        .with_config(fleet_config());
    run_fleet(server.spawn_pooled(4).unwrap(), 0xA000, FLEET_SIZE);
}

/// Randomized-seed smoke for CI: a small fleet under a seed derived
/// from the clock, **printed so a failure is replayable** (rerun with
/// the printed base via `CHAOS_SEED=<n> cargo test --test chaos
/// -- --ignored`).
#[test]
#[ignore = "randomized smoke — run explicitly (CI) with --ignored"]
fn chaotic_fleet_randomized_smoke() {
    let seed_base = std::env::var("CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| {
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .expect("clock after epoch")
                .as_nanos() as u64
        });
    println!("chaos smoke seed base: {seed_base}");
    let server = Server::bind("127.0.0.1:0")
        .unwrap()
        .with_config(fleet_config());
    run_fleet(server.spawn_pooled(4).unwrap(), seed_base, 16);
    let server = Server::bind("127.0.0.1:0")
        .unwrap()
        .with_config(fleet_config());
    run_fleet(server.spawn().unwrap(), seed_base ^ 0x5A5A, 16);
}

fn idle_eviction_config() -> ServerConfig {
    ServerConfig {
        idle_deadline: Some(Duration::from_millis(150)),
        ..ServerConfig::default()
    }
}

/// An idle-deadline server evicts a silent-but-connected client; a
/// prompt client on the same server is untouched.
fn assert_idle_eviction(handle: ServerHandle) {
    let addr = handle.addr();
    let net = random_network(1);
    // The victim binds, then goes silent past the deadline.
    let mut victim = Client::connect(addr).unwrap();
    victim
        .bind_network(BackendId::ExactScan, 0.0, &net)
        .unwrap();
    // A prompt neighbour keeps querying through the victim's nap —
    // eviction must be per-session.
    let mut prompt = Client::connect(addr).unwrap();
    prompt
        .bind_network(BackendId::ExactScan, 0.0, &net)
        .unwrap();
    let deadline = Instant::now() + Duration::from_secs(5);
    let evicted = loop {
        // Nap well past the victim's idle deadline while the prompt
        // neighbour keeps its own session warm — eviction must be
        // per-session, not per-server.
        for _ in 0..6 {
            std::thread::sleep(Duration::from_millis(60));
            prompt
                .locate_batch(&[Point::new(0.0, 0.0)])
                .expect("prompt client untouched");
        }
        match victim.locate_batch(&[Point::new(0.0, 0.0)]) {
            Err(e) if transportish(&e) => break true,
            Ok(_) => {}
            Err(e) => panic!("unexpected eviction error: {e}"),
        }
        if Instant::now() > deadline {
            break false;
        }
    };
    assert!(evicted, "idle session was never evicted");
    assert_eq!(handle.shutdown(), 0);
}

#[test]
fn idle_deadline_evicts_threaded() {
    let server = Server::bind("127.0.0.1:0")
        .unwrap()
        .with_config(idle_eviction_config());
    assert_idle_eviction(server.spawn().unwrap());
}

#[test]
fn idle_deadline_evicts_pooled() {
    let server = Server::bind("127.0.0.1:0")
        .unwrap()
        .with_config(idle_eviction_config());
    assert_idle_eviction(server.spawn_pooled(2).unwrap());
}

/// A slowloris client — one byte of a promised frame every few ms,
/// forever — is cut off by the frame deadline even though every
/// individual read completes quickly.
fn assert_slowloris_eviction(handle: ServerHandle) {
    let addr = handle.addr();
    let mut stream = TcpStream::connect(addr).unwrap();
    stream.set_nodelay(true).unwrap();
    // Promise a 4096-byte frame, then dribble.
    stream.write_all(&4096u32.to_le_bytes()).unwrap();
    let started = Instant::now();
    let died = loop {
        if stream.write_all(&[0x5A]).is_err() {
            break true;
        }
        // The server may close without us seeing an immediate write
        // error (send buffer); bound the whole dribble instead.
        if started.elapsed() > Duration::from_secs(6) {
            break false;
        }
        std::thread::sleep(Duration::from_millis(10));
    };
    assert!(died, "slowloris client was never disconnected");
    assert!(
        started.elapsed() >= Duration::from_millis(150),
        "cut off before the frame deadline could have expired"
    );
    assert_eq!(handle.shutdown(), 0);
}

fn slowloris_config() -> ServerConfig {
    ServerConfig {
        frame_deadline: Some(Duration::from_millis(200)),
        ..ServerConfig::default()
    }
}

#[test]
fn frame_deadline_evicts_slowloris_threaded() {
    let server = Server::bind("127.0.0.1:0")
        .unwrap()
        .with_config(slowloris_config());
    assert_slowloris_eviction(server.spawn().unwrap());
}

#[test]
fn frame_deadline_evicts_slowloris_pooled() {
    let server = Server::bind("127.0.0.1:0")
        .unwrap()
        .with_config(slowloris_config());
    assert_slowloris_eviction(server.spawn_pooled(2).unwrap());
}

/// Past `max_connections`, a new connection is shed with one typed
/// `Overloaded` frame — and a slot freed by a closing session readmits.
fn assert_overload_shedding(handle: ServerHandle) {
    let addr = handle.addr();
    let net = random_network(2);
    let mut held: Vec<Client<_>> = (0..2)
        .map(|_| {
            let mut c = Client::connect(addr).unwrap();
            c.bind_network(BackendId::ExactScan, 0.0, &net).unwrap();
            c
        })
        .collect();
    // The cap is 2: the third connection is shed before any frame of
    // its is processed.
    let mut shed = Client::connect(addr).unwrap();
    match shed.bind_network(BackendId::ExactScan, 0.0, &net) {
        Err(ClientError::Server {
            code: ErrorCode::Overloaded,
            ..
        }) => {}
        other => panic!("expected a typed Overloaded shed, got {other:?}"),
    }
    // Held sessions are unharmed by the shed.
    for c in &mut held {
        c.locate_batch(&[Point::new(0.0, 0.0)])
            .expect("held session");
    }
    // Closing one held session frees its slot (asynchronously — the
    // session thread/worker must observe the close), and a retry then
    // succeeds: exactly the ResilientClient backoff story.
    drop(held.pop());
    let deadline = Instant::now() + Duration::from_secs(5);
    let readmitted = loop {
        let mut retry = Client::connect(addr).unwrap();
        match retry.bind_network(BackendId::ExactScan, 0.0, &net) {
            Ok(_) => break true,
            Err(ClientError::Server {
                code: ErrorCode::Overloaded,
                ..
            })
            | Err(ClientError::ConnectionClosed) => {
                if Instant::now() > deadline {
                    break false;
                }
                std::thread::sleep(Duration::from_millis(20));
            }
            Err(e) => panic!("retry after shed: {e}"),
        }
    };
    assert!(readmitted, "freed slot was never reusable");
    assert_eq!(handle.shutdown(), 0);
}

fn shedding_config() -> ServerConfig {
    ServerConfig {
        max_connections: Some(2),
        ..ServerConfig::default()
    }
}

#[test]
fn overloaded_shedding_threaded() {
    let server = Server::bind("127.0.0.1:0")
        .unwrap()
        .with_config(shedding_config());
    assert_overload_shedding(server.spawn().unwrap());
}

#[test]
fn overloaded_shedding_pooled() {
    let server = Server::bind("127.0.0.1:0")
        .unwrap()
        .with_config(shedding_config());
    assert_overload_shedding(server.spawn_pooled(2).unwrap());
}

/// Shutdown stays bounded (and leak-free) while chaotic half-frame
/// clients are still connected: sockets parked mid-frame must not hold
/// threads or workers past the join bound.
fn assert_bounded_shutdown_with_half_frames(handle: ServerHandle) {
    let addr = handle.addr();
    // Eight clients, each wedged mid-frame: a length prefix promising
    // bytes that never come.
    let wedged: Vec<TcpStream> = (0..8)
        .map(|i| {
            let mut s = TcpStream::connect(addr).unwrap();
            s.write_all(&1024u32.to_le_bytes()).unwrap();
            s.write_all(&[i as u8; 7]).unwrap();
            s
        })
        .collect();
    // Give the server time to admit them all and park in their reads.
    std::thread::sleep(Duration::from_millis(200));
    let started = Instant::now();
    let abandoned = handle.shutdown();
    assert!(
        started.elapsed() < Duration::from_secs(8),
        "shutdown exceeded its bound with half-frame clients"
    );
    assert_eq!(abandoned, 0, "half-frame clients leaked sessions");
    drop(wedged);
}

#[test]
fn shutdown_bounded_under_half_frames_threaded() {
    let server = Server::bind("127.0.0.1:0")
        .unwrap()
        .with_config(ServerConfig {
            shutdown_join_bound: Duration::from_secs(5),
            ..ServerConfig::default()
        });
    assert_bounded_shutdown_with_half_frames(server.spawn().unwrap());
}

#[test]
fn shutdown_bounded_under_half_frames_pooled() {
    let server = Server::bind("127.0.0.1:0")
        .unwrap()
        .with_config(ServerConfig {
            shutdown_join_bound: Duration::from_secs(5),
            ..ServerConfig::default()
        });
    assert_bounded_shutdown_with_half_frames(server.spawn_pooled(2).unwrap());
}

/// `ResilientClient` in Attached mode survives repeated forced
/// disconnects (idle-deadline evictions), restoring its attachment each
/// time, and no mutation is ever double-applied: the registry network
/// must equal a mirror that applied every timestep exactly once.
#[test]
fn resilient_client_survives_forced_disconnects_attached() {
    let server = Server::bind("127.0.0.1:0")
        .unwrap()
        .with_config(ServerConfig {
            idle_deadline: Some(Duration::from_millis(120)),
            ..ServerConfig::default()
        });
    let handle = server.spawn().unwrap();
    let mut rng = rand::rngs::StdRng::seed_from_u64(77);
    let mut mirror = random_network(77);

    let mut client = ResilientClient::connect(handle.addr(), RetryPolicy::default()).unwrap();
    client.register_network("chaos-net", &mirror).unwrap();
    let rev = client
        .attach("chaos-net", BackendId::ExactScan, 0.0)
        .unwrap();
    assert_eq!(rev, mirror.revision());

    for round in 0..4 {
        // Sleep well past the idle deadline: the server evicts this
        // session, forcing the next call through a reconnect +
        // re-attach.
        std::thread::sleep(Duration::from_millis(350));
        let points = random_queries(&mut rng, 24);
        let (rev, answers) = client
            .locate_batch(&points)
            .unwrap_or_else(|e| panic!("round {round} locate after eviction: {e}"));
        assert_eq!(rev, mirror.revision(), "round {round} revision");
        let local = fresh_local(BackendId::ExactScan, &mirror);
        let mut expected = vec![Located::Silent; points.len()];
        local.locate_batch(&points, &mut expected);
        assert_eq!(answers, expected, "round {round} locate diff");

        let ops = random_timestep(&mut rng, &mut mirror);
        let rev = client
            .mutate(&ops)
            .unwrap_or_else(|e| panic!("round {round} mutate: {e}"));
        assert_eq!(rev, mirror.revision(), "round {round} post-mutate revision");
    }
    assert!(
        client.reconnects() >= 3,
        "expected ≥ 3 forced reconnects, got {}",
        client.reconnects()
    );
    // Exactly-once, pinned through the registry: the server-side named
    // network must match the mirror that applied each timestep once.
    let final_points = random_queries(&mut rng, 64);
    let (rev, answers) = client.locate_batch(&final_points).unwrap();
    assert_eq!(
        rev,
        mirror.revision(),
        "final revision — a duplicated mutation would differ"
    );
    let local = fresh_local(BackendId::ExactScan, &mirror);
    let mut expected = vec![Located::Silent; final_points.len()];
    local.locate_batch(&final_points, &mut expected);
    assert_eq!(
        answers, expected,
        "final state diff — duplicated or lost mutation"
    );
    assert_eq!(handle.shutdown(), 0);
}

/// `ResilientClient` in Bound (private) mode: reconnect re-binds from
/// the client-side mirror, so queries after repeated evictions still
/// answer for the mutated network — and a replayed mutation applies
/// exactly once (the re-bind rolls back anything half-delivered).
#[test]
fn resilient_client_rebinds_private_networks() {
    let server = Server::bind("127.0.0.1:0")
        .unwrap()
        .with_config(ServerConfig {
            idle_deadline: Some(Duration::from_millis(120)),
            ..ServerConfig::default()
        });
    let handle = server.spawn().unwrap();
    let mut rng = rand::rngs::StdRng::seed_from_u64(99);
    let mut mirror = random_network(99);

    let mut client = ResilientClient::connect(handle.addr(), RetryPolicy::default()).unwrap();
    client
        .bind_network(BackendId::SimdScan, 0.0, &mirror)
        .unwrap();

    for round in 0..4 {
        std::thread::sleep(Duration::from_millis(350));
        let ops = random_timestep(&mut rng, &mut mirror);
        client
            .mutate(&ops)
            .unwrap_or_else(|e| panic!("round {round} mutate after eviction: {e}"));
        let points = random_queries(&mut rng, 24);
        let (_, answers) = client
            .locate_batch(&points)
            .unwrap_or_else(|e| panic!("round {round} locate: {e}"));
        let local = fresh_local(BackendId::SimdScan, &mirror);
        let mut expected = vec![Located::Silent; points.len()];
        local.locate_batch(&points, &mut expected);
        assert_eq!(answers, expected, "round {round} private-network diff");
    }
    assert!(
        client.reconnects() >= 3,
        "expected ≥ 3 forced reconnects, got {}",
        client.reconnects()
    );
    assert_eq!(handle.shutdown(), 0);
}

/// A `ResilientClient` retries through an `Overloaded` shed: with the
/// cap consumed by a held session, the newcomer's first attempts are
/// shed, and once the held session closes the backoff loop gets it in.
#[test]
fn resilient_client_retries_through_overload() {
    let server = Server::bind("127.0.0.1:0")
        .unwrap()
        .with_config(ServerConfig {
            max_connections: Some(1),
            ..ServerConfig::default()
        });
    let handle = server.spawn().unwrap();
    let net = random_network(5);
    let mut hog = Client::connect(handle.addr()).unwrap();
    hog.bind_network(BackendId::ExactScan, 0.0, &net).unwrap();

    // Free the slot shortly after the newcomer starts retrying.
    let addr = handle.addr();
    let freer = std::thread::spawn(move || {
        std::thread::sleep(Duration::from_millis(150));
        drop(hog);
    });
    let mut newcomer = ResilientClient::connect(
        addr,
        RetryPolicy {
            max_attempts: 12,
            base_backoff: Duration::from_millis(20),
            max_backoff: Duration::from_millis(200),
            seed: 42,
        },
    )
    .unwrap();
    let rev = newcomer
        .bind_network(BackendId::ExactScan, 0.0, &net)
        .expect("backoff must outlast the hog");
    assert_eq!(rev, net.revision());
    freer.join().unwrap();
    assert_eq!(handle.shutdown(), 0);
}
