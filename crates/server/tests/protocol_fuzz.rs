//! Protocol fuzz/property suite: malformed frames must yield typed
//! protocol errors and must never panic a server thread or poison
//! another session.
//!
//! Two attack surfaces, two harnesses:
//!
//! * **payload level** (well-formed framing, garbage inside): driven
//!   over the in-process pipe with an owned session thread, so "the
//!   session did not panic" is a literal `JoinHandle::join` assertion;
//! * **framing level** (truncated length prefixes, oversized claims,
//!   mid-frame disconnects): driven over real TCP with raw
//!   `TcpStream` writes, because the typed client cannot even express
//!   these — followed every time by a fresh well-behaved client
//!   proving the server still serves.

use proptest::prelude::*;
use sinr_core::{Network, StationId, SurgeryOp};
use sinr_geometry::Point;
use sinr_server::{
    decode_response, duplex, duplex_stream, encode_request, serve_session, BackendId, ChaosConfig,
    ChaosStream, Client, ClientError, ErrorCode, IoTransport, PipeStream, PipeTransport, Request,
    Response, Server,
};
use std::io::{Read, Write};
use std::net::TcpStream;

fn tiny_network() -> Network {
    Network::uniform(
        vec![
            Point::new(0.0, 0.0),
            Point::new(4.0, 0.0),
            Point::new(1.0, 3.0),
        ],
        0.01,
        1.5,
    )
    .unwrap()
}

/// A session loop on its own thread over a pipe, with the join handle
/// kept so the test can assert the thread exited *without panicking*.
fn owned_session() -> (Client<PipeTransport>, std::thread::JoinHandle<()>) {
    let (client_end, server_end) = duplex();
    let handle = std::thread::spawn(move || serve_session(server_end));
    (Client::new(client_end), handle)
}

/// Reads one raw frame off a TCP stream (test-side framing).
fn read_frame_raw(stream: &mut TcpStream) -> Option<Vec<u8>> {
    let mut prefix = [0u8; 4];
    stream.read_exact(&mut prefix).ok()?;
    let len = u32::from_le_bytes(prefix) as usize;
    let mut payload = vec![0u8; len];
    stream.read_exact(&mut payload).ok()?;
    Some(payload)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Arbitrary payload bytes through well-formed framing: every frame
    /// gets exactly one response (a typed error for undecodable ones,
    /// never a success out of thin air for a session that was never
    /// bound), and the session thread exits cleanly afterwards.
    #[test]
    fn arbitrary_payloads_never_panic_the_session(
        frames in collection::vec(collection::vec(any::<u8>(), 0..256), 1..8)
    ) {
        let (mut client, handle) = owned_session();
        for payload in &frames {
            client.send_raw(payload).expect("framing layer is well-formed");
            match client.recv() {
                // Typed server-side rejection: the expected outcome.
                Err(ClientError::Server { .. }) => {}
                // A payload that happens to decode as a valid request
                // on an unbound session would still be a Server error
                // (NotBound); a random valid *Bind* is the only success
                // path and needs ≥ 2 finite valid stations — allowed,
                // but then it must really be a Bound response.
                Ok(Response::Bound { .. }) => {}
                Ok(other) => prop_assert!(false, "garbage produced {other:?}"),
                Err(other) => prop_assert!(false, "session died: {other}"),
            }
        }
        // The session survives the whole spray and still serves.
        drop(client);
        prop_assert!(handle.join().is_ok(), "session thread panicked");
    }

    /// A malformed payload must not disturb an already-bound session:
    /// the binding, the revision, and subsequent answers are intact.
    #[test]
    fn malformed_frames_do_not_poison_the_bound_state(
        garbage in collection::vec(any::<u8>(), 1..128)
    ) {
        let (mut client, handle) = owned_session();
        let net = tiny_network();
        let revision = client
            .bind_network(BackendId::ExactScan, 0.0, &net)
            .expect("bind");

        // Force the payload to be undecodable regardless of what the
        // generator drew: 0x7F is no known tag.
        let mut payload = vec![0x7F];
        payload.extend(&garbage);
        client.send_raw(&payload).expect("send");
        match client.recv() {
            Err(ClientError::Server { code, .. }) => {
                prop_assert_eq!(code, ErrorCode::MalformedFrame)
            }
            other => prop_assert!(false, "expected MalformedFrame, got {other:?}"),
        }

        let (rev, answers) = client
            .locate_batch(&[Point::new(0.5, 0.0)])
            .expect("session still bound and serving");
        prop_assert_eq!(rev, revision);
        prop_assert_eq!(answers.len(), 1);
        drop(client);
        prop_assert!(handle.join().is_ok(), "session thread panicked");
    }

    /// Unknown backend bytes in `Bind` yield the dedicated typed code,
    /// and the session remains usable for a correct `Bind` afterwards.
    #[test]
    fn bad_backend_ids_yield_unknown_backend(bad in 4u8..255) {
        let (mut client, handle) = owned_session();
        client.send_raw(&[0x01, bad]).expect("send");
        match client.recv() {
            Err(ClientError::Server { code, .. }) => {
                prop_assert_eq!(code, ErrorCode::UnknownBackend)
            }
            other => prop_assert!(false, "expected UnknownBackend, got {other:?}"),
        }
        let net = tiny_network();
        prop_assert_eq!(
            client.bind_network(BackendId::ExactScan, 0.0, &net).expect("bind after error"),
            0
        );
        drop(client);
        prop_assert!(handle.join().is_ok(), "session thread panicked");
    }

    /// Mutations fenced at any wrong revision (the "delta with a
    /// foreign revision" case) are rejected whole, with the typed code,
    /// leaving the session serving at the unmoved revision.
    #[test]
    fn foreign_revision_mutates_are_fenced(wrong in 1u64..u64::MAX) {
        let (mut client, handle) = owned_session();
        let net = tiny_network();
        let revision = client
            .bind_network(BackendId::VoronoiAssisted, 0.0, &net)
            .expect("bind");
        prop_assert_eq!(revision, 0);
        let op = SurgeryOp::Move { id: StationId(0), to: Point::new(1.0, 1.0) };
        match client.mutate(wrong, &[op]) {
            Err(ClientError::Server { code, .. }) => {
                prop_assert_eq!(code, ErrorCode::RevisionMismatch)
            }
            other => prop_assert!(false, "expected RevisionMismatch, got {other:?}"),
        }
        let (rev, _) = client.locate_batch(&[Point::new(0.0, 1.0)]).expect("serving");
        prop_assert_eq!(rev, revision, "nothing may have been applied");
        drop(client);
        prop_assert!(handle.join().is_ok(), "session thread panicked");
    }

    /// `Mutate` frames whose op bytes are truncated mid-op are rejected
    /// as malformed without touching the bound network.
    #[test]
    fn truncated_mutate_ops_are_malformed_not_applied(cut in 1usize..20) {
        let (mut client, handle) = owned_session();
        let net = tiny_network();
        client.bind_network(BackendId::ExactScan, 0.0, &net).expect("bind");

        // A well-formed Mutate payload, then cut `cut` bytes off the end.
        let mut payload = vec![0x04];
        payload.extend_from_slice(&0u64.to_le_bytes());
        payload.extend_from_slice(&2u32.to_le_bytes());
        for op in [
            SurgeryOp::Move { id: StationId(0), to: Point::new(2.0, 2.0) },
            SurgeryOp::Add { position: Point::new(-1.0, 2.0), power: 1.0 },
        ] {
            op.encode_into(&mut payload);
        }
        let cut = cut.min(payload.len() - 14); // keep tag + header intact
        payload.truncate(payload.len() - cut);
        client.send_raw(&payload).expect("send");
        match client.recv() {
            Err(ClientError::Server { code, .. }) => {
                prop_assert_eq!(code, ErrorCode::MalformedFrame)
            }
            other => prop_assert!(false, "expected MalformedFrame, got {other:?}"),
        }
        // Revision 0 still: nothing was applied.
        let (rev, _) = client.locate_batch(&[Point::new(0.5, 0.5)]).expect("serving");
        prop_assert_eq!(rev, 0);
        drop(client);
        prop_assert!(handle.join().is_ok(), "session thread panicked");
    }
}

proptest! {
    // TCP cases open real sockets; keep the count moderate.
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Truncated length prefixes / mid-frame disconnects over real TCP:
    /// the server closes that connection quietly and keeps accepting —
    /// proven by a well-behaved client immediately afterwards.
    #[test]
    fn truncated_prefixes_close_quietly_and_server_keeps_serving(
        partial in collection::vec(any::<u8>(), 0..7)
    ) {
        let server = Server::bind("127.0.0.1:0").expect("bind");
        let handle = server.spawn().expect("spawn");
        let addr = handle.addr();

        {
            let mut raw = TcpStream::connect(addr).expect("connect raw");
            // 0–6 bytes: either a truncated prefix, or a full prefix
            // promising more payload than ever arrives.
            raw.write_all(&partial).expect("write partial");
            raw.shutdown(std::net::Shutdown::Write).ok();
            // Whatever happens, the server must not hang this read
            // forever: it either closes silently (truncation) or (full
            // prefix + missing payload ≡ truncation) closes too.
            let mut sink = Vec::new();
            let _ = raw.take(1024).read_to_end(&mut sink);
        }

        let mut client = Client::connect(addr).expect("connect after abuse");
        let net = tiny_network();
        client.bind_network(BackendId::SimdScan, 0.0, &net).expect("bind");
        let (_, answers) = client.locate_batch(&[Point::new(0.2, 0.1)]).expect("serving");
        prop_assert_eq!(answers.len(), 1);
        drop(client);
        handle.shutdown();
    }

    /// A length prefix past MAX_FRAME_LEN gets the typed `Oversized`
    /// error and then the connection closes (the stream position is
    /// unrecoverable after a lying prefix).
    #[test]
    fn oversized_prefixes_get_typed_error_then_close(
        over in (16u32 * 1024 * 1024 + 1)..u32::MAX
    ) {
        let server = Server::bind("127.0.0.1:0").expect("bind");
        let handle = server.spawn().expect("spawn");

        let mut raw = TcpStream::connect(handle.addr()).expect("connect raw");
        raw.write_all(&over.to_le_bytes()).expect("write prefix");
        let payload = read_frame_raw(&mut raw).expect("server answers before closing");
        match decode_response(&payload).expect("decodable error frame") {
            Response::Error { code, .. } => prop_assert_eq!(code, ErrorCode::Oversized),
            other => prop_assert!(false, "expected Oversized error, got {other:?}"),
        }
        // …and then EOF.
        let mut rest = Vec::new();
        let _ = raw.take(64).read_to_end(&mut rest);
        prop_assert!(rest.is_empty(), "connection must close after Oversized");
        handle.shutdown();
    }
}

/// Deterministic corner: an empty payload (length 0) is a legal frame
/// whose payload fails to decode — typed MalformedFrame, session lives.
#[test]
fn empty_frame_is_malformed_not_fatal() {
    let (mut client, handle) = owned_session();
    client.send_raw(&[]).expect("send empty frame");
    match client.recv() {
        Err(ClientError::Server { code, message }) => {
            assert_eq!(code, ErrorCode::MalformedFrame);
            assert!(message.contains("empty"), "message: {message}");
        }
        other => panic!("expected MalformedFrame, got {other:?}"),
    }
    let net = tiny_network();
    client
        .bind_network(BackendId::ExactScan, 0.0, &net)
        .expect("bind after empty frame");
    drop(client);
    assert!(handle.join().is_ok());
}

/// Deterministic corner: double Bind is AlreadyBound and leaves the
/// first binding untouched.
#[test]
fn double_bind_is_typed_and_harmless() {
    let (mut client, handle) = owned_session();
    let net = tiny_network();
    let revision = client
        .bind_network(BackendId::ExactScan, 0.0, &net)
        .expect("first bind");
    match client.bind_network(BackendId::SimdScan, 0.0, &net) {
        Err(ClientError::Server { code, .. }) => assert_eq!(code, ErrorCode::AlreadyBound),
        other => panic!("expected AlreadyBound, got {other:?}"),
    }
    let (rev, _) = client
        .locate_batch(&[Point::new(0.0, 0.0)])
        .expect("original binding serves");
    assert_eq!(rev, revision);
    drop(client);
    assert!(handle.join().is_ok());
}

/// Deterministic corner: queries before Bind are NotBound; a SinrBatch
/// for a station the network lacks is StationOutOfRange.
#[test]
fn not_bound_and_station_range_are_typed() {
    let (mut client, handle) = owned_session();
    match client.locate_batch(&[Point::new(0.0, 0.0)]) {
        Err(ClientError::Server { code, .. }) => assert_eq!(code, ErrorCode::NotBound),
        other => panic!("expected NotBound, got {other:?}"),
    }
    let net = tiny_network();
    client
        .bind_network(BackendId::VoronoiAssisted, 0.0, &net)
        .expect("bind");
    match client.sinr_batch(StationId(99), &[Point::new(0.0, 0.0)]) {
        Err(ClientError::Server { code, .. }) => assert_eq!(code, ErrorCode::StationOutOfRange),
        other => panic!("expected StationOutOfRange, got {other:?}"),
    }
    drop(client);
    assert!(handle.join().is_ok());
}

/// Deterministic corner: a Bind whose network fails model validation
/// (too few stations) is InvalidNetwork and the session stays usable.
#[test]
fn invalid_network_bind_is_typed() {
    let (mut client, handle) = owned_session();
    // Handcraft a Bind with a single station: tag, backend, epsilon,
    // noise, beta, alpha, n = 1, one station record.
    let mut payload = vec![0x01, 0u8];
    for v in [0.0f64, 0.0, 1.0, 2.0] {
        payload.extend_from_slice(&v.to_le_bytes());
    }
    payload.extend_from_slice(&1u32.to_le_bytes());
    for v in [0.0f64, 0.0, 1.0] {
        payload.extend_from_slice(&v.to_le_bytes());
    }
    client.send_raw(&payload).expect("send");
    match client.recv() {
        Err(ClientError::Server { code, message }) => {
            assert_eq!(code, ErrorCode::InvalidNetwork);
            assert!(message.contains("at least 2"), "message: {message}");
        }
        other => panic!("expected InvalidNetwork, got {other:?}"),
    }
    let net = tiny_network();
    client
        .bind_network(BackendId::ExactScan, 0.0, &net)
        .expect("bind after invalid network");
    drop(client);
    assert!(handle.join().is_ok());
}

/// Deterministic corners for malformed `ReceptionProbBatch` channel
/// specs: unknown atom tags, truncated parameters, lying gain counts
/// and nested composition are all MalformedFrame at the decode layer —
/// the session survives each and keeps serving.
#[test]
fn malformed_channel_specs_are_malformed_frames_not_fatal() {
    let (mut client, handle) = owned_session();
    let net = tiny_network();
    let revision = client
        .bind_network(BackendId::ExactScan, 0.0, &net)
        .expect("bind");

    // Common ReceptionProbBatch header: tag, trials = 8, seed = 0.
    let header = || {
        let mut p = vec![0x05];
        p.extend_from_slice(&8u32.to_le_bytes());
        p.extend_from_slice(&0u64.to_le_bytes());
        p
    };

    // Unknown channel atom tag.
    let mut unknown_atom = header();
    unknown_atom.push(200);
    // Truncated shadowing sigma (atom tag present, parameter cut short).
    let mut short_sigma = header();
    short_sigma.push(1);
    short_sigma.extend_from_slice(&[0u8, 0, 0]);
    // FixedGains declaring more gains than the frame carries.
    let mut lying_gains = header();
    lying_gains.push(3);
    lying_gains.extend_from_slice(&u32::MAX.to_le_bytes());
    // Composed nested inside Composed.
    let mut nested = header();
    nested.push(4);
    nested.push(1);
    nested.push(4);
    nested.push(0);
    nested.extend_from_slice(&0u32.to_le_bytes());
    // A valid channel but the frame ends before the point count.
    let mut no_points = header();
    no_points.push(0);

    for (what, payload) in [
        ("unknown atom tag", unknown_atom),
        ("truncated sigma", short_sigma),
        ("lying gain count", lying_gains),
        ("nested compose", nested),
        ("missing point count", no_points),
    ] {
        client.send_raw(&payload).expect("send");
        match client.recv() {
            Err(ClientError::Server { code, .. }) => {
                assert_eq!(code, ErrorCode::MalformedFrame, "{what}")
            }
            other => panic!("{what}: expected MalformedFrame, got {other:?}"),
        }
        // The binding is intact after every malformed spec.
        let (rev, answers) = client
            .locate_batch(&[Point::new(0.5, 0.0)])
            .expect("session still serving");
        assert_eq!(rev, revision, "{what}");
        assert_eq!(answers.len(), 1, "{what}");
    }
    drop(client);
    assert!(handle.join().is_ok(), "session thread panicked");
}

/// Deterministic corner: a channel spec that *decodes* but fails the
/// engine's semantic validation (zero trials, wrong gain count) is the
/// per-request InvalidChannel error — not MalformedFrame, not fatal.
#[test]
fn decodable_but_invalid_channels_are_invalid_channel() {
    use sinr_core::ChannelModel;
    let (mut client, handle) = owned_session();
    let net = tiny_network();
    client
        .bind_network(BackendId::SimdScan, 0.0, &net)
        .expect("bind");

    // Zero trials: decodes fine, rejected by McConfig validation.
    match client.reception_prob_batch(0, 1, &ChannelModel::Deterministic, &[Point::new(0.5, 0.0)]) {
        Err(ClientError::Server { code, .. }) => assert_eq!(code, ErrorCode::InvalidChannel),
        other => panic!("expected InvalidChannel, got {other:?}"),
    }
    // Wrong gain-vector length for the bound 3-station network.
    let bad_gains = ChannelModel::FixedGains {
        gains: vec![1.0, 2.0],
    };
    match client.reception_prob_batch(8, 1, &bad_gains, &[Point::new(0.5, 0.0)]) {
        Err(ClientError::Server { code, message }) => {
            assert_eq!(code, ErrorCode::InvalidChannel);
            assert!(message.contains("gain"), "message: {message}");
        }
        other => panic!("expected InvalidChannel, got {other:?}"),
    }
    // The session survives and serves the corrected request.
    let (_, values) = client
        .reception_prob_batch(
            8,
            1,
            &ChannelModel::FixedGains {
                gains: vec![1.0, 2.0, 0.5],
            },
            &[Point::new(0.5, 0.0)],
        )
        .expect("session survives InvalidChannel");
    assert_eq!(values.len(), 1);
    drop(client);
    assert!(handle.join().is_ok());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The new tags (`Register` 0x06, `Attach` 0x07,
    /// `SinrQuantilesBatch` 0x08) under arbitrary body bytes: typed
    /// errors only, no panics, no phantom successes. (A random body
    /// that happens to decode as a valid `Register` is the one
    /// legitimate success path, mirroring the `Bind` caveat above.)
    #[test]
    fn arbitrary_named_frame_bodies_never_panic(
        tag in 6u8..9,
        body in collection::vec(any::<u8>(), 0..192)
    ) {
        let (mut client, handle) = owned_session();
        let mut payload = vec![tag];
        payload.extend(&body);
        client.send_raw(&payload).expect("send");
        match client.recv() {
            Err(ClientError::Server { .. }) => {}
            Ok(Response::Registered { .. }) if tag == 6 => {}
            Ok(other) => prop_assert!(false, "garbage tag {tag} produced {other:?}"),
            Err(other) => prop_assert!(false, "session died: {other}"),
        }
        drop(client);
        prop_assert!(handle.join().is_ok(), "session thread panicked");
    }

    /// Name-length bytes lying about the frame (claiming more bytes
    /// than arrive, or zero) are MalformedFrame for both named frames,
    /// and the session keeps serving.
    #[test]
    fn lying_name_lengths_are_malformed(claimed in 1u8..255, tag in 6u8..8) {
        let (mut client, handle) = owned_session();
        // Ship strictly fewer name bytes than the length byte claims.
        let shipped = (claimed as usize).saturating_sub(1);
        let mut payload = vec![tag, claimed];
        payload.extend(std::iter::repeat_n(b'x', shipped));
        client.send_raw(&payload).expect("send");
        match client.recv() {
            Err(ClientError::Server { code, .. }) => {
                prop_assert_eq!(code, ErrorCode::MalformedFrame)
            }
            other => prop_assert!(false, "expected MalformedFrame, got {other:?}"),
        }
        // Zero-length names are refused outright.
        let zero = vec![tag, 0u8];
        client.send_raw(&zero).expect("send");
        match client.recv() {
            Err(ClientError::Server { code, .. }) => {
                prop_assert_eq!(code, ErrorCode::MalformedFrame)
            }
            other => prop_assert!(false, "expected MalformedFrame, got {other:?}"),
        }
        let net = tiny_network();
        client.bind_network(BackendId::ExactScan, 0.0, &net).expect("still serving");
        drop(client);
        prop_assert!(handle.join().is_ok(), "session thread panicked");
    }

    /// A well-formed `SinrQuantilesBatch` cut short anywhere in its
    /// body is MalformedFrame, and the binding survives untouched.
    #[test]
    fn truncated_quantiles_frames_are_malformed(cut in 1usize..40) {
        let (mut client, handle) = owned_session();
        let net = tiny_network();
        client.bind_network(BackendId::ExactScan, 0.0, &net).expect("bind");

        // tag, station, trials, seed, deterministic channel, 2
        // quantiles, 2 points.
        let mut payload = vec![0x08];
        payload.extend_from_slice(&0u32.to_le_bytes());
        payload.extend_from_slice(&8u32.to_le_bytes());
        payload.extend_from_slice(&1u64.to_le_bytes());
        payload.push(0);
        payload.extend_from_slice(&2u32.to_le_bytes());
        for q in [0.25f64, 0.75] {
            payload.extend_from_slice(&q.to_le_bytes());
        }
        payload.extend_from_slice(&2u32.to_le_bytes());
        for v in [0.5f64, 0.0, 3.0, 0.5] {
            payload.extend_from_slice(&v.to_le_bytes());
        }
        let cut = cut.min(payload.len() - 2); // keep at least the tag
        payload.truncate(payload.len() - cut);
        client.send_raw(&payload).expect("send");
        match client.recv() {
            Err(ClientError::Server { code, .. }) => {
                prop_assert_eq!(code, ErrorCode::MalformedFrame)
            }
            other => prop_assert!(false, "expected MalformedFrame, got {other:?}"),
        }
        let (rev, _) = client.locate_batch(&[Point::new(0.5, 0.0)]).expect("serving");
        prop_assert_eq!(rev, 0);
        drop(client);
        prop_assert!(handle.join().is_ok(), "session thread panicked");
    }
}

/// Deterministic corner: non-UTF-8 name bytes are MalformedFrame for
/// both named frames; the session survives and the name stays free.
#[test]
fn non_utf8_names_are_malformed() {
    let (mut client, handle) = owned_session();
    for tag in [0x06u8, 0x07] {
        let mut payload = vec![tag, 3u8, 0xFF, 0xFE, 0xFD];
        if tag == 0x07 {
            payload.push(0); // backend
            payload.extend_from_slice(&0.0f64.to_le_bytes()); // epsilon
        }
        client.send_raw(&payload).expect("send");
        match client.recv() {
            Err(ClientError::Server { code, message }) => {
                assert_eq!(code, ErrorCode::MalformedFrame, "tag {tag:#04x}");
                assert!(message.contains("UTF-8"), "tag {tag:#04x}: {message}");
            }
            other => panic!("tag {tag:#04x}: expected MalformedFrame, got {other:?}"),
        }
    }
    let net = tiny_network();
    client
        .register_network("fine", &net)
        .expect("valid name still free");
    drop(client);
    assert!(handle.join().is_ok());
}

/// Deterministic corner: registry errors are per-request — NameTaken
/// on a duplicate Register, UnknownNetwork on a dangling Attach — and
/// the session survives both into a working Attach.
#[test]
fn registry_errors_are_typed_and_survivable() {
    let (mut client, handle) = owned_session();
    let net = tiny_network();
    match client.attach("nowhere", BackendId::ExactScan, 0.0) {
        Err(ClientError::Server { code, .. }) => assert_eq!(code, ErrorCode::UnknownNetwork),
        other => panic!("expected UnknownNetwork, got {other:?}"),
    }
    client.register_network("here", &net).expect("register");
    match client.register_network("here", &net) {
        Err(ClientError::Server { code, message }) => {
            assert_eq!(code, ErrorCode::NameTaken);
            assert!(message.contains("here"), "message: {message}");
        }
        other => panic!("expected NameTaken, got {other:?}"),
    }
    let rev = client
        .attach("here", BackendId::ExactScan, 0.0)
        .expect("attach after errors");
    assert_eq!(rev, 0);
    let (rev, answers) = client
        .locate_batch(&[Point::new(0.5, 0.0)])
        .expect("attached session serves");
    assert_eq!(rev, 0);
    assert_eq!(answers.len(), 1);
    drop(client);
    assert!(handle.join().is_ok());
}

/// Reads one raw frame off a [`PipeStream`] (test-side framing).
fn read_frame_pipe(stream: &mut PipeStream) -> Vec<u8> {
    let mut prefix = [0u8; 4];
    stream.read_exact(&mut prefix).expect("response prefix");
    let mut payload = vec![0u8; u32::from_le_bytes(prefix) as usize];
    stream.read_exact(&mut payload).expect("response payload");
    payload
}

/// **Exhaustive** byte-split decode identity: one wire frame (prefix +
/// payload) delivered in two writes split at *every* byte boundary —
/// including inside the length prefix — must produce a response
/// bit-identical to the unsplit delivery. The framing layer may never
/// care where the kernel (or a chaotic transport) chops a frame.
#[test]
fn every_byte_split_decodes_identically() {
    let (mut ours, theirs) = duplex_stream();
    let handle = std::thread::spawn(move || serve_session(IoTransport::new(theirs)));

    let mut write_wire = |payload: &[u8], split: Option<usize>| {
        let mut wire = (payload.len() as u32).to_le_bytes().to_vec();
        wire.extend_from_slice(payload);
        match split {
            None => ours.write_all(&wire).expect("unsplit write"),
            Some(i) => {
                ours.write_all(&wire[..i]).expect("first half");
                ours.flush().expect("flush between halves");
                ours.write_all(&wire[i..]).expect("second half");
            }
        }
        ours.flush().expect("flush");
        read_frame_pipe(&mut ours)
    };

    let bind = encode_request(&Request::Bind {
        backend: BackendId::ExactScan,
        epsilon: 0.0,
        network: sinr_server::NetworkSpec::of(&tiny_network()),
    });
    write_wire(&bind, None);
    let locate = encode_request(&Request::LocateBatch {
        points: vec![
            Point::new(0.5, 0.2),
            Point::new(-3.0, 1.0),
            Point::new(4.0, 0.1),
        ],
    });
    let reference = write_wire(&locate, None);
    for split in 1..locate.len() + 4 {
        let got = write_wire(&locate, Some(split));
        assert_eq!(got, reference, "split at byte {split} changed the response");
    }
    drop(ours);
    assert!(handle.join().is_ok(), "session thread panicked");
}

/// The same identity under [`ChaosStream`] schedules: chaotic chopping
/// and delays on the client's pipe (a fresh seed per iteration — each
/// seed is a different maximal-nastiness split schedule) never change a
/// single answered bit relative to a calm session.
#[test]
fn chaotic_pipe_sessions_answer_identically() {
    let points = [
        Point::new(0.5, 0.2),
        Point::new(-3.0, 1.0),
        Point::new(4.0, 0.1),
    ];
    let net = tiny_network();
    let reference = {
        let (mut client, handle) = owned_session();
        client
            .bind_network(BackendId::ExactScan, 0.0, &net)
            .expect("calm bind");
        let answers = client.locate_batch(&points).expect("calm locate");
        drop(client);
        assert!(handle.join().is_ok());
        answers
    };
    for seed in 0..48u64 {
        let (ours, theirs) = duplex_stream();
        let handle = std::thread::spawn(move || serve_session(IoTransport::new(theirs)));
        let chaos = ChaosStream::new(ours, ChaosConfig::from_seed_no_cut(seed));
        let mut client = Client::new(IoTransport::new(chaos));
        client
            .bind_network(BackendId::ExactScan, 0.0, &net)
            .unwrap_or_else(|e| panic!("chaotic bind, seed {seed}: {e}"));
        let answers = client
            .locate_batch(&points)
            .unwrap_or_else(|e| panic!("chaotic locate, seed {seed}: {e}"));
        assert_eq!(answers, reference, "seed {seed} changed an answer");
        drop(client);
        assert!(
            handle.join().is_ok(),
            "session thread panicked, seed {seed}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Garbage payloads *through a chaotic transport*: the server sees
    /// the same bytes in nastier deliveries, answers every frame with a
    /// typed error (MalformedFrame for the guaranteed-undecodable tag),
    /// and the session survives into a working bind — chaos on the
    /// wire must not be able to smuggle garbage past the decoder or
    /// wedge the session loop.
    #[test]
    fn garbage_through_chaos_is_typed_and_survivable(
        seed in any::<u64>(),
        garbage in collection::vec(any::<u8>(), 0..160)
    ) {
        let (ours, theirs) = duplex_stream();
        let handle = std::thread::spawn(move || serve_session(IoTransport::new(theirs)));
        let chaos = ChaosStream::new(ours, ChaosConfig::from_seed_no_cut(seed));
        let mut client = Client::new(IoTransport::new(chaos));

        // 0x7F is no known tag: undecodable regardless of the body.
        let mut payload = vec![0x7F];
        payload.extend(&garbage);
        client.send_raw(&payload).expect("send");
        match client.recv() {
            Err(ClientError::Server { code, .. }) => {
                prop_assert_eq!(code, ErrorCode::MalformedFrame)
            }
            other => prop_assert!(false, "expected MalformedFrame, got {other:?}"),
        }
        let net = tiny_network();
        client
            .bind_network(BackendId::ExactScan, 0.0, &net)
            .expect("session survives chaotic garbage");
        let (_, answers) = client
            .locate_batch(&[Point::new(0.5, 0.0)])
            .expect("and still serves");
        prop_assert_eq!(answers.len(), 1);
        drop(client);
        prop_assert!(handle.join().is_ok(), "session thread panicked");
    }
}

/// Deterministic corner: a qds Bind on a network violating the
/// Theorem-3 preconditions (β ≤ 1 here) is BackendBuild, typed.
#[test]
fn qds_precondition_failure_is_backend_build() {
    let (mut client, handle) = owned_session();
    let net = Network::uniform(
        vec![Point::new(0.0, 0.0), Point::new(4.0, 0.0)],
        0.0,
        0.8, // β ≤ 1: Theorem 3 does not apply
    )
    .unwrap();
    match client.bind_network(BackendId::Qds, 0.3, &net) {
        Err(ClientError::Server { code, .. }) => assert_eq!(code, ErrorCode::BackendBuild),
        other => panic!("expected BackendBuild, got {other:?}"),
    }
    drop(client);
    assert!(handle.join().is_ok());
}
