//! End-to-end differential suite: a real TCP server on an ephemeral
//! port, concurrent clients driving randomized interleavings of
//! `LocateBatch` / `SinrBatch` / `Mutate` frames, and every answer
//! checked **bit-for-bit** against a fresh local engine built from a
//! client-side mirror of the network at the same revision.
//!
//! Why the comparison is exact and not tolerance-based: the wire format
//! is lossless (`f64` bit patterns, exact station indices, run-length
//! coding of identical answers), the revision fence pins *which*
//! network state each response answered for, and PR 3's property suite
//! already pins incremental-apply ≡ fresh-rebuild per backend — so a
//! server-side engine that was only ever patched must agree exactly
//! with a client-side engine built from scratch at the same revision.
//! Any diff is a server bug (lost delta, frame corruption, cross-session
//! leakage), never rounding.

use rand::{Rng, SeedableRng};
use sinr_core::engine::{BoxedEngine, QueryEngine};
use sinr_core::{ChannelModel, ExactScan, Located, McConfig, Network, StationId, SurgeryOp};
use sinr_geometry::Point;
use sinr_server::{BackendId, Client, ClientError, ErrorCode, Server, TcpTransport};

/// A random stochastic channel valid for `n` stations — every shape the
/// wire grammar can carry.
fn random_channel(rng: &mut rand::rngs::StdRng, n: usize) -> ChannelModel {
    match rng.gen_range(0..5) {
        0 => ChannelModel::Deterministic,
        1 => ChannelModel::LogNormalShadowing {
            sigma_db: rng.gen_range(0.5..6.0),
        },
        2 => ChannelModel::RayleighFading,
        3 => ChannelModel::FixedGains {
            gains: (0..n).map(|_| rng.gen_range(0.25..4.0)).collect(),
        },
        _ => ChannelModel::Composed(vec![
            ChannelModel::LogNormalShadowing {
                sigma_db: rng.gen_range(0.5..6.0),
            },
            ChannelModel::RayleighFading,
        ]),
    }
}

/// Well-separated random stations (same discipline as the core dynamic
/// suite: non-degenerate zones, honest numerics).
fn separated_points(rng: &mut rand::rngs::StdRng, n: usize) -> Vec<Point> {
    let mut pts: Vec<Point> = Vec::with_capacity(n);
    let mut guard = 0;
    while pts.len() < n && guard < 10_000 {
        guard += 1;
        let cand = Point::new(rng.gen_range(-5.0..=5.0), rng.gen_range(-5.0..=5.0));
        if pts.iter().all(|p| p.dist(cand) >= 0.8) {
            pts.push(cand);
        }
    }
    pts
}

fn random_network(seed: u64, uniform: bool) -> Network {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let n = rng.gen_range(4..8);
    let pts = separated_points(&mut rng, n);
    let mut b = Network::builder()
        .background_noise(0.02)
        .threshold(if rng.gen_range(0..2) == 0 { 0.7 } else { 1.8 });
    for p in pts {
        if uniform {
            b = b.station(p);
        } else {
            b = b.station_with_power(p, rng.gen_range(0.5..2.5));
        }
    }
    b.build().expect("≥ 4 separated stations")
}

/// One random timestep of surgery: generated against (and applied to)
/// the client-side mirror, so the op list shipped to the server is
/// valid by construction and both sides advance identically.
fn random_timestep(
    rng: &mut rand::rngs::StdRng,
    mirror: &mut Network,
    uniform_only: bool,
) -> Vec<SurgeryOp> {
    let steps = rng.gen_range(1..4);
    let mut ops = Vec::with_capacity(steps);
    for _ in 0..steps {
        let op = match rng.gen_range(0..7) {
            0 | 1 => SurgeryOp::Add {
                position: Point::new(rng.gen_range(-6.0..6.0), rng.gen_range(-6.0..6.0)),
                power: if uniform_only || rng.gen_range(0..2) == 0 {
                    1.0
                } else {
                    rng.gen_range(0.5..2.5)
                },
            },
            2 if mirror.len() > 3 => SurgeryOp::Remove {
                id: StationId(rng.gen_range(0..mirror.len())),
            },
            3 | 4 => SurgeryOp::Move {
                id: StationId(rng.gen_range(0..mirror.len())),
                to: Point::new(rng.gen_range(-6.0..6.0), rng.gen_range(-6.0..6.0)),
            },
            _ => SurgeryOp::SetPower {
                id: StationId(rng.gen_range(0..mirror.len())),
                power: if uniform_only {
                    1.0
                } else {
                    rng.gen_range(0.5..2.5)
                },
            },
        };
        mirror.apply_op(&op).expect("op valid against the mirror");
        ops.push(op);
    }
    ops
}

fn random_queries(rng: &mut rand::rngs::StdRng, n: usize) -> Vec<Point> {
    (0..n)
        .map(|_| Point::new(rng.gen_range(-8.0..8.0), rng.gen_range(-8.0..8.0)))
        .collect()
}

/// Builds the same backend the server session is running, from the
/// client-side mirror — the "fresh local engine at the same revision".
fn fresh_local(backend: BackendId, mirror: &Network) -> BoxedEngine {
    match backend {
        BackendId::ExactScan => BoxedEngine::exact_scan(mirror),
        BackendId::SimdScan => BoxedEngine::simd_scan(mirror),
        BackendId::VoronoiAssisted => BoxedEngine::voronoi_assisted(mirror),
        BackendId::Qds => unreachable!("qds has its own consistency test"),
    }
}

/// One client's whole randomized session, all assertions inside.
/// Returns the number of differential checks performed.
fn drive_session(
    client: &mut Client<TcpTransport>,
    backend: BackendId,
    seed: u64,
    rounds: usize,
) -> usize {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let uniform_only = false;
    let mut mirror = random_network(seed, true);
    let mut revision = client
        .bind_network(backend, 0.0, &mirror)
        .expect("bind succeeds");
    assert_eq!(revision, mirror.revision(), "bind revision");
    let mut checks = 0;
    for round in 0..rounds {
        match rng.gen_range(0..12) {
            // Mutate: a timestep of surgery, revision-fenced.
            0..=3 => {
                let ops = random_timestep(&mut rng, &mut mirror, uniform_only);
                revision = client
                    .mutate(revision, &ops)
                    .unwrap_or_else(|e| panic!("mutate round {round}: {e}"));
                assert_eq!(revision, mirror.revision(), "post-mutate revision");
            }
            // SinrBatch: exact f64 equality against the local mirror
            // (the server runs the very same scalar kernel).
            4 => {
                let station = StationId(rng.gen_range(0..mirror.len()));
                let count = rng.gen_range(1..64);
                let points = random_queries(&mut rng, count);
                let (rev, values) = client
                    .sinr_batch(station, &points)
                    .unwrap_or_else(|e| panic!("sinr_batch round {round}: {e}"));
                assert_eq!(rev, mirror.revision());
                let local = ExactScan::new(&mirror);
                let mut expected = vec![0.0; points.len()];
                local.sinr_batch(station, &points, &mut expected);
                for (k, (got, want)) in values.iter().zip(&expected).enumerate() {
                    assert!(
                        got == want || (got.is_infinite() && want.is_infinite()),
                        "sinr diff at point {k}: {got} vs {want} ({backend}, seed {seed})"
                    );
                }
                checks += points.len();
            }
            // ReceptionProbBatch: seeded Monte-Carlo answers must be
            // bit-for-bit replayable by a fresh local engine of the
            // same backend, same (trials, seed, channel), same revision.
            5 | 6 => {
                let channel = random_channel(&mut rng, mirror.len());
                let trials = rng.gen_range(4..24);
                let mc_seed = seed ^ ((round as u64) << 17);
                let count = rng.gen_range(1..96);
                let points = random_queries(&mut rng, count);
                let (rev, values) = client
                    .reception_prob_batch(trials, mc_seed, &channel, &points)
                    .unwrap_or_else(|e| panic!("reception_prob_batch round {round}: {e}"));
                assert_eq!(rev, mirror.revision());
                let local = fresh_local(backend, &mirror);
                let mut expected = vec![0.0; points.len()];
                local
                    .reception_probability_batch(
                        &channel,
                        McConfig::new(trials, mc_seed),
                        &points,
                        &mut expected,
                    )
                    .expect("local replay");
                for (k, (got, want)) in values.iter().zip(&expected).enumerate() {
                    assert_eq!(
                        got.to_bits(),
                        want.to_bits(),
                        "reception-prob diff at point {k}: {got} vs {want} \
                         ({backend}, seed {seed}, round {round})"
                    );
                }
                checks += points.len();
            }
            // LocateBatch: bit-for-bit against a fresh local engine of
            // the same backend at the same revision.
            _ => {
                let count = rng.gen_range(1..256);
                let points = random_queries(&mut rng, count);
                let (rev, answers) = client
                    .locate_batch(&points)
                    .unwrap_or_else(|e| panic!("locate_batch round {round}: {e}"));
                assert_eq!(
                    rev,
                    mirror.revision(),
                    "answers fenced at the mirror revision"
                );
                let local = fresh_local(backend, &mirror);
                let mut expected = vec![Located::Silent; points.len()];
                local.locate_batch(&points, &mut expected);
                assert_eq!(
                    answers, expected,
                    "locate diff ({backend}, seed {seed}, round {round}, revision {rev})"
                );
                checks += points.len();
            }
        }
    }
    checks
}

/// The acceptance-criteria test: ≥ 3 concurrent clients on one TCP
/// server, each interleaving mutations and query batches at random,
/// every answer bit-identical to a fresh local `ExactScan` on the same
/// network revision.
#[test]
fn concurrent_clients_differential_against_exact_scan() {
    let server = Server::bind("127.0.0.1:0").expect("bind ephemeral");
    let handle = server.spawn().expect("spawn server");
    let addr = handle.addr();

    let clients: Vec<_> = (0..4)
        .map(|k| {
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                drive_session(&mut client, BackendId::ExactScan, 0xE2E0 + k, 40)
            })
        })
        .collect();
    let mut total_checks = 0;
    for c in clients {
        total_checks += c.join().expect("client thread must not panic");
    }
    assert!(
        total_checks > 1000,
        "suite barely exercised: {total_checks}"
    );
    handle.shutdown();
}

/// Same interleavings through the SIMD and Voronoi backends, each
/// compared bit-for-bit against a fresh local engine of the *same*
/// backend (exactness across backends at SINR = β boundaries is a
/// core-crate property, not a server one), running concurrently on one
/// server to also exercise mixed-backend isolation.
#[test]
fn concurrent_mixed_backends_differential() {
    let server = Server::bind("127.0.0.1:0").expect("bind ephemeral");
    let handle = server.spawn().expect("spawn server");
    let addr = handle.addr();

    let mut threads = Vec::new();
    for (k, backend) in [
        BackendId::SimdScan,
        BackendId::VoronoiAssisted,
        BackendId::ExactScan,
        BackendId::SimdScan,
    ]
    .into_iter()
    .enumerate()
    {
        threads.push(std::thread::spawn(move || {
            let mut client = Client::connect(addr).expect("connect");
            drive_session(&mut client, backend, 0xA11 + k as u64, 30)
        }));
    }
    for t in threads {
        t.join().expect("client thread must not panic");
    }
    handle.shutdown();
}

/// The Theorem-3 backend over TCP: answers must be *consistent* with
/// the exact ground truth (`Reception`/`Silent` are definite, and
/// `Uncertain(i)` is only legal where the locator's contract allows
/// it), dynamic updates flow through `Mutate`, and a mutation that
/// breaks the uniform-power precondition unbinds the session with the
/// documented `Unsupported` code.
#[test]
fn qds_session_consistency_and_unsupported_unbind() {
    let server = Server::bind("127.0.0.1:0").expect("bind ephemeral");
    let handle = server.spawn().expect("spawn server");

    let mut mirror = Network::uniform(
        vec![
            Point::new(0.0, 0.0),
            Point::new(6.0, 0.0),
            Point::new(3.0, 5.0),
        ],
        0.0,
        2.0,
    )
    .unwrap();
    let mut client = Client::connect(handle.addr()).expect("connect");
    let mut revision = client
        .bind_network(BackendId::Qds, 0.3, &mirror)
        .expect("qds bind");

    let mut rng = rand::rngs::StdRng::seed_from_u64(0x0D5);
    for _ in 0..3 {
        let points = random_queries(&mut rng, 200);
        let (rev, answers) = client.locate_batch(&points).expect("qds locate");
        assert_eq!(rev, mirror.revision());
        let exact = ExactScan::new(&mirror);
        for (p, a) in points.iter().zip(&answers) {
            let truth = exact.locate(*p);
            match a {
                Located::Reception(s) => assert_eq!(
                    truth,
                    Located::Reception(*s),
                    "qds claimed definite reception of {s} at {p}"
                ),
                Located::Silent => {
                    assert_eq!(
                        truth,
                        Located::Silent,
                        "qds claimed definite silence at {p}"
                    )
                }
                // Uncertain: the candidate must at least be the only
                // possible transmitter (the exact answer is it or nobody).
                Located::Uncertain(s) => assert!(
                    truth == Located::Silent || truth == Located::Reception(*s),
                    "qds uncertain about {s} at {p} but the truth is {truth:?}"
                ),
            }
        }
        // A uniform-power move keeps the session alive and the locator
        // incrementally synced.
        let op = SurgeryOp::Move {
            id: StationId(rng.gen_range(0..mirror.len())),
            to: Point::new(rng.gen_range(-2.0..8.0), rng.gen_range(-2.0..6.0)),
        };
        mirror.apply_op(&op).unwrap();
        revision = client.mutate(revision, &[op]).expect("uniform move");
        assert_eq!(revision, mirror.revision());
    }

    // Breaking uniform power: the backend cannot represent it → typed
    // Unsupported error, and the session is unbound afterwards.
    let err = client
        .mutate(
            revision,
            &[SurgeryOp::SetPower {
                id: StationId(0),
                power: 2.0,
            }],
        )
        .expect_err("non-uniform power must be Unsupported for qds");
    match err {
        ClientError::Server { code, .. } => assert_eq!(code, ErrorCode::Unsupported),
        other => panic!("wrong error: {other}"),
    }
    let err = client
        .locate_batch(&[Point::new(0.0, 0.0)])
        .expect_err("session must be unbound after Unsupported");
    match err {
        ClientError::Server { code, .. } => assert_eq!(code, ErrorCode::NotBound),
        other => panic!("wrong error: {other}"),
    }
    drop(client);
    handle.shutdown();
}

/// The revision fence: a `Mutate` computed against any other revision
/// is rejected in full — the session network does not move and
/// subsequent answers still match the unmutated mirror.
#[test]
fn foreign_revision_mutate_is_rejected_without_effect() {
    let server = Server::bind("127.0.0.1:0").expect("bind ephemeral");
    let handle = server.spawn().expect("spawn server");

    let mirror = random_network(7, true);
    let mut client = Client::connect(handle.addr()).expect("connect");
    let revision = client
        .bind_network(BackendId::VoronoiAssisted, 0.0, &mirror)
        .expect("bind");

    for bad_revision in [revision + 1, revision + 100, u64::MAX] {
        let err = client
            .mutate(
                bad_revision,
                &[SurgeryOp::Move {
                    id: StationId(0),
                    to: Point::new(1.0, 1.0),
                }],
            )
            .expect_err("foreign revision must be fenced");
        match err {
            ClientError::Server { code, message } => {
                assert_eq!(code, ErrorCode::RevisionMismatch);
                assert!(
                    message.contains("nothing was applied"),
                    "message: {message}"
                );
            }
            other => panic!("wrong error: {other}"),
        }
    }
    // The network really did not move.
    let mut rng = rand::rngs::StdRng::seed_from_u64(99);
    let points = random_queries(&mut rng, 300);
    let (rev, answers) = client.locate_batch(&points).expect("still serving");
    assert_eq!(rev, revision);
    let local = fresh_local(BackendId::VoronoiAssisted, &mirror);
    let mut expected = vec![Located::Silent; points.len()];
    local.locate_batch(&points, &mut expected);
    assert_eq!(answers, expected);
    drop(client);
    handle.shutdown();
}

/// Mid-timestep surgery failure: the valid prefix stays applied (and
/// the engine follows it), the failing op is reported with its index,
/// and the session keeps serving at the partially advanced revision.
#[test]
fn surgery_error_applies_prefix_and_keeps_session() {
    let server = Server::bind("127.0.0.1:0").expect("bind ephemeral");
    let handle = server.spawn().expect("spawn server");

    let mut mirror = random_network(13, true);
    let mut client = Client::connect(handle.addr()).expect("connect");
    let revision = client
        .bind_network(BackendId::ExactScan, 0.0, &mirror)
        .expect("bind");

    let good = SurgeryOp::Move {
        id: StationId(0),
        to: Point::new(2.5, -1.5),
    };
    let bad = SurgeryOp::Remove { id: StationId(500) };
    let err = client
        .mutate(revision, &[good, bad, good])
        .expect_err("out-of-range remove must fail");
    match err {
        ClientError::Server { code, message } => {
            assert_eq!(code, ErrorCode::Surgery);
            assert!(message.contains("op #1"), "message names the op: {message}");
        }
        other => panic!("wrong error: {other}"),
    }
    // Mirror the server's documented semantics: the prefix applied.
    mirror.apply_op(&good).unwrap();

    let mut rng = rand::rngs::StdRng::seed_from_u64(5);
    let points = random_queries(&mut rng, 200);
    let (rev, answers) = client.locate_batch(&points).expect("session survives");
    assert_eq!(
        rev,
        mirror.revision(),
        "revision advanced by the prefix only"
    );
    let local = ExactScan::new(&mirror);
    let mut expected = vec![Located::Silent; points.len()];
    local.locate_batch(&points, &mut expected);
    assert_eq!(answers, expected);
    drop(client);
    handle.shutdown();
}

/// Session isolation under hostility: a client spraying garbage gets
/// typed errors (or a closed connection), while a well-behaved bound
/// session on the same server keeps answering correctly throughout.
#[test]
fn hostile_client_does_not_poison_neighbour_sessions() {
    let server = Server::bind("127.0.0.1:0").expect("bind ephemeral");
    let handle = server.spawn().expect("spawn server");
    let addr = handle.addr();

    let mirror = random_network(21, true);
    let mut good = Client::connect(addr).expect("connect good");
    let revision = good
        .bind_network(BackendId::SimdScan, 0.0, &mirror)
        .expect("bind");

    let mut rng = rand::rngs::StdRng::seed_from_u64(0xBAD);
    for round in 0..8 {
        // A fresh hostile connection per round: garbage payloads through
        // well-formed framing, then an abrupt disconnect.
        let mut evil = Client::connect(addr).expect("connect evil");
        let garbage: Vec<u8> = (0..rng.gen_range(1..64))
            .map(|_| rng.gen_range(0..=255))
            .collect();
        evil.send_raw(&garbage).expect("send garbage");
        match evil.recv() {
            Err(ClientError::Server { .. }) | Err(ClientError::ConnectionClosed) => {}
            Ok(resp) => panic!("garbage produced a success response: {resp:?}"),
            Err(other) => panic!("unexpected failure: {other}"),
        }
        drop(evil);

        // The good session is unaffected, round after round.
        let points = random_queries(&mut rng, 100);
        let (rev, answers) = good.locate_batch(&points).expect("good session lives");
        assert_eq!(rev, revision);
        let local = fresh_local(BackendId::SimdScan, &mirror);
        let mut expected = vec![Located::Silent; points.len()];
        local.locate_batch(&points, &mut expected);
        assert_eq!(answers, expected, "round {round}");
    }
    drop(good);
    handle.shutdown();
}

/// Pipelined mode ≡ request/response mode, bit-for-bit, over both
/// transports — the PR-5 contract: keeping multiple `LocateBatch`
/// frames in flight changes scheduling (the engine's tiled executor is
/// never starved between bursts), never answers. The bound network is
/// large enough (and the bursts long enough) that the server-side
/// engine actually runs the tiled pruned path.
#[test]
fn pipelined_locate_stream_matches_request_response() {
    let n = 160; // ≥ TILED_MIN_STATIONS: the session engine tiles.
    let half = 2.0 * (n as f64).sqrt();
    let net = sinr_core::gen::random_uniform_network(0x9139, n, half, 0.01, 2.0).unwrap();
    let mut rng = rand::rngs::StdRng::seed_from_u64(0x9139 ^ 1);
    let bursts: Vec<Vec<Point>> = (0..6)
        .map(|_| {
            (0..2200)
                .map(|_| {
                    Point::new(
                        rng.gen_range(-half * 1.1..half * 1.1),
                        rng.gen_range(-half * 1.1..half * 1.1),
                    )
                })
                .collect()
        })
        .collect();
    let burst_refs: Vec<&[Point]> = bursts.iter().map(|b| b.as_slice()).collect();

    let server = Server::bind("127.0.0.1:0").expect("bind ephemeral");
    let handle = server.spawn().expect("spawn server");

    for backend in [BackendId::SimdScan, BackendId::VoronoiAssisted] {
        // Request/response reference over TCP.
        let mut rr = Client::connect(handle.addr()).expect("connect rr");
        rr.bind_network(backend, 0.0, &net).expect("bind rr");
        let reference: Vec<(u64, Vec<Located>)> = bursts
            .iter()
            .map(|b| rr.locate_batch(b).expect("rr burst"))
            .collect();

        // The same stream pipelined at several window sizes, TCP.
        for in_flight in [1usize, 3, 6] {
            let mut piped = Client::connect(handle.addr()).expect("connect piped");
            piped.bind_network(backend, 0.0, &net).expect("bind piped");
            let got = piped
                .locate_batches_pipelined(&burst_refs, in_flight)
                .expect("pipelined stream");
            assert_eq!(
                got, reference,
                "{backend}: pipelined (window {in_flight}) diverged from request/response"
            );
        }

        // And over the in-process pipe: same frames, no sockets. The
        // pipe buffers unboundedly, so the widened byte budget lets
        // the full window actually stay in flight.
        let mut piped = sinr_server::serve_in_process();
        piped.bind_network(backend, 0.0, &net).expect("bind pipe");
        let got = piped
            .locate_batches_pipelined_with_budget(&burst_refs, 6, usize::MAX)
            .expect("pipe pipelined stream");
        assert_eq!(got, reference, "{backend}: pipe pipelined diverged");

        // The reference itself against a fresh local engine.
        let local = fresh_local(backend, &net);
        for ((rev, answers), burst) in reference.iter().zip(&bursts) {
            assert_eq!(*rev, net.revision());
            let mut expected = vec![Located::Silent; burst.len()];
            local.locate_batch(burst, &mut expected);
            assert_eq!(answers, &expected, "{backend}: server diverged from local");
        }
    }
    handle.shutdown();
}

/// An error frame occupies its request's slot in the response order, so
/// a pipelined client never loses alignment: Located, Error, Located —
/// exactly the send order.
#[test]
fn pipelined_errors_keep_their_response_slot() {
    let net = random_network(0xE5, true);
    let mut client = sinr_server::serve_in_process();
    client
        .bind_network(BackendId::ExactScan, 0.0, &net)
        .expect("bind");
    let burst = vec![Point::new(0.1, 0.2); 64];
    client.send_locate_batch(&burst).expect("send 1");
    client.send_raw(&[0x7F, 1, 2, 3]).expect("send malformed");
    client.send_locate_batch(&burst).expect("send 2");
    let (rev1, first) = client.recv_located().expect("first answer");
    match client.recv() {
        Err(ClientError::Server { code, .. }) => {
            assert_eq!(code, ErrorCode::MalformedFrame, "slot 2 is the error")
        }
        other => panic!("expected the malformed-frame error in slot 2, got {other:?}"),
    }
    let (rev2, second) = client.recv_located().expect("third answer");
    assert_eq!(rev1, rev2);
    assert_eq!(first, second, "identical bursts, identical answers");
}

/// The qds backend does not implement stochastic channels: a
/// `ReceptionProbBatch` gets the typed `ChannelUnsupported` error, the
/// session is unbound afterwards (same discipline as `Unsupported`),
/// and a fresh `Bind` on the same connection brings it back.
#[test]
fn qds_channel_request_unbinds_with_typed_error() {
    let net = Network::uniform(
        vec![
            Point::new(0.0, 0.0),
            Point::new(6.0, 0.0),
            Point::new(3.0, 5.0),
        ],
        0.0,
        2.0,
    )
    .unwrap();
    let mut client = sinr_server::serve_in_process();
    client
        .bind_network(BackendId::Qds, 0.3, &net)
        .expect("qds bind");

    let err = client
        .reception_prob_batch(
            16,
            7,
            &ChannelModel::RayleighFading,
            &[Point::new(0.5, 0.0)],
        )
        .expect_err("qds must refuse stochastic channels");
    match err {
        ClientError::Server { code, message } => {
            assert_eq!(code, ErrorCode::ChannelUnsupported);
            assert!(
                message.contains("qds"),
                "message names the backend: {message}"
            );
        }
        other => panic!("wrong error: {other}"),
    }
    // Unbound: the next query is NotBound, exactly like `Unsupported`.
    let err = client
        .locate_batch(&[Point::new(0.0, 0.0)])
        .expect_err("session must be unbound after ChannelUnsupported");
    match err {
        ClientError::Server { code, .. } => assert_eq!(code, ErrorCode::NotBound),
        other => panic!("wrong error: {other}"),
    }
    // The connection itself survives: rebinding works.
    client
        .bind_network(BackendId::ExactScan, 0.0, &net)
        .expect("rebind after unbind");
    let (_, values) = client
        .reception_prob_batch(
            16,
            7,
            &ChannelModel::RayleighFading,
            &[Point::new(0.5, 0.0)],
        )
        .expect("exact_scan serves channels");
    assert_eq!(values.len(), 1);

    // Invalid channel specs are per-request: the session survives them.
    let err = client
        .reception_prob_batch(
            16,
            7,
            &ChannelModel::LogNormalShadowing { sigma_db: -1.0 },
            &[Point::new(0.5, 0.0)],
        )
        .expect_err("negative sigma is invalid");
    match err {
        ClientError::Server { code, .. } => assert_eq!(code, ErrorCode::InvalidChannel),
        other => panic!("wrong error: {other}"),
    }
    let err = client
        .reception_prob_batch(0, 7, &ChannelModel::RayleighFading, &[Point::new(0.5, 0.0)])
        .expect_err("zero trials is invalid");
    match err {
        ClientError::Server { code, .. } => assert_eq!(code, ErrorCode::InvalidChannel),
        other => panic!("wrong error: {other}"),
    }
    let (_, values) = client
        .reception_prob_batch(16, 7, &ChannelModel::Deterministic, &[Point::new(0.5, 0.0)])
        .expect("session survives InvalidChannel");
    assert_eq!(values.len(), 1);
}

/// Seeded `ReceptionProbBatch` answers are pinned across the server
/// boundary and across mutation: after a churn of surgery frames, the
/// server's (incrementally patched) engine answers the same seeded
/// Monte-Carlo batch bit-identically to a fresh local engine at the
/// same revision — and replaying the identical request frame returns
/// the identical bytes.
#[test]
fn seeded_reception_probs_pinned_across_server_and_mutation() {
    let server = Server::bind("127.0.0.1:0").expect("bind ephemeral");
    let handle = server.spawn().expect("spawn server");

    let mut rng = rand::rngs::StdRng::seed_from_u64(0xC0FFEE);
    let mut mirror = random_network(0xC0FFEE, false);
    let mut client = Client::connect(handle.addr()).expect("connect");
    let mut revision = client
        .bind_network(BackendId::SimdScan, 0.0, &mirror)
        .expect("bind");

    // Churn the network so the served engine is the patched one, never
    // a fresh build.
    for _ in 0..12 {
        let ops = random_timestep(&mut rng, &mut mirror, false);
        revision = client.mutate(revision, &ops).expect("mutate");
    }
    assert_eq!(revision, mirror.revision());

    let channel = ChannelModel::Composed(vec![
        ChannelModel::LogNormalShadowing { sigma_db: 4.0 },
        ChannelModel::RayleighFading,
    ]);
    let points = random_queries(&mut rng, 300);
    let (rev, first) = client
        .reception_prob_batch(48, 0x5EED, &channel, &points)
        .expect("server answers");
    assert_eq!(rev, mirror.revision());

    let local = fresh_local(BackendId::SimdScan, &mirror);
    let mut expected = vec![0.0; points.len()];
    local
        .reception_probability_batch(&channel, McConfig::new(48, 0x5EED), &points, &mut expected)
        .expect("local replay");
    for (k, (got, want)) in first.iter().zip(&expected).enumerate() {
        assert_eq!(
            got.to_bits(),
            want.to_bits(),
            "server diverged from fresh local engine at point {k}"
        );
    }

    // Replaying the identical request is bit-identical.
    let (_, second) = client
        .reception_prob_batch(48, 0x5EED, &channel, &points)
        .expect("replay");
    assert_eq!(
        first.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
        second.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
    );
    // A different seed decorrelates (some point must differ).
    let (_, other_seed) = client
        .reception_prob_batch(48, 0x5EED ^ 1, &channel, &points)
        .expect("other seed");
    assert_ne!(first, other_seed, "different seeds must decorrelate");
    drop(client);
    handle.shutdown();
}
