//! The server-side registry of **named networks**: the shared-engine
//! serving path.
//!
//! `Bind` gives a session a private network and a private engine —
//! isolation at the cost of one engine *per session*. The registry is
//! the shared alternative: a network is [registered](NetworkRegistry::register)
//! once under a name, any number of sessions [attach](NetworkRegistry::attach)
//! to it, and all sessions attached with the same (backend, epsilon)
//! share **one** [`SnapshotStore`] — one engine per (network, backend,
//! revision), regardless of session count.
//!
//! Mutation goes through [`NamedNetwork::mutate`]: the network is
//! revision-fenced exactly like the private path, the emitted deltas
//! advance every store (incremental [`sinr_core::QueryEngine::apply`],
//! one publication per store), and every attached session observes the
//! new snapshot at its next request. A store whose backend cannot
//! represent the mutated network (e.g. the Theorem-3 locator after a
//! non-uniform `SetPower`) is poisoned and dropped from the registry;
//! sessions holding it see the poison on their next load and detach.
//!
//! Lock discipline: the registry map lock and a network's inner lock
//! are never held together, and the store mutex nests strictly inside
//! the network lock (mutation advances stores while fencing the
//! network). Readers never take the network lock at all — queries go
//! `Arc<SnapshotStore> → Arc<EngineSnapshot>`, both brief mutex-clone
//! hops.

use crate::protocol::{BackendId, NetworkSpec, MAX_NETWORK_NAME_LEN};
use sinr_core::engine::BoxedEngine;
use sinr_core::{EngineSnapshot, Network, NetworkDelta, NetworkError, SnapshotStore, SurgeryOp};
use sinr_pointloc::{PointLocator, QdsConfig};
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// Builds the requested backend over `net`, as one erased engine.
///
/// # Errors
///
/// A human-readable build failure (bad `epsilon`, Theorem-3
/// preconditions) — the caller maps it onto
/// [`ErrorCode::BackendBuild`](crate::protocol::ErrorCode::BackendBuild).
pub fn build_backend(
    backend: BackendId,
    epsilon: f64,
    net: &Network,
) -> Result<BoxedEngine, String> {
    match backend {
        BackendId::ExactScan => Ok(BoxedEngine::exact_scan(net)),
        BackendId::SimdScan => Ok(BoxedEngine::simd_scan(net)),
        BackendId::VoronoiAssisted => Ok(BoxedEngine::voronoi_assisted(net)),
        BackendId::Qds => {
            if !(epsilon > 0.0 && epsilon < 1.0) {
                return Err(format!("qds needs 0 < epsilon < 1, got {epsilon}"));
            }
            PointLocator::build(net, &QdsConfig::with_epsilon(epsilon))
                .map(|locator| BoxedEngine::new("qds", locator))
                .map_err(|e| e.to_string())
        }
    }
}

/// Why a [`NetworkRegistry::register`] failed.
#[derive(Debug)]
pub enum RegisterError {
    /// The name is already registered.
    NameTaken,
    /// The name is empty or longer than [`MAX_NETWORK_NAME_LEN`] bytes
    /// (unreachable via the wire, whose length byte enforces the bound;
    /// reachable through the in-process API).
    InvalidName,
    /// The network spec failed [`Network`] validation.
    InvalidNetwork(NetworkError),
}

impl std::fmt::Display for RegisterError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RegisterError::NameTaken => write!(f, "a network with this name is already registered"),
            RegisterError::InvalidName => {
                write!(f, "network names must be 1..={MAX_NETWORK_NAME_LEN} bytes")
            }
            RegisterError::InvalidNetwork(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for RegisterError {}

/// Why a [`NetworkRegistry::attach`] failed.
#[derive(Debug)]
pub enum AttachError {
    /// No network is registered under that name.
    UnknownNetwork,
    /// The backend refused the network (see [`build_backend`]).
    BackendBuild(String),
}

impl std::fmt::Display for AttachError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AttachError::UnknownNetwork => write!(f, "no network registered under this name"),
            AttachError::BackendBuild(msg) => write!(f, "{msg}"),
        }
    }
}

impl std::error::Error for AttachError {}

/// Why a [`NamedNetwork::mutate`] failed.
#[derive(Debug)]
pub enum MutateError {
    /// The ops were computed against another revision; nothing was
    /// applied.
    RevisionMismatch {
        /// What the mutator expected.
        expected: u64,
        /// Where the network actually is.
        current: u64,
    },
    /// An op failed validation mid-timestep; the prefix stays applied
    /// (and was published to every store).
    Surgery {
        /// The batch error's display output (names the failing op).
        message: String,
        /// The network's revision after the applied prefix.
        revision: u64,
    },
}

/// What a successful [`NamedNetwork::mutate`] reports.
#[derive(Debug, Clone, Copy)]
pub struct MutateOk {
    /// The network's revision after the whole timestep.
    pub revision: u64,
    /// Number of ops applied.
    pub applied: u32,
}

/// One store per engine flavour serving a named network: the backend
/// plus (for [`BackendId::Qds`]) the approximation parameter, compared
/// bitwise so attaching with the same `epsilon` shares the store.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct StoreKey {
    backend: BackendId,
    epsilon_bits: u64,
}

impl StoreKey {
    fn new(backend: BackendId, epsilon: f64) -> StoreKey {
        StoreKey {
            backend,
            // Exact backends ignore epsilon — normalize so every attach
            // shares one store regardless of the junk in the field.
            epsilon_bits: match backend {
                BackendId::Qds => epsilon.to_bits(),
                _ => 0,
            },
        }
    }
}

/// Why a [`NetworkRegistry::unregister`] failed.
#[derive(Debug, PartialEq, Eq)]
pub enum UnregisterError {
    /// No network is registered under that name.
    UnknownNetwork,
    /// Sessions are still attached; the name stays registered. Detach
    /// them (close the sessions) and retry.
    StillAttached {
        /// How many attachments were alive at the time of the call.
        attached: usize,
    },
}

impl std::fmt::Display for UnregisterError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            UnregisterError::UnknownNetwork => write!(f, "no network registered under this name"),
            UnregisterError::StillAttached { attached } => write!(
                f,
                "{attached} session(s) are still attached to this network"
            ),
        }
    }
}

impl std::error::Error for UnregisterError {}

/// A registered network: the live [`Network`] plus the shared
/// [`SnapshotStore`]s serving it (one per attached backend flavour).
#[derive(Debug)]
pub struct NamedNetwork {
    name: String,
    /// Live attachments (one per undropped [`AttachGuard`]); gates
    /// [`NetworkRegistry::unregister`].
    attached: AtomicUsize,
    inner: Mutex<NamedInner>,
}

/// The refcount half of an [`AttachHandle`]: one attachment, released
/// exactly once when the last clone of the handle drops — cloning a
/// handle shares the guard rather than double-counting.
#[derive(Debug)]
pub struct AttachGuard {
    network: Arc<NamedNetwork>,
}

impl Drop for AttachGuard {
    fn drop(&mut self) {
        self.network.attached.fetch_sub(1, Ordering::AcqRel);
    }
}

#[derive(Debug)]
struct NamedInner {
    net: Network,
    stores: HashMap<StoreKey, Arc<SnapshotStore>>,
}

impl NamedNetwork {
    /// The registry name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The live network's current revision.
    pub fn revision(&self) -> u64 {
        self.inner
            .lock()
            .expect("named network lock")
            .net
            .revision()
    }

    /// The live network's current station count.
    pub fn stations(&self) -> usize {
        self.inner.lock().expect("named network lock").net.len()
    }

    /// A clone of the live network at its current revision (test and
    /// example observability — differential suites rebuild local
    /// engines from this).
    pub fn network(&self) -> Network {
        self.inner.lock().expect("named network lock").net.clone()
    }

    /// Number of live snapshot stores (one per attached backend
    /// flavour) — the memory-scaling observable: N sessions attached
    /// with one backend keep this at 1.
    pub fn store_count(&self) -> usize {
        self.inner.lock().expect("named network lock").stores.len()
    }

    /// Number of live attachments (undropped [`AttachGuard`]s) — the
    /// count that gates [`NetworkRegistry::unregister`].
    pub fn attached_count(&self) -> usize {
        self.attached.load(Ordering::Acquire)
    }

    /// The currently published snapshot of the store for
    /// (`backend`, `epsilon`), if one exists and is healthy — `Arc`
    /// identity is the test observable for snapshot sharing.
    pub fn snapshot(&self, backend: BackendId, epsilon: f64) -> Option<Arc<EngineSnapshot>> {
        let inner = self.inner.lock().expect("named network lock");
        let store = inner.stores.get(&StoreKey::new(backend, epsilon))?;
        store.load().ok()
    }

    /// Applies a revision-fenced timestep of surgery to the live
    /// network and publishes the result to **every** store: after this
    /// returns, each healthy store's next load answers for the new
    /// revision, while snapshots already loaded by in-flight batches
    /// stay valid at their own revision (RCU). Stores whose backend
    /// cannot represent the mutated network are poisoned and dropped —
    /// their sessions detach on next use.
    ///
    /// # Errors
    ///
    /// [`MutateError::RevisionMismatch`] (nothing applied) or
    /// [`MutateError::Surgery`] (prefix applied and published).
    pub fn mutate(
        &self,
        expected_revision: u64,
        ops: &[SurgeryOp],
    ) -> Result<MutateOk, MutateError> {
        let mut inner = self.inner.lock().expect("named network lock");
        let current = inner.net.revision();
        if expected_revision != current {
            return Err(MutateError::RevisionMismatch {
                expected: expected_revision,
                current,
            });
        }
        match inner.net.apply_ops(ops) {
            Ok(deltas) => {
                let applied = deltas.len() as u32;
                Self::advance_stores(&mut inner, &deltas);
                Ok(MutateOk {
                    revision: inner.net.revision(),
                    applied,
                })
            }
            Err(batch) => {
                Self::advance_stores(&mut inner, &batch.applied);
                Err(MutateError::Surgery {
                    message: batch.to_string(),
                    revision: inner.net.revision(),
                })
            }
        }
    }

    fn advance_stores(inner: &mut NamedInner, deltas: &[NetworkDelta]) {
        let NamedInner { net, stores } = inner;
        // A store that cannot follow is poisoned by its own `advance`;
        // dropping it here keeps later attaches building fresh (the
        // poisoned Arc keeps erroring for the sessions still holding it).
        stores.retain(|_, store| store.advance(net, deltas).is_ok());
    }
}

/// The server-wide name → network map. Shared behind an [`Arc`] by
/// every session a server accepts (each [`crate::Server`] owns one).
#[derive(Debug, Default)]
pub struct NetworkRegistry {
    networks: Mutex<HashMap<String, Arc<NamedNetwork>>>,
}

/// What [`NetworkRegistry::attach`] hands a session: the named network
/// (for mutation) and the shared snapshot store (for queries).
#[derive(Debug, Clone)]
pub struct AttachHandle {
    /// The attached network.
    pub network: Arc<NamedNetwork>,
    /// The shared store for the requested backend flavour.
    pub store: Arc<SnapshotStore>,
    /// The published revision at attach time.
    pub revision: u64,
    /// The attachment refcount token: the network counts as attached
    /// until the last clone of this handle drops.
    pub guard: Arc<AttachGuard>,
}

impl NetworkRegistry {
    /// An empty registry.
    pub fn new() -> NetworkRegistry {
        NetworkRegistry::default()
    }

    /// Builds and registers a network under `name`; returns its
    /// starting revision.
    ///
    /// # Errors
    ///
    /// See [`RegisterError`]. On error nothing is registered.
    pub fn register(&self, name: &str, spec: &NetworkSpec) -> Result<u64, RegisterError> {
        if name.is_empty() || name.len() > MAX_NETWORK_NAME_LEN {
            return Err(RegisterError::InvalidName);
        }
        let net = spec.build().map_err(RegisterError::InvalidNetwork)?;
        let mut networks = self.networks.lock().expect("registry lock");
        if networks.contains_key(name) {
            return Err(RegisterError::NameTaken);
        }
        let revision = net.revision();
        networks.insert(
            name.to_owned(),
            Arc::new(NamedNetwork {
                name: name.to_owned(),
                attached: AtomicUsize::new(0),
                inner: Mutex::new(NamedInner {
                    net,
                    stores: HashMap::new(),
                }),
            }),
        );
        Ok(revision)
    }

    /// Attaches to a registered network with the given backend flavour,
    /// creating the shared store on first attach and joining it on
    /// every later one.
    ///
    /// # Errors
    ///
    /// See [`AttachError`].
    pub fn attach(
        &self,
        name: &str,
        backend: BackendId,
        epsilon: f64,
    ) -> Result<AttachHandle, AttachError> {
        let network = self.get(name).ok_or(AttachError::UnknownNetwork)?;
        let key = StoreKey::new(backend, epsilon);
        let store = {
            let mut inner = network.inner.lock().expect("named network lock");
            match inner.stores.get(&key) {
                Some(store) => Arc::clone(store),
                None => {
                    let engine = build_backend(backend, epsilon, &inner.net)
                        .map_err(AttachError::BackendBuild)?;
                    let store = Arc::new(SnapshotStore::new(&inner.net, engine));
                    inner.stores.insert(key, Arc::clone(&store));
                    store
                }
            }
        };
        // A store in the map is healthy by construction (mutation drops
        // poisoned ones under the same lock we just held).
        let revision = store
            .revision()
            .map_err(|e| AttachError::BackendBuild(e.to_string()))?;
        network.attached.fetch_add(1, Ordering::AcqRel);
        let guard = Arc::new(AttachGuard {
            network: Arc::clone(&network),
        });
        Ok(AttachHandle {
            network,
            store,
            revision,
            guard,
        })
    }

    /// Removes a registered network, provided no session is attached.
    ///
    /// The attachment check and the removal run under the registry
    /// lock, but an `attach` racing this call may have already looked
    /// the network up: that attacher keeps a working (now anonymous)
    /// handle — its snapshots stay valid, only the *name* is gone. This
    /// is the same semantics a file gets from `unlink(2)` with open
    /// descriptors, and it is why unregistration can never poison a
    /// running session.
    ///
    /// # Errors
    ///
    /// See [`UnregisterError`]. On error nothing changes.
    pub fn unregister(&self, name: &str) -> Result<(), UnregisterError> {
        let mut networks = self.networks.lock().expect("registry lock");
        let network = networks.get(name).ok_or(UnregisterError::UnknownNetwork)?;
        let attached = network.attached.load(Ordering::Acquire);
        if attached > 0 {
            return Err(UnregisterError::StillAttached { attached });
        }
        networks.remove(name);
        Ok(())
    }

    /// The named network, if registered.
    pub fn get(&self, name: &str) -> Option<Arc<NamedNetwork>> {
        self.networks
            .lock()
            .expect("registry lock")
            .get(name)
            .cloned()
    }

    /// Every registered name, in no particular order.
    pub fn names(&self) -> Vec<String> {
        self.networks
            .lock()
            .expect("registry lock")
            .keys()
            .cloned()
            .collect()
    }
}
