//! The server-side registry of **named networks**: the shared-engine
//! serving path.
//!
//! `Bind` gives a session a private network and a private engine —
//! isolation at the cost of one engine *per session*. The registry is
//! the shared alternative: a network is [registered](NetworkRegistry::register)
//! once under a name, any number of sessions [attach](NetworkRegistry::attach)
//! to it, and all sessions attached with the same (backend, epsilon)
//! share **one** [`SnapshotStore`] — one engine per (network, backend,
//! revision), regardless of session count.
//!
//! Mutation goes through [`NamedNetwork::mutate`]: the network is
//! revision-fenced exactly like the private path, then the emitted
//! deltas advance every store (incremental
//! [`sinr_core::QueryEngine::apply`], one publication per store)
//! **off the network lock** — the lock is held only long enough to
//! fence and apply the ops, so a slow advancement (worst case a full
//! rebuild on the sync fallback) never stalls a concurrent attach or
//! reader. Every attached session observes the new snapshot at its
//! next request. A store whose backend cannot represent the mutated
//! network (e.g. the Theorem-3 locator after a non-uniform `SetPower`)
//! is poisoned and dropped from the registry; sessions holding it see
//! the poison on their next load and detach.
//!
//! Lock discipline: timesteps serialize on a dedicated per-network
//! mutation lock, acquired before (and released after) the network's
//! inner lock; the registry map lock and a network's inner lock are
//! never held together; and no store mutex is ever taken while the
//! inner lock is held — stores advance between two short critical
//! sections (fence + apply ops, then drop poisoned stores). Readers
//! never take the network lock at all — queries go
//! `Arc<SnapshotStore> → Arc<EngineSnapshot>`, both brief mutex-clone
//! hops.

use crate::protocol::{BackendId, NetworkSpec, MAX_NETWORK_NAME_LEN};
use sinr_core::engine::BoxedEngine;
use sinr_core::{EngineSnapshot, Network, NetworkError, SnapshotStore, SurgeryOp};
use sinr_pointloc::{PointLocator, QdsConfig};
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// Builds the requested backend over `net`, as one erased engine.
///
/// # Errors
///
/// A human-readable build failure (bad `epsilon`, Theorem-3
/// preconditions) — the caller maps it onto
/// [`ErrorCode::BackendBuild`](crate::protocol::ErrorCode::BackendBuild).
pub fn build_backend(
    backend: BackendId,
    epsilon: f64,
    net: &Network,
) -> Result<BoxedEngine, String> {
    match backend {
        BackendId::ExactScan => Ok(BoxedEngine::exact_scan(net)),
        BackendId::SimdScan => Ok(BoxedEngine::simd_scan(net)),
        BackendId::VoronoiAssisted => Ok(BoxedEngine::voronoi_assisted(net)),
        BackendId::Qds => {
            if !(epsilon > 0.0 && epsilon < 1.0) {
                return Err(format!("qds needs 0 < epsilon < 1, got {epsilon}"));
            }
            PointLocator::build(net, &QdsConfig::with_epsilon(epsilon))
                .map(|locator| BoxedEngine::new("qds", locator))
                .map_err(|e| e.to_string())
        }
    }
}

/// Why a [`NetworkRegistry::register`] failed.
#[derive(Debug)]
pub enum RegisterError {
    /// The name is already registered.
    NameTaken,
    /// The name is empty or longer than [`MAX_NETWORK_NAME_LEN`] bytes
    /// (unreachable via the wire, whose length byte enforces the bound;
    /// reachable through the in-process API).
    InvalidName,
    /// The network spec failed [`Network`] validation.
    InvalidNetwork(NetworkError),
}

impl std::fmt::Display for RegisterError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RegisterError::NameTaken => write!(f, "a network with this name is already registered"),
            RegisterError::InvalidName => {
                write!(f, "network names must be 1..={MAX_NETWORK_NAME_LEN} bytes")
            }
            RegisterError::InvalidNetwork(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for RegisterError {}

/// Why a [`NetworkRegistry::attach`] failed.
#[derive(Debug)]
pub enum AttachError {
    /// No network is registered under that name.
    UnknownNetwork,
    /// The backend refused the network (see [`build_backend`]).
    BackendBuild(String),
}

impl std::fmt::Display for AttachError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AttachError::UnknownNetwork => write!(f, "no network registered under this name"),
            AttachError::BackendBuild(msg) => write!(f, "{msg}"),
        }
    }
}

impl std::error::Error for AttachError {}

/// Why a [`NamedNetwork::mutate`] failed.
#[derive(Debug)]
pub enum MutateError {
    /// The ops were computed against another revision; nothing was
    /// applied.
    RevisionMismatch {
        /// What the mutator expected.
        expected: u64,
        /// Where the network actually is.
        current: u64,
    },
    /// An op failed validation mid-timestep; the prefix stays applied
    /// (and was published to every store).
    Surgery {
        /// The batch error's display output (names the failing op).
        message: String,
        /// The network's revision after the applied prefix.
        revision: u64,
    },
}

/// What a successful [`NamedNetwork::mutate`] reports.
#[derive(Debug, Clone, Copy)]
pub struct MutateOk {
    /// The network's revision after the whole timestep.
    pub revision: u64,
    /// Number of ops applied.
    pub applied: u32,
}

/// One store per engine flavour serving a named network: the backend
/// plus (for [`BackendId::Qds`]) the approximation parameter, compared
/// bitwise so attaching with the same `epsilon` shares the store.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct StoreKey {
    backend: BackendId,
    epsilon_bits: u64,
}

impl StoreKey {
    fn new(backend: BackendId, epsilon: f64) -> StoreKey {
        StoreKey {
            backend,
            // Exact backends ignore epsilon — normalize so every attach
            // shares one store regardless of the junk in the field.
            epsilon_bits: match backend {
                BackendId::Qds => epsilon.to_bits(),
                _ => 0,
            },
        }
    }
}

/// Why a [`NetworkRegistry::unregister`] failed.
#[derive(Debug, PartialEq, Eq)]
pub enum UnregisterError {
    /// No network is registered under that name.
    UnknownNetwork,
    /// Sessions are still attached; the name stays registered. Detach
    /// them (close the sessions) and retry.
    StillAttached {
        /// How many attachments were alive at the time of the call.
        attached: usize,
    },
}

impl std::fmt::Display for UnregisterError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            UnregisterError::UnknownNetwork => write!(f, "no network registered under this name"),
            UnregisterError::StillAttached { attached } => write!(
                f,
                "{attached} session(s) are still attached to this network"
            ),
        }
    }
}

impl std::error::Error for UnregisterError {}

/// A registered network: the live [`Network`] plus the shared
/// [`SnapshotStore`]s serving it (one per attached backend flavour).
#[derive(Debug)]
pub struct NamedNetwork {
    name: String,
    /// Live attachments (one per undropped [`AttachGuard`]); gates
    /// [`NetworkRegistry::unregister`].
    attached: AtomicUsize,
    /// Serializes whole timesteps (fence → apply → advance stores →
    /// drop poisoned). Always acquired before `inner`, and held across
    /// the off-lock store advancement so concurrent mutations cannot
    /// interleave their delta batches out of order.
    mutation: Mutex<()>,
    inner: Mutex<NamedInner>,
}

/// The refcount half of an [`AttachHandle`]: one attachment, released
/// exactly once when the last clone of the handle drops — cloning a
/// handle shares the guard rather than double-counting.
#[derive(Debug)]
pub struct AttachGuard {
    network: Arc<NamedNetwork>,
}

impl Drop for AttachGuard {
    fn drop(&mut self) {
        self.network.attached.fetch_sub(1, Ordering::AcqRel);
    }
}

#[derive(Debug)]
struct NamedInner {
    net: Network,
    stores: HashMap<StoreKey, Arc<SnapshotStore>>,
}

impl NamedNetwork {
    /// The registry name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The live network's current revision.
    pub fn revision(&self) -> u64 {
        self.inner
            .lock()
            .expect("named network lock")
            .net
            .revision()
    }

    /// The live network's current station count.
    pub fn stations(&self) -> usize {
        self.inner.lock().expect("named network lock").net.len()
    }

    /// A clone of the live network at its current revision (test and
    /// example observability — differential suites rebuild local
    /// engines from this).
    pub fn network(&self) -> Network {
        self.inner.lock().expect("named network lock").net.clone()
    }

    /// Number of live snapshot stores (one per attached backend
    /// flavour) — the memory-scaling observable: N sessions attached
    /// with one backend keep this at 1.
    pub fn store_count(&self) -> usize {
        self.inner.lock().expect("named network lock").stores.len()
    }

    /// Number of live attachments (undropped [`AttachGuard`]s) — the
    /// count that gates [`NetworkRegistry::unregister`].
    pub fn attached_count(&self) -> usize {
        self.attached.load(Ordering::Acquire)
    }

    /// The currently published snapshot of the store for
    /// (`backend`, `epsilon`), if one exists and is healthy — `Arc`
    /// identity is the test observable for snapshot sharing.
    pub fn snapshot(&self, backend: BackendId, epsilon: f64) -> Option<Arc<EngineSnapshot>> {
        let inner = self.inner.lock().expect("named network lock");
        let store = inner.stores.get(&StoreKey::new(backend, epsilon))?;
        store.load().ok()
    }

    /// Applies a revision-fenced timestep of surgery to the live
    /// network and publishes the result to **every** store: after this
    /// returns, each healthy store's next load answers for the new
    /// revision, while snapshots already loaded by in-flight batches
    /// stay valid at their own revision (RCU). Stores whose backend
    /// cannot represent the mutated network are poisoned and dropped —
    /// their sessions detach on next use.
    ///
    /// Store advancement (including the full-rebuild sync fallback)
    /// runs with **no network lock held**: a concurrent
    /// [`NetworkRegistry::attach`] or snapshot load proceeds while the
    /// stores catch up, and simply observes the pre-advancement
    /// snapshot until the new one is published. Timesteps themselves
    /// stay strictly serialized (per-network mutation lock), so each
    /// store sees every delta batch exactly once, in emission order.
    ///
    /// # Errors
    ///
    /// [`MutateError::RevisionMismatch`] (nothing applied) or
    /// [`MutateError::Surgery`] (prefix applied and published).
    pub fn mutate(
        &self,
        expected_revision: u64,
        ops: &[SurgeryOp],
    ) -> Result<MutateOk, MutateError> {
        let _timestep = self.mutation.lock().expect("mutation lock");

        // Critical section 1: fence the revision, apply the ops, and
        // snapshot what advancement needs (the mutated network and the
        // store handles) — then let go of the lock before any store
        // does real work.
        let (outcome, net, deltas, stores) = {
            let mut inner = self.inner.lock().expect("named network lock");
            let current = inner.net.revision();
            if expected_revision != current {
                return Err(MutateError::RevisionMismatch {
                    expected: expected_revision,
                    current,
                });
            }
            let (outcome, deltas) = match inner.net.apply_ops(ops) {
                Ok(deltas) => {
                    let ok = MutateOk {
                        revision: inner.net.revision(),
                        applied: deltas.len() as u32,
                    };
                    (Ok(ok), deltas)
                }
                Err(batch) => {
                    let err = MutateError::Surgery {
                        message: batch.to_string(),
                        revision: inner.net.revision(),
                    };
                    (Err(err), batch.applied)
                }
            };
            let stores: Vec<(StoreKey, Arc<SnapshotStore>)> = inner
                .stores
                .iter()
                .map(|(key, store)| (*key, Arc::clone(store)))
                .collect();
            (outcome, inner.net.clone(), deltas, stores)
        };

        // Off-lock: advance every store. A store that cannot follow is
        // poisoned by its own `advance` (the poisoned Arc keeps erroring
        // for the sessions still holding it).
        let mut dropped: Vec<StoreKey> = Vec::new();
        for (key, store) in &stores {
            if store.advance(&net, &deltas).is_err() {
                dropped.push(*key);
            }
        }

        // Critical section 2: unpublish the poisoned stores so later
        // attaches build fresh. The mutation lock guarantees no other
        // timestep touched the map in between, and attach never
        // replaces a key that is present, so removal by key drops
        // exactly the stores advanced above.
        if !dropped.is_empty() {
            let mut inner = self.inner.lock().expect("named network lock");
            for key in &dropped {
                inner.stores.remove(key);
            }
        }
        outcome
    }
}

/// The server-wide name → network map. Shared behind an [`Arc`] by
/// every session a server accepts (each [`crate::Server`] owns one).
#[derive(Debug, Default)]
pub struct NetworkRegistry {
    networks: Mutex<HashMap<String, Arc<NamedNetwork>>>,
}

/// What [`NetworkRegistry::attach`] hands a session: the named network
/// (for mutation) and the shared snapshot store (for queries).
#[derive(Debug, Clone)]
pub struct AttachHandle {
    /// The attached network.
    pub network: Arc<NamedNetwork>,
    /// The shared store for the requested backend flavour.
    pub store: Arc<SnapshotStore>,
    /// The published revision at attach time.
    pub revision: u64,
    /// The attachment refcount token: the network counts as attached
    /// until the last clone of this handle drops.
    pub guard: Arc<AttachGuard>,
}

impl NetworkRegistry {
    /// An empty registry.
    pub fn new() -> NetworkRegistry {
        NetworkRegistry::default()
    }

    /// Builds and registers a network under `name`; returns its
    /// starting revision.
    ///
    /// # Errors
    ///
    /// See [`RegisterError`]. On error nothing is registered.
    pub fn register(&self, name: &str, spec: &NetworkSpec) -> Result<u64, RegisterError> {
        if name.is_empty() || name.len() > MAX_NETWORK_NAME_LEN {
            return Err(RegisterError::InvalidName);
        }
        let net = spec.build().map_err(RegisterError::InvalidNetwork)?;
        let mut networks = self.networks.lock().expect("registry lock");
        if networks.contains_key(name) {
            return Err(RegisterError::NameTaken);
        }
        let revision = net.revision();
        networks.insert(
            name.to_owned(),
            Arc::new(NamedNetwork {
                name: name.to_owned(),
                attached: AtomicUsize::new(0),
                mutation: Mutex::new(()),
                inner: Mutex::new(NamedInner {
                    net,
                    stores: HashMap::new(),
                }),
            }),
        );
        Ok(revision)
    }

    /// Attaches to a registered network with the given backend flavour,
    /// creating the shared store on first attach and joining it on
    /// every later one.
    ///
    /// # Errors
    ///
    /// See [`AttachError`].
    pub fn attach(
        &self,
        name: &str,
        backend: BackendId,
        epsilon: f64,
    ) -> Result<AttachHandle, AttachError> {
        let network = self.get(name).ok_or(AttachError::UnknownNetwork)?;
        let key = StoreKey::new(backend, epsilon);
        let store = {
            let mut inner = network.inner.lock().expect("named network lock");
            match inner.stores.get(&key) {
                Some(store) => Arc::clone(store),
                None => {
                    let engine = build_backend(backend, epsilon, &inner.net)
                        .map_err(AttachError::BackendBuild)?;
                    let store = Arc::new(SnapshotStore::new(&inner.net, engine));
                    inner.stores.insert(key, Arc::clone(&store));
                    store
                }
            }
        };
        // A store in the map is almost always healthy (mutation drops
        // poisoned ones), but a mutation advancing stores off-lock may
        // not have unpublished a just-poisoned store yet — surface the
        // poison as a build failure and let the client retry.
        let revision = store
            .revision()
            .map_err(|e| AttachError::BackendBuild(e.to_string()))?;
        network.attached.fetch_add(1, Ordering::AcqRel);
        let guard = Arc::new(AttachGuard {
            network: Arc::clone(&network),
        });
        Ok(AttachHandle {
            network,
            store,
            revision,
            guard,
        })
    }

    /// Removes a registered network, provided no session is attached.
    ///
    /// The attachment check and the removal run under the registry
    /// lock, but an `attach` racing this call may have already looked
    /// the network up: that attacher keeps a working (now anonymous)
    /// handle — its snapshots stay valid, only the *name* is gone. This
    /// is the same semantics a file gets from `unlink(2)` with open
    /// descriptors, and it is why unregistration can never poison a
    /// running session.
    ///
    /// # Errors
    ///
    /// See [`UnregisterError`]. On error nothing changes.
    pub fn unregister(&self, name: &str) -> Result<(), UnregisterError> {
        let mut networks = self.networks.lock().expect("registry lock");
        let network = networks.get(name).ok_or(UnregisterError::UnknownNetwork)?;
        let attached = network.attached.load(Ordering::Acquire);
        if attached > 0 {
            return Err(UnregisterError::StillAttached { attached });
        }
        networks.remove(name);
        Ok(())
    }

    /// The named network, if registered.
    pub fn get(&self, name: &str) -> Option<Arc<NamedNetwork>> {
        self.networks
            .lock()
            .expect("registry lock")
            .get(name)
            .cloned()
    }

    /// Every registered name, in no particular order.
    pub fn names(&self) -> Vec<String> {
        self.networks
            .lock()
            .expect("registry lock")
            .keys()
            .cloned()
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sinr_core::{LocateError, Located, NetworkDelta, QueryEngine, StationId, SyncError};
    use sinr_geometry::Point;
    use std::sync::atomic::AtomicBool;
    use std::sync::Condvar;
    use std::thread;
    use std::time::Duration;

    fn spec() -> NetworkSpec {
        NetworkSpec {
            noise: 0.01,
            beta: 1.5,
            alpha: 2.0,
            stations: vec![
                (Point::new(-3.0, 0.0), 1.0),
                (Point::new(3.0, 0.0), 1.0),
                (Point::new(0.0, 4.0), 1.0),
            ],
        }
    }

    /// Two-phase rendezvous for [`SlowApplyEngine`]: the engine parks
    /// inside `apply` (signalling `entered`) until the test `release`s
    /// it — a deterministic stand-in for a slow incremental update or
    /// rebuild.
    struct Gate {
        state: Mutex<(bool, bool)>, // (entered, released)
        cond: Condvar,
    }

    impl Gate {
        fn new() -> Arc<Gate> {
            Arc::new(Gate {
                state: Mutex::new((false, false)),
                cond: Condvar::new(),
            })
        }

        fn enter_and_wait(&self) {
            let mut st = self.state.lock().unwrap();
            st.0 = true;
            self.cond.notify_all();
            while !st.1 {
                st = self.cond.wait(st).unwrap();
            }
        }

        fn wait_entered(&self) {
            let mut st = self.state.lock().unwrap();
            while !st.0 {
                st = self.cond.wait(st).unwrap();
            }
        }

        fn release(&self) {
            let mut st = self.state.lock().unwrap();
            st.1 = true;
            self.cond.notify_all();
        }
    }

    /// An [`ExactScan`]-backed engine whose `apply` blocks on a
    /// [`Gate`] — only the store's private *master* ever has `apply`
    /// called, so published (frozen) clones are unaffected.
    #[derive(Clone)]
    struct SlowApplyEngine {
        inner: BoxedEngine,
        gate: Arc<Gate>,
    }

    impl QueryEngine for SlowApplyEngine {
        fn locate(&self, p: Point) -> Located {
            self.inner.locate(p)
        }

        fn sinr_batch(&self, i: StationId, points: &[Point], out: &mut [f64]) {
            self.inner.sinr_batch(i, points, out);
        }

        fn freshness(&self) -> Result<(), LocateError> {
            self.inner.freshness()
        }

        fn revision(&self) -> u64 {
            self.inner.revision()
        }

        fn is_stale(&self) -> bool {
            self.inner.is_stale()
        }

        fn apply(&mut self, delta: &NetworkDelta) -> Result<(), SyncError> {
            self.gate.enter_and_wait();
            self.inner.apply(delta)
        }

        fn sync(&mut self, net: &Network) -> Result<(), SyncError> {
            self.inner.sync(net)
        }

        fn freeze(&mut self) {
            self.inner.freeze();
        }
    }

    /// The locked-rebuild regression: a store whose advancement is slow
    /// must not stall a concurrent attach. Before the off-lock
    /// restructure, `mutate` held the network's inner lock across
    /// `SnapshotStore::advance`, so the attach below would block until
    /// the gate released — the assertion window catches that.
    #[test]
    fn slow_store_advancement_does_not_block_attach() {
        let registry = Arc::new(NetworkRegistry::new());
        registry.register("shared", &spec()).unwrap();
        let network = registry.get("shared").unwrap();

        // Plant a slow store under a key no attach below will use.
        let gate = Gate::new();
        {
            let mut inner = network.inner.lock().unwrap();
            let engine = BoxedEngine::new(
                "slow_apply",
                SlowApplyEngine {
                    inner: BoxedEngine::exact_scan(&inner.net),
                    gate: Arc::clone(&gate),
                },
            );
            let store = Arc::new(SnapshotStore::new(&inner.net, engine));
            inner
                .stores
                .insert(StoreKey::new(BackendId::SimdScan, 0.0), store);
        }

        let mutator = thread::spawn({
            let network = Arc::clone(&network);
            move || {
                network.mutate(
                    0,
                    &[SurgeryOp::Move {
                        id: StationId(0),
                        to: Point::new(-2.0, 1.0),
                    }],
                )
            }
        });
        // The mutator is now parked inside the slow store's advance.
        gate.wait_entered();

        // A concurrent attach (different backend → builds a new store
        // from the already-mutated network) must complete while the
        // slow store is still catching up.
        let attached = Arc::new(AtomicBool::new(false));
        let attacher = thread::spawn({
            let registry = Arc::clone(&registry);
            let attached = Arc::clone(&attached);
            move || {
                let handle = registry
                    .attach("shared", BackendId::ExactScan, 0.0)
                    .expect("attach during slow advancement");
                attached.store(true, Ordering::Release);
                handle.revision
            }
        });
        let mut waited = Duration::ZERO;
        while !attached.load(Ordering::Acquire) && waited < Duration::from_secs(10) {
            thread::sleep(Duration::from_millis(5));
            waited += Duration::from_millis(5);
        }
        assert!(
            attached.load(Ordering::Acquire),
            "attach blocked behind an in-flight store advancement"
        );
        // The new store is built from the live network, which already
        // carries the fenced timestep.
        assert_eq!(attacher.join().unwrap(), 1);

        // Unpark the slow store; the mutation completes and publishes.
        gate.release();
        let ok = mutator.join().unwrap().expect("mutation");
        assert_eq!(ok.revision, 1);
        assert_eq!(ok.applied, 1);
        assert_eq!(
            network
                .snapshot(BackendId::SimdScan, 0.0)
                .expect("slow store still published")
                .revision(),
            1
        );
    }

    /// Off-lock advancement still drops a store whose backend cannot
    /// represent the mutated network, exactly like the in-lock path
    /// did: the poisoned store vanishes from the map and later attaches
    /// with that flavour rebuild fresh.
    #[test]
    fn poisoned_store_is_dropped_after_offlock_advancement() {
        let registry = NetworkRegistry::new();
        registry.register("shared", &spec()).unwrap();
        // Theorem-3 locator: poisoned by a non-uniform SetPower.
        let handle = registry
            .attach("shared", BackendId::Qds, 0.25)
            .expect("attach qds");
        assert_eq!(handle.network.store_count(), 1);
        handle
            .network
            .mutate(
                0,
                &[SurgeryOp::SetPower {
                    id: StationId(0),
                    power: 7.0,
                }],
            )
            .expect("mutation itself succeeds");
        assert_eq!(
            handle.network.store_count(),
            0,
            "poisoned store must be unpublished"
        );
        assert!(handle.store.load().is_err(), "held Arc stays poisoned");
    }
}
