//! Frame transports: length-prefixed byte frames over TCP or an
//! in-process pipe.
//!
//! The wire unit of the protocol is the **frame**: a little-endian
//! `u32` payload length followed by that many payload bytes (see the
//! [crate docs](crate) for the payload grammar). The [`Transport`]
//! trait is the session loop's only view of the connection, so the
//! same [`serve_session`](crate::session::serve_session) serves a real
//! [`TcpStream`] and the loopback-free in-process [`PipeTransport`]
//! the tests and benches use.
//!
//! Framing is where adversarial input meets the server first, so the
//! failure modes are typed: a clean EOF between frames is `Ok(None)`, a
//! connection dying *mid-frame* is [`RecvError::TruncatedFrame`], and a
//! length prefix beyond [`MAX_FRAME_LEN`] is [`RecvError::Oversized`]
//! (detected **before** any allocation — a 4-byte prefix can claim 4 GiB).
//!
//! Three implementations ship: the blocking [`IoTransport`] (one
//! thread per connection), the in-process [`PipeTransport`] (tests and
//! benches, no sockets), and the nonblocking [`PolledIo`] the
//! worker-pool server multiplexes — same trait, so the session state
//! machine cannot tell them apart. `PolledIo` extends the contract in
//! one backward-compatible way: `recv_frame` returns
//! `Err(RecvError::Io(e))` with `e.kind() == WouldBlock` when no
//! complete frame has arrived *yet* (not an error — poll again), and
//! `send_frame` queues into an internal buffer that
//! [`PolledIo::flush_pending`] drains as the socket accepts it.

use std::collections::VecDeque;
use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::sync::{Arc, Condvar, Mutex};

/// Upper bound on a frame's payload length: 16 MiB (~500k query points
/// per `LocateBatch`). A prefix claiming more is rejected as
/// [`RecvError::Oversized`] before any buffer is allocated.
pub const MAX_FRAME_LEN: usize = 16 * 1024 * 1024;

/// Why receiving a frame failed.
#[derive(Debug)]
pub enum RecvError {
    /// The underlying stream failed.
    Io(io::Error),
    /// The length prefix claimed more than [`MAX_FRAME_LEN`] bytes. The
    /// stream position is unrecoverable after this — close the
    /// connection.
    Oversized {
        /// The claimed payload length.
        len: u64,
    },
    /// The stream ended mid-frame (a truncated length prefix or a
    /// payload shorter than its prefix promised).
    TruncatedFrame {
        /// Bytes the current unit (prefix or payload) still needed.
        missing: usize,
    },
}

impl std::fmt::Display for RecvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RecvError::Io(e) => write!(f, "transport i/o error: {e}"),
            RecvError::Oversized { len } => write!(
                f,
                "frame length {len} exceeds the {MAX_FRAME_LEN}-byte limit"
            ),
            RecvError::TruncatedFrame { missing } => {
                write!(f, "connection closed mid-frame ({missing} bytes short)")
            }
        }
    }
}

impl std::error::Error for RecvError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RecvError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for RecvError {
    fn from(e: io::Error) -> Self {
        RecvError::Io(e)
    }
}

/// A bidirectional frame pipe: the session loop's only view of the
/// connection.
pub trait Transport: Send {
    /// Sends one frame (length prefix + payload).
    ///
    /// # Errors
    ///
    /// An [`io::Error`] when the peer is gone or the payload exceeds
    /// [`MAX_FRAME_LEN`] (`InvalidInput` — a caller bug, not a peer
    /// action).
    fn send_frame(&mut self, payload: &[u8]) -> io::Result<()>;

    /// Receives one frame's payload; `Ok(None)` is a clean close (EOF
    /// on a frame boundary).
    ///
    /// # Errors
    ///
    /// See [`RecvError`]; after any error the stream position is
    /// unreliable and the connection should be dropped.
    fn recv_frame(&mut self) -> Result<Option<Vec<u8>>, RecvError>;
}

/// [`Transport`] over any byte stream (the TCP path).
#[derive(Debug)]
pub struct IoTransport<S: Read + Write + Send> {
    stream: S,
}

/// The concrete transport of a real network connection.
pub type TcpTransport = IoTransport<TcpStream>;

impl<S: Read + Write + Send> IoTransport<S> {
    /// Wraps a byte stream.
    pub fn new(stream: S) -> Self {
        IoTransport { stream }
    }

    /// The wrapped stream.
    pub fn get_ref(&self) -> &S {
        &self.stream
    }

    /// Reads exactly `buf.len()` bytes. `Ok(0)` bytes at offset 0 is a
    /// clean EOF (`Ok(false)`); EOF later is a truncated frame.
    fn read_unit(&mut self, buf: &mut [u8]) -> Result<bool, RecvError> {
        let mut filled = 0;
        while filled < buf.len() {
            match self.stream.read(&mut buf[filled..]) {
                Ok(0) => {
                    if filled == 0 {
                        return Ok(false);
                    }
                    return Err(RecvError::TruncatedFrame {
                        missing: buf.len() - filled,
                    });
                }
                Ok(n) => filled += n,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(RecvError::Io(e)),
            }
        }
        Ok(true)
    }
}

impl<S: Read + Write + Send> Transport for IoTransport<S> {
    fn send_frame(&mut self, payload: &[u8]) -> io::Result<()> {
        if payload.len() > MAX_FRAME_LEN {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!(
                    "frame payload of {} bytes exceeds MAX_FRAME_LEN",
                    payload.len()
                ),
            ));
        }
        self.stream
            .write_all(&(payload.len() as u32).to_le_bytes())?;
        self.stream.write_all(payload)?;
        self.stream.flush()
    }

    fn recv_frame(&mut self) -> Result<Option<Vec<u8>>, RecvError> {
        let mut prefix = [0u8; 4];
        if !self.read_unit(&mut prefix)? {
            return Ok(None);
        }
        let len = u32::from_le_bytes(prefix) as usize;
        if len > MAX_FRAME_LEN {
            return Err(RecvError::Oversized { len: len as u64 });
        }
        let mut payload = vec![0u8; len];
        if !self.read_unit(&mut payload)? {
            // EOF where a payload was promised: zero of `len` bytes.
            if len > 0 {
                return Err(RecvError::TruncatedFrame { missing: len });
            }
        }
        Ok(Some(payload))
    }
}

/// Cap on bytes queued in a [`PolledIo`]'s outgoing buffer: two maximal
/// frames. A session whose peer stops draining responses while more
/// queue up is a *slow consumer*; once the cap would be exceeded the
/// send fails and the worker drops the connection, so one stalled
/// client cannot pin unbounded server memory.
pub const MAX_PENDING_OUT: usize = 2 * (MAX_FRAME_LEN + 4);

/// A nonblocking, buffered [`Transport`] over a [`TcpStream`]: the
/// per-connection I/O state of the worker-pool server
/// ([`Server::spawn_pooled`](crate::server::Server::spawn_pooled)).
///
/// The stream is switched to nonblocking mode at construction. Reads
/// accumulate in an input buffer until a complete length-prefixed frame
/// is present; [`Transport::recv_frame`] then returns it, and otherwise
/// returns a `WouldBlock` [`RecvError::Io`] — the *poll again* signal,
/// which the worker loop treats as "this session is idle", never as a
/// failure. Writes queue in an output buffer (bounded by
/// [`MAX_PENDING_OUT`]) that [`PolledIo::flush_pending`] drains
/// opportunistically.
#[derive(Debug)]
pub struct PolledIo {
    stream: TcpStream,
    in_buf: Vec<u8>,
    out_buf: VecDeque<u8>,
    peer_closed: bool,
}

impl PolledIo {
    /// Wraps `stream`, switching it to nonblocking mode.
    ///
    /// # Errors
    ///
    /// The `set_nonblocking` syscall failing.
    pub fn new(stream: TcpStream) -> io::Result<PolledIo> {
        stream.set_nonblocking(true)?;
        Ok(PolledIo {
            stream,
            in_buf: Vec::new(),
            out_buf: VecDeque::new(),
            peer_closed: false,
        })
    }

    /// The wrapped stream.
    pub fn get_ref(&self) -> &TcpStream {
        &self.stream
    }

    /// Whether response bytes are still queued for the socket.
    pub fn wants_write(&self) -> bool {
        !self.out_buf.is_empty()
    }

    /// Writes queued response bytes until the socket stops accepting
    /// them; `Ok(true)` means the queue fully drained.
    ///
    /// # Errors
    ///
    /// Any socket error other than `WouldBlock` (which is `Ok(false)`).
    pub fn flush_pending(&mut self) -> io::Result<bool> {
        while !self.out_buf.is_empty() {
            let (front, _) = self.out_buf.as_slices();
            match self.stream.write(front) {
                Ok(0) => return Err(io::ErrorKind::WriteZero.into()),
                Ok(n) => {
                    self.out_buf.drain(..n);
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(false),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
        Ok(true)
    }

    /// Pops one complete frame from the input buffer, if present.
    fn take_frame(&mut self) -> Result<Option<Vec<u8>>, RecvError> {
        if self.in_buf.len() < 4 {
            return Ok(None);
        }
        let len = u32::from_le_bytes(self.in_buf[..4].try_into().expect("4 bytes")) as usize;
        if len > MAX_FRAME_LEN {
            return Err(RecvError::Oversized { len: len as u64 });
        }
        if self.in_buf.len() < 4 + len {
            return Ok(None);
        }
        let payload = self.in_buf[4..4 + len].to_vec();
        self.in_buf.drain(..4 + len);
        Ok(Some(payload))
    }

    /// Bytes the buffered partial frame still needs (for the truncation
    /// report when the peer vanishes mid-frame).
    fn missing(&self) -> usize {
        if self.in_buf.len() < 4 {
            4 - self.in_buf.len()
        } else {
            let len = u32::from_le_bytes(self.in_buf[..4].try_into().expect("4 bytes")) as usize;
            4 + len - self.in_buf.len()
        }
    }

    /// One nonblocking read burst into the input buffer; `Ok(0)` is EOF.
    fn try_fill(&mut self) -> io::Result<usize> {
        let mut chunk = [0u8; 64 * 1024];
        let n = self.stream.read(&mut chunk)?;
        self.in_buf.extend_from_slice(&chunk[..n]);
        Ok(n)
    }
}

impl Transport for PolledIo {
    /// Queues the frame; bytes reach the socket opportunistically (here
    /// and in later [`PolledIo::flush_pending`] calls).
    ///
    /// # Errors
    ///
    /// `InvalidInput` for an oversized payload, an out-of-space error
    /// when the peer is a slow consumer (queue past
    /// [`MAX_PENDING_OUT`]), or any real socket error while
    /// opportunistically flushing.
    fn send_frame(&mut self, payload: &[u8]) -> io::Result<()> {
        if payload.len() > MAX_FRAME_LEN {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!(
                    "frame payload of {} bytes exceeds MAX_FRAME_LEN",
                    payload.len()
                ),
            ));
        }
        if self.out_buf.len() + 4 + payload.len() > MAX_PENDING_OUT {
            return Err(io::Error::other(
                "slow consumer: outgoing frame queue exceeds MAX_PENDING_OUT",
            ));
        }
        self.out_buf.extend((payload.len() as u32).to_le_bytes());
        self.out_buf.extend(payload.iter().copied());
        self.flush_pending().map(|_| ())
    }

    /// A buffered complete frame, else one read burst, else
    /// `WouldBlock` (poll again later — not a failure).
    fn recv_frame(&mut self) -> Result<Option<Vec<u8>>, RecvError> {
        loop {
            if let Some(frame) = self.take_frame()? {
                return Ok(Some(frame));
            }
            if self.peer_closed {
                return if self.in_buf.is_empty() {
                    Ok(None)
                } else {
                    Err(RecvError::TruncatedFrame {
                        missing: self.missing(),
                    })
                };
            }
            match self.try_fill() {
                Ok(0) => self.peer_closed = true,
                Ok(_) => {}
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    return Err(RecvError::Io(e));
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(RecvError::Io(e)),
            }
        }
    }
}

/// One direction of the in-process pipe.
#[derive(Debug, Default)]
struct Half {
    state: Mutex<HalfState>,
    readable: Condvar,
}

#[derive(Debug, Default)]
struct HalfState {
    buf: VecDeque<u8>,
    closed: bool,
}

impl Half {
    fn close(&self) {
        self.state.lock().expect("pipe lock").closed = true;
        self.readable.notify_all();
    }
}

/// The in-process counterpart of a TCP connection: two byte queues and
/// a condvar, no sockets anywhere. [`duplex`] returns the two ends;
/// dropping either end closes both directions (the peer sees a clean
/// EOF on a frame boundary, [`RecvError::TruncatedFrame`] mid-frame —
/// exactly like a vanished TCP peer).
///
/// This is what lets the differential tests and the
/// `server_throughput` bench run sessions loopback-free: same session
/// loop, same frame bytes, zero kernel round-trips.
#[derive(Debug)]
pub struct PipeTransport {
    rx: Arc<Half>,
    tx: Arc<Half>,
}

/// A connected pair of in-process transports (client end, server end).
pub fn duplex() -> (PipeTransport, PipeTransport) {
    let a = Arc::new(Half::default());
    let b = Arc::new(Half::default());
    (
        PipeTransport {
            rx: Arc::clone(&a),
            tx: Arc::clone(&b),
        },
        PipeTransport { rx: b, tx: a },
    )
}

impl Drop for PipeTransport {
    fn drop(&mut self) {
        self.tx.close();
        self.rx.close();
    }
}

impl Transport for PipeTransport {
    fn send_frame(&mut self, payload: &[u8]) -> io::Result<()> {
        if payload.len() > MAX_FRAME_LEN {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!(
                    "frame payload of {} bytes exceeds MAX_FRAME_LEN",
                    payload.len()
                ),
            ));
        }
        let mut state = self.tx.state.lock().expect("pipe lock");
        if state.closed {
            return Err(io::Error::new(io::ErrorKind::BrokenPipe, "pipe closed"));
        }
        state.buf.extend((payload.len() as u32).to_le_bytes());
        state.buf.extend(payload.iter().copied());
        self.tx.readable.notify_all();
        Ok(())
    }

    fn recv_frame(&mut self) -> Result<Option<Vec<u8>>, RecvError> {
        let mut state = self.rx.state.lock().expect("pipe lock");
        loop {
            if state.buf.len() >= 4 {
                let prefix: Vec<u8> = state.buf.iter().take(4).copied().collect();
                let len = u32::from_le_bytes(prefix.try_into().expect("4 bytes")) as usize;
                if len > MAX_FRAME_LEN {
                    return Err(RecvError::Oversized { len: len as u64 });
                }
                if state.buf.len() >= 4 + len {
                    state.buf.drain(..4);
                    let payload: Vec<u8> = state.buf.drain(..len).collect();
                    return Ok(Some(payload));
                }
                if state.closed {
                    return Err(RecvError::TruncatedFrame {
                        missing: 4 + len - state.buf.len(),
                    });
                }
            } else if state.closed {
                return if state.buf.is_empty() {
                    Ok(None)
                } else {
                    Err(RecvError::TruncatedFrame {
                        missing: 4 - state.buf.len(),
                    })
                };
            }
            state = self.rx.readable.wait(state).expect("pipe lock");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pipe_round_trips_frames() {
        let (mut a, mut b) = duplex();
        a.send_frame(b"hello").unwrap();
        a.send_frame(b"").unwrap();
        assert_eq!(b.recv_frame().unwrap().unwrap(), b"hello");
        assert_eq!(b.recv_frame().unwrap().unwrap(), b"");
        drop(a);
        assert!(b.recv_frame().unwrap().is_none());
    }

    #[test]
    fn pipe_reports_truncation_and_oversize() {
        let (a, mut b) = duplex();
        {
            // Raw bytes: a prefix promising 100 bytes, then close.
            let mut state = a.tx.state.lock().unwrap();
            state.buf.extend(100u32.to_le_bytes());
            state.buf.extend([1, 2, 3]);
        }
        drop(a);
        assert!(matches!(
            b.recv_frame(),
            Err(RecvError::TruncatedFrame { missing: 97 })
        ));

        let (a, mut b) = duplex();
        {
            let mut state = a.tx.state.lock().unwrap();
            state.buf.extend(u32::MAX.to_le_bytes());
        }
        assert!(matches!(b.recv_frame(), Err(RecvError::Oversized { .. })));
        drop(a);
    }

    #[test]
    fn send_on_closed_pipe_is_broken_pipe() {
        let (mut a, b) = duplex();
        drop(b);
        let err = a.send_frame(b"x").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::BrokenPipe);
    }

    fn tcp_pair() -> (TcpStream, TcpStream) {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        (client, server)
    }

    fn poll_recv(polled: &mut PolledIo) -> Vec<u8> {
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
        loop {
            match polled.recv_frame() {
                Ok(Some(frame)) => return frame,
                Ok(None) => panic!("peer closed while a frame was expected"),
                Err(RecvError::Io(e)) if e.kind() == io::ErrorKind::WouldBlock => {
                    assert!(std::time::Instant::now() < deadline, "frame never arrived");
                    std::thread::sleep(std::time::Duration::from_millis(1));
                }
                Err(e) => panic!("recv failed: {e}"),
            }
        }
    }

    #[test]
    fn polled_io_round_trips_and_reports_would_block() {
        let (client, server) = tcp_pair();
        let mut client = IoTransport::new(client);
        let mut polled = PolledIo::new(server).unwrap();

        // Nothing sent yet: WouldBlock, not an error or a close.
        match polled.recv_frame() {
            Err(RecvError::Io(e)) => assert_eq!(e.kind(), io::ErrorKind::WouldBlock),
            other => panic!("expected WouldBlock, got {other:?}"),
        }

        client.send_frame(b"ping").unwrap();
        client.send_frame(b"").unwrap();
        assert_eq!(poll_recv(&mut polled), b"ping");
        assert_eq!(poll_recv(&mut polled), b"");

        // Frames sent through the polled side arrive at the blocking
        // peer (opportunistic flush).
        polled.send_frame(b"pong").unwrap();
        while polled.wants_write() {
            polled.flush_pending().unwrap();
        }
        assert_eq!(client.recv_frame().unwrap().unwrap(), b"pong");

        // Clean close: EOF on a frame boundary is Ok(None).
        drop(client);
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
        loop {
            match polled.recv_frame() {
                Ok(None) => break,
                Err(RecvError::Io(e)) if e.kind() == io::ErrorKind::WouldBlock => {
                    assert!(std::time::Instant::now() < deadline, "close never observed");
                    std::thread::sleep(std::time::Duration::from_millis(1));
                }
                other => panic!("expected clean close, got {other:?}"),
            }
        }
    }

    #[test]
    fn polled_io_reassembles_split_frames() {
        let (client, server) = tcp_pair();
        let mut polled = PolledIo::new(server).unwrap();
        let payload = vec![7u8; 1000];
        let mut wire = (payload.len() as u32).to_le_bytes().to_vec();
        wire.extend_from_slice(&payload);

        // Dribble the frame in three chunks with pauses: recv must
        // buffer partial bytes across WouldBlock polls.
        let mut client = client;
        for chunk in wire.chunks(400) {
            client.write_all(chunk).unwrap();
            client.flush().unwrap();
            std::thread::sleep(std::time::Duration::from_millis(5));
            // Poll in between: either WouldBlock (frame incomplete) or
            // the completed frame on the last chunk.
            match polled.recv_frame() {
                Ok(Some(frame)) => {
                    assert_eq!(frame, payload);
                    return;
                }
                Err(RecvError::Io(e)) if e.kind() == io::ErrorKind::WouldBlock => {}
                other => panic!("unexpected recv outcome: {other:?}"),
            }
        }
        assert_eq!(poll_recv(&mut polled), payload);
    }
}
