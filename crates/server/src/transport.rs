//! Frame transports: length-prefixed byte frames over TCP or an
//! in-process pipe.
//!
//! The wire unit of the protocol is the **frame**: a little-endian
//! `u32` payload length followed by that many payload bytes (see the
//! [crate docs](crate) for the payload grammar). The [`Transport`]
//! trait is the session loop's only view of the connection, so the
//! same [`serve_session`](crate::session::serve_session) serves a real
//! [`TcpStream`] and the loopback-free in-process [`PipeTransport`]
//! the tests and benches use.
//!
//! Framing is where adversarial input meets the server first, so the
//! failure modes are typed: a clean EOF between frames is `Ok(None)`, a
//! connection dying *mid-frame* is [`RecvError::TruncatedFrame`], and a
//! length prefix beyond [`MAX_FRAME_LEN`] is [`RecvError::Oversized`]
//! (detected **before** any allocation — a 4-byte prefix can claim 4 GiB).
//!
//! Three implementations ship: the blocking [`IoTransport`] (one
//! thread per connection), the in-process [`PipeTransport`] (tests and
//! benches, no sockets), and the nonblocking [`PolledIo`] the
//! worker-pool server multiplexes — same trait, so the session state
//! machine cannot tell them apart. `PolledIo` extends the contract in
//! one backward-compatible way: `recv_frame` returns
//! `Err(RecvError::Io(e))` with `e.kind() == WouldBlock` when no
//! complete frame has arrived *yet* (not an error — poll again), and
//! `send_frame` queues into an internal buffer that
//! [`PolledIo::flush_pending`] drains as the socket accepts it.

use std::cell::Cell;
use std::collections::VecDeque;
use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Upper bound on a frame's payload length: 16 MiB (~500k query points
/// per `LocateBatch`). A prefix claiming more is rejected as
/// [`RecvError::Oversized`] before any buffer is allocated.
pub const MAX_FRAME_LEN: usize = 16 * 1024 * 1024;

/// Why receiving a frame failed.
#[derive(Debug)]
pub enum RecvError {
    /// The underlying stream failed.
    Io(io::Error),
    /// The length prefix claimed more than [`MAX_FRAME_LEN`] bytes. The
    /// stream position is unrecoverable after this — close the
    /// connection.
    Oversized {
        /// The claimed payload length.
        len: u64,
    },
    /// The stream ended mid-frame (a truncated length prefix or a
    /// payload shorter than its prefix promised).
    TruncatedFrame {
        /// Bytes the current unit (prefix or payload) still needed.
        missing: usize,
    },
    /// A session deadline expired (see
    /// [`IoTransport::with_deadlines`]): either the peer sent nothing
    /// for the idle bound, or it left a frame half-sent past the
    /// mid-frame bound (the slowloris posture). The connection should
    /// be dropped.
    DeadlineExpired {
        /// `true` when the deadline expired with a frame half-received
        /// (mid-frame read deadline); `false` for the idle deadline.
        mid_frame: bool,
    },
}

impl std::fmt::Display for RecvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RecvError::Io(e) => write!(f, "transport i/o error: {e}"),
            RecvError::Oversized { len } => write!(
                f,
                "frame length {len} exceeds the {MAX_FRAME_LEN}-byte limit"
            ),
            RecvError::TruncatedFrame { missing } => {
                write!(f, "connection closed mid-frame ({missing} bytes short)")
            }
            RecvError::DeadlineExpired { mid_frame } => write!(
                f,
                "session deadline expired ({})",
                if *mid_frame {
                    "frame half-received past the mid-frame read bound"
                } else {
                    "no frame started within the idle bound"
                }
            ),
        }
    }
}

impl std::error::Error for RecvError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RecvError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for RecvError {
    fn from(e: io::Error) -> Self {
        RecvError::Io(e)
    }
}

/// Byte streams that can bound how long a single `read` may block —
/// the capability [`IoTransport::with_deadlines`] builds the session
/// deadlines on. A timed-out read must surface as an [`io::Error`] of
/// kind `WouldBlock` or `TimedOut`.
///
/// Implemented by [`TcpStream`] (via
/// [`set_read_timeout`](TcpStream::set_read_timeout)), by
/// [`PipeStream`] (a condvar wait bound), and by
/// [`ChaosStream`](crate::chaos::ChaosStream) (delegating to its inner
/// stream) — so deadline-enforcing sessions run identically over real
/// sockets, the in-process pipe, and chaotic wrappings of either.
pub trait StreamCtl {
    /// Bounds how long one `read` call may block; `None` restores
    /// unbounded blocking.
    ///
    /// # Errors
    ///
    /// Any [`io::Error`] from the underlying mechanism (e.g. the
    /// `SO_RCVTIMEO` syscall).
    fn set_read_limit(&self, limit: Option<Duration>) -> io::Result<()>;
}

impl StreamCtl for TcpStream {
    fn set_read_limit(&self, limit: Option<Duration>) -> io::Result<()> {
        self.set_read_timeout(limit)
    }
}

/// A bidirectional frame pipe: the session loop's only view of the
/// connection.
pub trait Transport: Send {
    /// Sends one frame (length prefix + payload).
    ///
    /// # Errors
    ///
    /// An [`io::Error`] when the peer is gone or the payload exceeds
    /// [`MAX_FRAME_LEN`] (`InvalidInput` — a caller bug, not a peer
    /// action).
    fn send_frame(&mut self, payload: &[u8]) -> io::Result<()>;

    /// Receives one frame's payload; `Ok(None)` is a clean close (EOF
    /// on a frame boundary).
    ///
    /// # Errors
    ///
    /// See [`RecvError`]; after any error the stream position is
    /// unreliable and the connection should be dropped.
    fn recv_frame(&mut self) -> Result<Option<Vec<u8>>, RecvError>;
}

/// The session deadlines a blocking transport enforces (see
/// [`IoTransport::with_deadlines`]). Both are independent and optional;
/// the all-`None` default is the historical unbounded behaviour.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Deadlines {
    /// Longest the peer may sit between frames (measured from one
    /// frame's completion to the next frame's first byte) before the
    /// session is evicted with `DeadlineExpired { mid_frame: false }`.
    pub idle: Option<Duration>,
    /// Longest a single frame may take from its first byte to its last
    /// before the session is evicted with `DeadlineExpired { mid_frame:
    /// true }` — the slowloris defense: a client dribbling one byte per
    /// second holds a thread (or pool slot) only this long, however
    /// regular the dribble.
    pub frame: Option<Duration>,
}

impl Deadlines {
    /// No bounds (the permissive default).
    pub const NONE: Deadlines = Deadlines {
        idle: None,
        frame: None,
    };

    fn any(&self) -> bool {
        self.idle.is_some() || self.frame.is_some()
    }
}

/// Floor on an armed read limit: `set_read_timeout(Some(ZERO))` is an
/// error by contract, and sub-millisecond limits just burn syscalls.
const MIN_READ_LIMIT: Duration = Duration::from_millis(1);

/// [`Transport`] over any byte stream (the TCP path).
#[derive(Debug)]
pub struct IoTransport<S: Read + Write + Send> {
    stream: S,
    deadlines: Deadlines,
}

/// The concrete transport of a real network connection.
pub type TcpTransport = IoTransport<TcpStream>;

impl<S: Read + Write + Send> IoTransport<S> {
    /// Wraps a byte stream (no deadlines — reads block indefinitely,
    /// the historical behaviour).
    pub fn new(stream: S) -> Self {
        IoTransport {
            stream,
            deadlines: Deadlines::NONE,
        }
    }

    /// The wrapped stream.
    pub fn get_ref(&self) -> &S {
        &self.stream
    }

    /// Unwraps the transport, returning the stream (any armed read
    /// limit is left as-is).
    pub fn into_inner(self) -> S {
        self.stream
    }

    /// Reads exactly `buf.len()` bytes. `Ok(0)` bytes at offset 0 is a
    /// clean EOF (`Ok(false)`); EOF later is a truncated frame.
    fn read_unit(&mut self, buf: &mut [u8]) -> Result<bool, RecvError> {
        let mut filled = 0;
        while filled < buf.len() {
            match self.stream.read(&mut buf[filled..]) {
                Ok(0) => {
                    if filled == 0 {
                        return Ok(false);
                    }
                    return Err(RecvError::TruncatedFrame {
                        missing: buf.len() - filled,
                    });
                }
                Ok(n) => filled += n,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(RecvError::Io(e)),
            }
        }
        Ok(true)
    }
}

impl<S: Read + Write + Send + StreamCtl> IoTransport<S> {
    /// Wraps a byte stream with session deadlines: reads that would
    /// violate `deadlines` fail with [`RecvError::DeadlineExpired`]
    /// instead of blocking forever. The mechanism is the stream's own
    /// read limit ([`StreamCtl`]): while waiting for a frame to *start*
    /// the limit is the idle bound; once the first byte arrives the
    /// limit is re-armed each read to the **remaining** mid-frame
    /// budget, so a peer dribbling bytes cannot reset the clock —
    /// total time per frame is bounded, not time per byte.
    pub fn with_deadlines(stream: S, deadlines: Deadlines) -> Self {
        IoTransport { stream, deadlines }
    }

    /// As [`IoTransport::read_unit`], but gives up at `deadline`
    /// (re-arming the stream's read limit to the remaining budget
    /// before each read).
    fn read_unit_until(
        &mut self,
        buf: &mut [u8],
        deadline: Option<Instant>,
        mid_frame: bool,
    ) -> Result<bool, RecvError> {
        let mut filled = 0;
        while filled < buf.len() {
            if let Some(deadline) = deadline {
                let remaining = deadline.saturating_duration_since(Instant::now());
                if remaining.is_zero() {
                    return Err(RecvError::DeadlineExpired { mid_frame });
                }
                self.stream
                    .set_read_limit(Some(remaining.max(MIN_READ_LIMIT)))?;
            }
            match self.stream.read(&mut buf[filled..]) {
                Ok(0) => {
                    if filled == 0 && !mid_frame {
                        return Ok(false);
                    }
                    return Err(RecvError::TruncatedFrame {
                        missing: buf.len() - filled,
                    });
                }
                Ok(n) => filled += n,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e)
                    if deadline.is_some()
                        && matches!(
                            e.kind(),
                            io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                        ) =>
                {
                    // A timed-out read: loop back, where the remaining
                    // budget is re-checked (it may have been a spurious
                    // early return).
                }
                Err(e) => return Err(RecvError::Io(e)),
            }
        }
        Ok(true)
    }

    /// [`Transport::recv_frame`] with the deadline machinery: one byte
    /// read under the idle bound starts the frame clock, everything
    /// after it runs against the mid-frame budget.
    fn recv_frame_deadlined(&mut self) -> Result<Option<Vec<u8>>, RecvError> {
        // Idle phase: wait for the frame's first byte alone, bounded by
        // the idle deadline.
        let mut first = [0u8; 1];
        let idle_deadline = self.deadlines.idle.map(|d| Instant::now() + d);
        if !self.read_unit_until(&mut first, idle_deadline, false)? {
            return Ok(None);
        }
        // Frame phase: the rest of the prefix and the payload share one
        // absolute budget, started by the first byte.
        let frame_deadline = self.deadlines.frame.map(|d| Instant::now() + d);
        if frame_deadline.is_none() {
            // No mid-frame bound: restore unbounded reads (the idle
            // phase may have armed a limit on the stream).
            self.stream.set_read_limit(None)?;
        }
        let mut rest = [0u8; 3];
        self.read_unit_until(&mut rest, frame_deadline, true)?;
        let prefix = [first[0], rest[0], rest[1], rest[2]];
        let len = u32::from_le_bytes(prefix) as usize;
        if len > MAX_FRAME_LEN {
            return Err(RecvError::Oversized { len: len as u64 });
        }
        let mut payload = vec![0u8; len];
        if len > 0 {
            self.read_unit_until(&mut payload, frame_deadline, true)?;
        }
        Ok(Some(payload))
    }
}

impl<S: Read + Write + Send + StreamCtl> Transport for IoTransport<S> {
    fn send_frame(&mut self, payload: &[u8]) -> io::Result<()> {
        if payload.len() > MAX_FRAME_LEN {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!(
                    "frame payload of {} bytes exceeds MAX_FRAME_LEN",
                    payload.len()
                ),
            ));
        }
        self.stream
            .write_all(&(payload.len() as u32).to_le_bytes())?;
        self.stream.write_all(payload)?;
        self.stream.flush()
    }

    fn recv_frame(&mut self) -> Result<Option<Vec<u8>>, RecvError> {
        if self.deadlines.any() {
            return self.recv_frame_deadlined();
        }
        let mut prefix = [0u8; 4];
        if !self.read_unit(&mut prefix)? {
            return Ok(None);
        }
        let len = u32::from_le_bytes(prefix) as usize;
        if len > MAX_FRAME_LEN {
            return Err(RecvError::Oversized { len: len as u64 });
        }
        let mut payload = vec![0u8; len];
        if !self.read_unit(&mut payload)? {
            // EOF where a payload was promised: zero of `len` bytes.
            if len > 0 {
                return Err(RecvError::TruncatedFrame { missing: len });
            }
        }
        Ok(Some(payload))
    }
}

/// Cap on bytes queued in a [`PolledIo`]'s outgoing buffer: two maximal
/// frames. A session whose peer stops draining responses while more
/// queue up is a *slow consumer*; once the cap would be exceeded the
/// send fails and the worker drops the connection, so one stalled
/// client cannot pin unbounded server memory.
pub const MAX_PENDING_OUT: usize = 2 * (MAX_FRAME_LEN + 4);

/// A nonblocking, buffered [`Transport`] over a [`TcpStream`]: the
/// per-connection I/O state of the worker-pool server
/// ([`Server::spawn_pooled`](crate::server::Server::spawn_pooled)).
///
/// The stream is switched to nonblocking mode at construction. Reads
/// accumulate in an input buffer until a complete length-prefixed frame
/// is present; [`Transport::recv_frame`] then returns it, and otherwise
/// returns a `WouldBlock` [`RecvError::Io`] — the *poll again* signal,
/// which the worker loop treats as "this session is idle", never as a
/// failure. Writes queue in an output buffer (bounded by
/// [`MAX_PENDING_OUT`]) that [`PolledIo::flush_pending`] drains
/// opportunistically.
#[derive(Debug)]
pub struct PolledIo<S: Read + Write + Send = TcpStream> {
    stream: S,
    in_buf: Vec<u8>,
    out_buf: VecDeque<u8>,
    peer_closed: bool,
    out_cap: usize,
}

impl PolledIo<TcpStream> {
    /// Wraps `stream`, switching it to nonblocking mode.
    ///
    /// # Errors
    ///
    /// The `set_nonblocking` syscall failing.
    pub fn new(stream: TcpStream) -> io::Result<PolledIo> {
        stream.set_nonblocking(true)?;
        Ok(PolledIo::from_stream(stream))
    }
}

impl<S: Read + Write + Send> PolledIo<S> {
    /// Wraps an already-nonblocking byte stream (e.g. a
    /// [`ChaosStream`](crate::chaos::ChaosStream) over a nonblocking
    /// socket). The caller is responsible for the stream actually being
    /// nonblocking — a blocking stream here turns the poll loop into a
    /// blocking one.
    pub fn from_stream(stream: S) -> PolledIo<S> {
        PolledIo {
            stream,
            in_buf: Vec::new(),
            out_buf: VecDeque::new(),
            peer_closed: false,
            out_cap: MAX_PENDING_OUT,
        }
    }

    /// Caps the outgoing queue at `cap` bytes instead of the default
    /// [`MAX_PENDING_OUT`] (the slow-consumer disconnect threshold).
    /// The hard floor is one maximal frame — a cap that could refuse a
    /// single well-formed response would deadlock every session.
    #[must_use]
    pub fn with_out_cap(mut self, cap: usize) -> PolledIo<S> {
        self.out_cap = cap.max(MAX_FRAME_LEN + 4);
        self
    }

    /// The wrapped stream.
    pub fn get_ref(&self) -> &S {
        &self.stream
    }

    /// Bytes of a not-yet-complete frame sitting in the input buffer.
    /// Nonzero means the peer is **mid-frame**: the worker's mid-frame
    /// read deadline runs while this stays nonzero (the slowloris
    /// observable).
    pub fn partial_in(&self) -> usize {
        self.in_buf.len()
    }

    /// Whether response bytes are still queued for the socket.
    pub fn wants_write(&self) -> bool {
        !self.out_buf.is_empty()
    }

    /// Writes queued response bytes until the socket stops accepting
    /// them; `Ok(true)` means the queue fully drained.
    ///
    /// # Errors
    ///
    /// Any socket error other than `WouldBlock` (which is `Ok(false)`).
    pub fn flush_pending(&mut self) -> io::Result<bool> {
        while !self.out_buf.is_empty() {
            let (front, _) = self.out_buf.as_slices();
            match self.stream.write(front) {
                Ok(0) => return Err(io::ErrorKind::WriteZero.into()),
                Ok(n) => {
                    self.out_buf.drain(..n);
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(false),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
        Ok(true)
    }

    /// Pops one complete frame from the input buffer, if present.
    fn take_frame(&mut self) -> Result<Option<Vec<u8>>, RecvError> {
        if self.in_buf.len() < 4 {
            return Ok(None);
        }
        let len = u32::from_le_bytes(self.in_buf[..4].try_into().expect("4 bytes")) as usize;
        if len > MAX_FRAME_LEN {
            return Err(RecvError::Oversized { len: len as u64 });
        }
        if self.in_buf.len() < 4 + len {
            return Ok(None);
        }
        let payload = self.in_buf[4..4 + len].to_vec();
        self.in_buf.drain(..4 + len);
        Ok(Some(payload))
    }

    /// Bytes the buffered partial frame still needs (for the truncation
    /// report when the peer vanishes mid-frame).
    fn missing(&self) -> usize {
        if self.in_buf.len() < 4 {
            4 - self.in_buf.len()
        } else {
            let len = u32::from_le_bytes(self.in_buf[..4].try_into().expect("4 bytes")) as usize;
            4 + len - self.in_buf.len()
        }
    }

    /// One nonblocking read burst into the input buffer; `Ok(0)` is EOF.
    fn try_fill(&mut self) -> io::Result<usize> {
        let mut chunk = [0u8; 64 * 1024];
        let n = self.stream.read(&mut chunk)?;
        self.in_buf.extend_from_slice(&chunk[..n]);
        Ok(n)
    }
}

impl<S: Read + Write + Send> Transport for PolledIo<S> {
    /// Queues the frame; bytes reach the socket opportunistically (here
    /// and in later [`PolledIo::flush_pending`] calls).
    ///
    /// # Errors
    ///
    /// `InvalidInput` for an oversized payload, an out-of-space error
    /// when the peer is a slow consumer (queue past
    /// [`MAX_PENDING_OUT`]), or any real socket error while
    /// opportunistically flushing.
    fn send_frame(&mut self, payload: &[u8]) -> io::Result<()> {
        if payload.len() > MAX_FRAME_LEN {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!(
                    "frame payload of {} bytes exceeds MAX_FRAME_LEN",
                    payload.len()
                ),
            ));
        }
        if self.out_buf.len() + 4 + payload.len() > self.out_cap {
            return Err(io::Error::other(
                "slow consumer: outgoing frame queue exceeds its byte cap",
            ));
        }
        self.out_buf.extend((payload.len() as u32).to_le_bytes());
        self.out_buf.extend(payload.iter().copied());
        self.flush_pending().map(|_| ())
    }

    /// A buffered complete frame, else one read burst, else
    /// `WouldBlock` (poll again later — not a failure).
    fn recv_frame(&mut self) -> Result<Option<Vec<u8>>, RecvError> {
        loop {
            if let Some(frame) = self.take_frame()? {
                return Ok(Some(frame));
            }
            if self.peer_closed {
                return if self.in_buf.is_empty() {
                    Ok(None)
                } else {
                    Err(RecvError::TruncatedFrame {
                        missing: self.missing(),
                    })
                };
            }
            match self.try_fill() {
                Ok(0) => self.peer_closed = true,
                Ok(_) => {}
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    return Err(RecvError::Io(e));
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(RecvError::Io(e)),
            }
        }
    }
}

/// One direction of the in-process pipe.
#[derive(Debug, Default)]
struct Half {
    state: Mutex<HalfState>,
    readable: Condvar,
}

#[derive(Debug, Default)]
struct HalfState {
    buf: VecDeque<u8>,
    closed: bool,
}

impl Half {
    fn close(&self) {
        self.state.lock().expect("pipe lock").closed = true;
        self.readable.notify_all();
    }
}

/// The in-process counterpart of a TCP connection: two byte queues and
/// a condvar, no sockets anywhere. [`duplex`] returns the two ends;
/// dropping either end closes both directions (the peer sees a clean
/// EOF on a frame boundary, [`RecvError::TruncatedFrame`] mid-frame —
/// exactly like a vanished TCP peer).
///
/// This is what lets the differential tests and the
/// `server_throughput` bench run sessions loopback-free: same session
/// loop, same frame bytes, zero kernel round-trips.
#[derive(Debug)]
pub struct PipeTransport {
    rx: Arc<Half>,
    tx: Arc<Half>,
}

/// A connected pair of in-process transports (client end, server end).
pub fn duplex() -> (PipeTransport, PipeTransport) {
    let a = Arc::new(Half::default());
    let b = Arc::new(Half::default());
    (
        PipeTransport {
            rx: Arc::clone(&a),
            tx: Arc::clone(&b),
        },
        PipeTransport { rx: b, tx: a },
    )
}

impl Drop for PipeTransport {
    fn drop(&mut self) {
        self.tx.close();
        self.rx.close();
    }
}

impl Transport for PipeTransport {
    fn send_frame(&mut self, payload: &[u8]) -> io::Result<()> {
        if payload.len() > MAX_FRAME_LEN {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!(
                    "frame payload of {} bytes exceeds MAX_FRAME_LEN",
                    payload.len()
                ),
            ));
        }
        let mut state = self.tx.state.lock().expect("pipe lock");
        if state.closed {
            return Err(io::Error::new(io::ErrorKind::BrokenPipe, "pipe closed"));
        }
        state.buf.extend((payload.len() as u32).to_le_bytes());
        state.buf.extend(payload.iter().copied());
        self.tx.readable.notify_all();
        Ok(())
    }

    fn recv_frame(&mut self) -> Result<Option<Vec<u8>>, RecvError> {
        let mut state = self.rx.state.lock().expect("pipe lock");
        loop {
            if state.buf.len() >= 4 {
                let prefix: Vec<u8> = state.buf.iter().take(4).copied().collect();
                let len = u32::from_le_bytes(prefix.try_into().expect("4 bytes")) as usize;
                if len > MAX_FRAME_LEN {
                    return Err(RecvError::Oversized { len: len as u64 });
                }
                if state.buf.len() >= 4 + len {
                    state.buf.drain(..4);
                    let payload: Vec<u8> = state.buf.drain(..len).collect();
                    return Ok(Some(payload));
                }
                if state.closed {
                    return Err(RecvError::TruncatedFrame {
                        missing: 4 + len - state.buf.len(),
                    });
                }
            } else if state.closed {
                return if state.buf.is_empty() {
                    Ok(None)
                } else {
                    Err(RecvError::TruncatedFrame {
                        missing: 4 - state.buf.len(),
                    })
                };
            }
            state = self.rx.readable.wait(state).expect("pipe lock");
        }
    }
}

/// The **byte-level** face of the in-process pipe: a `Read + Write`
/// stream over the same queues [`PipeTransport`] frames, created in
/// connected pairs by [`duplex_stream`].
///
/// Where `PipeTransport` moves whole frames atomically, `PipeStream`
/// moves raw bytes — which is exactly what the chaos machinery needs:
/// wrap one end in a [`ChaosStream`](crate::chaos::ChaosStream) and an
/// [`IoTransport`] and frames cross the pipe chopped at arbitrary byte
/// boundaries, loopback-free. It also implements [`StreamCtl`] (the
/// read limit is a condvar wait bound), so deadline-enforcing sessions
/// are testable without sockets.
///
/// Dropping either end closes both directions, like the framed pipe.
#[derive(Debug)]
pub struct PipeStream {
    rx: Arc<Half>,
    tx: Arc<Half>,
    read_limit: Cell<Option<Duration>>,
}

/// A connected pair of in-process **byte** streams (see
/// [`PipeStream`]). Frame either end with [`IoTransport::new`] to get
/// a [`PipeTransport`]-equivalent, or interpose a
/// [`ChaosStream`](crate::chaos::ChaosStream) first.
pub fn duplex_stream() -> (PipeStream, PipeStream) {
    let a = Arc::new(Half::default());
    let b = Arc::new(Half::default());
    (
        PipeStream {
            rx: Arc::clone(&a),
            tx: Arc::clone(&b),
            read_limit: Cell::new(None),
        },
        PipeStream {
            rx: b,
            tx: a,
            read_limit: Cell::new(None),
        },
    )
}

impl PipeStream {
    /// Closes both directions in place (the peer sees EOF; further
    /// writes from either end fail `BrokenPipe`) — the chaos cut hook.
    pub fn shutdown_both(&self) {
        self.tx.close();
        self.rx.close();
    }
}

impl Drop for PipeStream {
    fn drop(&mut self) {
        self.shutdown_both();
    }
}

impl StreamCtl for PipeStream {
    fn set_read_limit(&self, limit: Option<Duration>) -> io::Result<()> {
        self.read_limit.set(limit);
        Ok(())
    }
}

impl Read for PipeStream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        if buf.is_empty() {
            return Ok(0);
        }
        let mut state = self.rx.state.lock().expect("pipe lock");
        let deadline = self.read_limit.get().map(|d| Instant::now() + d);
        loop {
            if !state.buf.is_empty() {
                let n = state.buf.len().min(buf.len());
                for (slot, byte) in buf.iter_mut().zip(state.buf.drain(..n)) {
                    *slot = byte;
                }
                return Ok(n);
            }
            if state.closed {
                return Ok(0);
            }
            state = match deadline {
                None => self.rx.readable.wait(state).expect("pipe lock"),
                Some(deadline) => {
                    let remaining = deadline.saturating_duration_since(Instant::now());
                    if remaining.is_zero() {
                        return Err(io::ErrorKind::WouldBlock.into());
                    }
                    self.rx
                        .readable
                        .wait_timeout(state, remaining)
                        .expect("pipe lock")
                        .0
                }
            };
        }
    }
}

impl Write for PipeStream {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        let mut state = self.tx.state.lock().expect("pipe lock");
        if state.closed {
            return Err(io::Error::new(io::ErrorKind::BrokenPipe, "pipe closed"));
        }
        state.buf.extend(buf.iter().copied());
        self.tx.readable.notify_all();
        Ok(buf.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pipe_round_trips_frames() {
        let (mut a, mut b) = duplex();
        a.send_frame(b"hello").unwrap();
        a.send_frame(b"").unwrap();
        assert_eq!(b.recv_frame().unwrap().unwrap(), b"hello");
        assert_eq!(b.recv_frame().unwrap().unwrap(), b"");
        drop(a);
        assert!(b.recv_frame().unwrap().is_none());
    }

    #[test]
    fn pipe_reports_truncation_and_oversize() {
        let (a, mut b) = duplex();
        {
            // Raw bytes: a prefix promising 100 bytes, then close.
            let mut state = a.tx.state.lock().unwrap();
            state.buf.extend(100u32.to_le_bytes());
            state.buf.extend([1, 2, 3]);
        }
        drop(a);
        assert!(matches!(
            b.recv_frame(),
            Err(RecvError::TruncatedFrame { missing: 97 })
        ));

        let (a, mut b) = duplex();
        {
            let mut state = a.tx.state.lock().unwrap();
            state.buf.extend(u32::MAX.to_le_bytes());
        }
        assert!(matches!(b.recv_frame(), Err(RecvError::Oversized { .. })));
        drop(a);
    }

    #[test]
    fn send_on_closed_pipe_is_broken_pipe() {
        let (mut a, b) = duplex();
        drop(b);
        let err = a.send_frame(b"x").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::BrokenPipe);
    }

    #[test]
    fn pipe_stream_round_trips_bytes_and_honors_read_limits() {
        let (mut a, mut b) = duplex_stream();
        a.write_all(b"abc").unwrap();
        let mut buf = [0u8; 8];
        assert_eq!(b.read(&mut buf).unwrap(), 3);
        assert_eq!(&buf[..3], b"abc");
        // An armed read limit turns an empty pipe into WouldBlock…
        b.set_read_limit(Some(Duration::from_millis(5))).unwrap();
        let err = b.read(&mut buf).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::WouldBlock);
        // …and a closed peer into clean EOF.
        drop(a);
        assert_eq!(b.read(&mut buf).unwrap(), 0);
    }

    #[test]
    fn idle_deadline_expires_between_frames() {
        let (a, b) = duplex_stream();
        let mut rx = IoTransport::with_deadlines(
            b,
            Deadlines {
                idle: Some(Duration::from_millis(20)),
                frame: None,
            },
        );
        match rx.recv_frame() {
            Err(RecvError::DeadlineExpired { mid_frame: false }) => {}
            other => panic!("expected idle deadline, got {other:?}"),
        }
        drop(a);
    }

    #[test]
    fn frame_deadline_defeats_a_dribbling_sender() {
        let (mut a, b) = duplex_stream();
        let mut rx = IoTransport::with_deadlines(
            b,
            Deadlines {
                idle: None,
                frame: Some(Duration::from_millis(40)),
            },
        );
        // Promise a 50-byte frame, then dribble one byte at a time
        // forever: each byte re-arms a per-read timeout, but the frame
        // budget is absolute.
        let writer = std::thread::spawn(move || {
            let _ = a.write_all(&50u32.to_le_bytes());
            loop {
                if a.write_all(&[0xAB]).is_err() {
                    return;
                }
                std::thread::sleep(Duration::from_millis(5));
            }
        });
        let started = Instant::now();
        match rx.recv_frame() {
            Err(RecvError::DeadlineExpired { mid_frame: true }) => {}
            other => panic!("expected mid-frame deadline, got {other:?}"),
        }
        assert!(
            started.elapsed() < Duration::from_secs(5),
            "deadline must bound the wait"
        );
        drop(rx);
        writer.join().unwrap();
    }

    #[test]
    fn deadlined_transport_still_round_trips_normal_traffic() {
        let (a, b) = duplex_stream();
        let mut tx = IoTransport::new(a);
        let mut rx = IoTransport::with_deadlines(
            b,
            Deadlines {
                idle: Some(Duration::from_secs(5)),
                frame: Some(Duration::from_secs(5)),
            },
        );
        tx.send_frame(b"prompt peer").unwrap();
        assert_eq!(rx.recv_frame().unwrap().unwrap(), b"prompt peer");
        drop(tx);
        assert!(rx.recv_frame().unwrap().is_none());
    }

    fn tcp_pair() -> (TcpStream, TcpStream) {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        (client, server)
    }

    fn poll_recv(polled: &mut PolledIo) -> Vec<u8> {
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
        loop {
            match polled.recv_frame() {
                Ok(Some(frame)) => return frame,
                Ok(None) => panic!("peer closed while a frame was expected"),
                Err(RecvError::Io(e)) if e.kind() == io::ErrorKind::WouldBlock => {
                    assert!(std::time::Instant::now() < deadline, "frame never arrived");
                    std::thread::sleep(std::time::Duration::from_millis(1));
                }
                Err(e) => panic!("recv failed: {e}"),
            }
        }
    }

    #[test]
    fn polled_io_round_trips_and_reports_would_block() {
        let (client, server) = tcp_pair();
        let mut client = IoTransport::new(client);
        let mut polled = PolledIo::new(server).unwrap();

        // Nothing sent yet: WouldBlock, not an error or a close.
        match polled.recv_frame() {
            Err(RecvError::Io(e)) => assert_eq!(e.kind(), io::ErrorKind::WouldBlock),
            other => panic!("expected WouldBlock, got {other:?}"),
        }

        client.send_frame(b"ping").unwrap();
        client.send_frame(b"").unwrap();
        assert_eq!(poll_recv(&mut polled), b"ping");
        assert_eq!(poll_recv(&mut polled), b"");

        // Frames sent through the polled side arrive at the blocking
        // peer (opportunistic flush).
        polled.send_frame(b"pong").unwrap();
        while polled.wants_write() {
            polled.flush_pending().unwrap();
        }
        assert_eq!(client.recv_frame().unwrap().unwrap(), b"pong");

        // Clean close: EOF on a frame boundary is Ok(None).
        drop(client);
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
        loop {
            match polled.recv_frame() {
                Ok(None) => break,
                Err(RecvError::Io(e)) if e.kind() == io::ErrorKind::WouldBlock => {
                    assert!(std::time::Instant::now() < deadline, "close never observed");
                    std::thread::sleep(std::time::Duration::from_millis(1));
                }
                other => panic!("expected clean close, got {other:?}"),
            }
        }
    }

    #[test]
    fn polled_io_reassembles_split_frames() {
        let (client, server) = tcp_pair();
        let mut polled = PolledIo::new(server).unwrap();
        let payload = vec![7u8; 1000];
        let mut wire = (payload.len() as u32).to_le_bytes().to_vec();
        wire.extend_from_slice(&payload);

        // Dribble the frame in three chunks with pauses: recv must
        // buffer partial bytes across WouldBlock polls.
        let mut client = client;
        for chunk in wire.chunks(400) {
            client.write_all(chunk).unwrap();
            client.flush().unwrap();
            std::thread::sleep(std::time::Duration::from_millis(5));
            // Poll in between: either WouldBlock (frame incomplete) or
            // the completed frame on the last chunk.
            match polled.recv_frame() {
                Ok(Some(frame)) => {
                    assert_eq!(frame, payload);
                    return;
                }
                Err(RecvError::Io(e)) if e.kind() == io::ErrorKind::WouldBlock => {}
                other => panic!("unexpected recv outcome: {other:?}"),
            }
        }
        assert_eq!(poll_recv(&mut polled), payload);
    }
}
