//! Frame transports: length-prefixed byte frames over TCP or an
//! in-process pipe.
//!
//! The wire unit of the protocol is the **frame**: a little-endian
//! `u32` payload length followed by that many payload bytes (see the
//! [crate docs](crate) for the payload grammar). The [`Transport`]
//! trait is the session loop's only view of the connection, so the
//! same [`serve_session`](crate::session::serve_session) serves a real
//! [`TcpStream`] and the loopback-free in-process [`PipeTransport`]
//! the tests and benches use.
//!
//! Framing is where adversarial input meets the server first, so the
//! failure modes are typed: a clean EOF between frames is `Ok(None)`, a
//! connection dying *mid-frame* is [`RecvError::TruncatedFrame`], and a
//! length prefix beyond [`MAX_FRAME_LEN`] is [`RecvError::Oversized`]
//! (detected **before** any allocation — a 4-byte prefix can claim 4 GiB).

use std::collections::VecDeque;
use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::sync::{Arc, Condvar, Mutex};

/// Upper bound on a frame's payload length: 16 MiB (~500k query points
/// per `LocateBatch`). A prefix claiming more is rejected as
/// [`RecvError::Oversized`] before any buffer is allocated.
pub const MAX_FRAME_LEN: usize = 16 * 1024 * 1024;

/// Why receiving a frame failed.
#[derive(Debug)]
pub enum RecvError {
    /// The underlying stream failed.
    Io(io::Error),
    /// The length prefix claimed more than [`MAX_FRAME_LEN`] bytes. The
    /// stream position is unrecoverable after this — close the
    /// connection.
    Oversized {
        /// The claimed payload length.
        len: u64,
    },
    /// The stream ended mid-frame (a truncated length prefix or a
    /// payload shorter than its prefix promised).
    TruncatedFrame {
        /// Bytes the current unit (prefix or payload) still needed.
        missing: usize,
    },
}

impl std::fmt::Display for RecvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RecvError::Io(e) => write!(f, "transport i/o error: {e}"),
            RecvError::Oversized { len } => write!(
                f,
                "frame length {len} exceeds the {MAX_FRAME_LEN}-byte limit"
            ),
            RecvError::TruncatedFrame { missing } => {
                write!(f, "connection closed mid-frame ({missing} bytes short)")
            }
        }
    }
}

impl std::error::Error for RecvError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RecvError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for RecvError {
    fn from(e: io::Error) -> Self {
        RecvError::Io(e)
    }
}

/// A bidirectional frame pipe: the session loop's only view of the
/// connection.
pub trait Transport: Send {
    /// Sends one frame (length prefix + payload).
    ///
    /// # Errors
    ///
    /// An [`io::Error`] when the peer is gone or the payload exceeds
    /// [`MAX_FRAME_LEN`] (`InvalidInput` — a caller bug, not a peer
    /// action).
    fn send_frame(&mut self, payload: &[u8]) -> io::Result<()>;

    /// Receives one frame's payload; `Ok(None)` is a clean close (EOF
    /// on a frame boundary).
    ///
    /// # Errors
    ///
    /// See [`RecvError`]; after any error the stream position is
    /// unreliable and the connection should be dropped.
    fn recv_frame(&mut self) -> Result<Option<Vec<u8>>, RecvError>;
}

/// [`Transport`] over any byte stream (the TCP path).
#[derive(Debug)]
pub struct IoTransport<S: Read + Write + Send> {
    stream: S,
}

/// The concrete transport of a real network connection.
pub type TcpTransport = IoTransport<TcpStream>;

impl<S: Read + Write + Send> IoTransport<S> {
    /// Wraps a byte stream.
    pub fn new(stream: S) -> Self {
        IoTransport { stream }
    }

    /// The wrapped stream.
    pub fn get_ref(&self) -> &S {
        &self.stream
    }

    /// Reads exactly `buf.len()` bytes. `Ok(0)` bytes at offset 0 is a
    /// clean EOF (`Ok(false)`); EOF later is a truncated frame.
    fn read_unit(&mut self, buf: &mut [u8]) -> Result<bool, RecvError> {
        let mut filled = 0;
        while filled < buf.len() {
            match self.stream.read(&mut buf[filled..]) {
                Ok(0) => {
                    if filled == 0 {
                        return Ok(false);
                    }
                    return Err(RecvError::TruncatedFrame {
                        missing: buf.len() - filled,
                    });
                }
                Ok(n) => filled += n,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(RecvError::Io(e)),
            }
        }
        Ok(true)
    }
}

impl<S: Read + Write + Send> Transport for IoTransport<S> {
    fn send_frame(&mut self, payload: &[u8]) -> io::Result<()> {
        if payload.len() > MAX_FRAME_LEN {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!(
                    "frame payload of {} bytes exceeds MAX_FRAME_LEN",
                    payload.len()
                ),
            ));
        }
        self.stream
            .write_all(&(payload.len() as u32).to_le_bytes())?;
        self.stream.write_all(payload)?;
        self.stream.flush()
    }

    fn recv_frame(&mut self) -> Result<Option<Vec<u8>>, RecvError> {
        let mut prefix = [0u8; 4];
        if !self.read_unit(&mut prefix)? {
            return Ok(None);
        }
        let len = u32::from_le_bytes(prefix) as usize;
        if len > MAX_FRAME_LEN {
            return Err(RecvError::Oversized { len: len as u64 });
        }
        let mut payload = vec![0u8; len];
        if !self.read_unit(&mut payload)? {
            // EOF where a payload was promised: zero of `len` bytes.
            if len > 0 {
                return Err(RecvError::TruncatedFrame { missing: len });
            }
        }
        Ok(Some(payload))
    }
}

/// One direction of the in-process pipe.
#[derive(Debug, Default)]
struct Half {
    state: Mutex<HalfState>,
    readable: Condvar,
}

#[derive(Debug, Default)]
struct HalfState {
    buf: VecDeque<u8>,
    closed: bool,
}

impl Half {
    fn close(&self) {
        self.state.lock().expect("pipe lock").closed = true;
        self.readable.notify_all();
    }
}

/// The in-process counterpart of a TCP connection: two byte queues and
/// a condvar, no sockets anywhere. [`duplex`] returns the two ends;
/// dropping either end closes both directions (the peer sees a clean
/// EOF on a frame boundary, [`RecvError::TruncatedFrame`] mid-frame —
/// exactly like a vanished TCP peer).
///
/// This is what lets the differential tests and the
/// `server_throughput` bench run sessions loopback-free: same session
/// loop, same frame bytes, zero kernel round-trips.
#[derive(Debug)]
pub struct PipeTransport {
    rx: Arc<Half>,
    tx: Arc<Half>,
}

/// A connected pair of in-process transports (client end, server end).
pub fn duplex() -> (PipeTransport, PipeTransport) {
    let a = Arc::new(Half::default());
    let b = Arc::new(Half::default());
    (
        PipeTransport {
            rx: Arc::clone(&a),
            tx: Arc::clone(&b),
        },
        PipeTransport { rx: b, tx: a },
    )
}

impl Drop for PipeTransport {
    fn drop(&mut self) {
        self.tx.close();
        self.rx.close();
    }
}

impl Transport for PipeTransport {
    fn send_frame(&mut self, payload: &[u8]) -> io::Result<()> {
        if payload.len() > MAX_FRAME_LEN {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!(
                    "frame payload of {} bytes exceeds MAX_FRAME_LEN",
                    payload.len()
                ),
            ));
        }
        let mut state = self.tx.state.lock().expect("pipe lock");
        if state.closed {
            return Err(io::Error::new(io::ErrorKind::BrokenPipe, "pipe closed"));
        }
        state.buf.extend((payload.len() as u32).to_le_bytes());
        state.buf.extend(payload.iter().copied());
        self.tx.readable.notify_all();
        Ok(())
    }

    fn recv_frame(&mut self) -> Result<Option<Vec<u8>>, RecvError> {
        let mut state = self.rx.state.lock().expect("pipe lock");
        loop {
            if state.buf.len() >= 4 {
                let prefix: Vec<u8> = state.buf.iter().take(4).copied().collect();
                let len = u32::from_le_bytes(prefix.try_into().expect("4 bytes")) as usize;
                if len > MAX_FRAME_LEN {
                    return Err(RecvError::Oversized { len: len as u64 });
                }
                if state.buf.len() >= 4 + len {
                    state.buf.drain(..4);
                    let payload: Vec<u8> = state.buf.drain(..len).collect();
                    return Ok(Some(payload));
                }
                if state.closed {
                    return Err(RecvError::TruncatedFrame {
                        missing: 4 + len - state.buf.len(),
                    });
                }
            } else if state.closed {
                return if state.buf.is_empty() {
                    Ok(None)
                } else {
                    Err(RecvError::TruncatedFrame {
                        missing: 4 - state.buf.len(),
                    })
                };
            }
            state = self.rx.readable.wait(state).expect("pipe lock");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pipe_round_trips_frames() {
        let (mut a, mut b) = duplex();
        a.send_frame(b"hello").unwrap();
        a.send_frame(b"").unwrap();
        assert_eq!(b.recv_frame().unwrap().unwrap(), b"hello");
        assert_eq!(b.recv_frame().unwrap().unwrap(), b"");
        drop(a);
        assert!(b.recv_frame().unwrap().is_none());
    }

    #[test]
    fn pipe_reports_truncation_and_oversize() {
        let (a, mut b) = duplex();
        {
            // Raw bytes: a prefix promising 100 bytes, then close.
            let mut state = a.tx.state.lock().unwrap();
            state.buf.extend(100u32.to_le_bytes());
            state.buf.extend([1, 2, 3]);
        }
        drop(a);
        assert!(matches!(
            b.recv_frame(),
            Err(RecvError::TruncatedFrame { missing: 97 })
        ));

        let (a, mut b) = duplex();
        {
            let mut state = a.tx.state.lock().unwrap();
            state.buf.extend(u32::MAX.to_le_bytes());
        }
        assert!(matches!(b.recv_frame(), Err(RecvError::Oversized { .. })));
        drop(a);
    }

    #[test]
    fn send_on_closed_pipe_is_broken_pipe() {
        let (mut a, b) = duplex();
        drop(b);
        let err = a.send_frame(b"x").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::BrokenPipe);
    }
}
