//! A reconnecting client: [`Client`] plus a retry policy.
//!
//! [`ResilientClient`] owns the connection lifecycle a bare [`Client`]
//! leaves to the caller. When a call fails for a *transient* reason —
//! a transport error, a connection the server closed (deadline
//! eviction, shutdown, a mid-frame cut), or a typed
//! [`ErrorCode::Overloaded`] shed — it reconnects with exponential
//! backoff plus deterministic jitter, restores the session's mode, and
//! retries the call, up to [`RetryPolicy::max_attempts`].
//!
//! ## What restoration means
//!
//! * **Attached** sessions re-`Attach` to their named network: the
//!   state lives server-side in the registry, so the restored session
//!   sees whatever revision the shared network reached.
//! * **Bound** (private) sessions re-`Bind` from a client-side mirror
//!   [`Network`] the client maintains: every successful
//!   [`ResilientClient::mutate`] applies the same ops to the mirror,
//!   so the restored private network is byte-for-byte the state the
//!   caller last observed — including across mutations.
//!
//! ## Why replay cannot double-apply a mutation
//!
//! Queries are idempotent and replay freely. `Mutate` replays too,
//! fenced by `expected_revision`. In Attached mode the fence is
//! **captured before the first attempt**: if the original send
//! actually applied before the connection died, the server's revision
//! advanced past the fence, and the replay is rejected with a typed
//! [`ErrorCode::RevisionMismatch`] — *nothing is applied twice*; the
//! caller refreshes and decides. In Bound mode the question does not
//! even arise: reconnecting rebuilds the private network from the
//! mirror (which only advances on *confirmed* mutations), so a
//! half-delivered mutation is rolled back by the re-`Bind` itself, and
//! the replay — fenced at the restored network's own (restarted)
//! revision — applies exactly once.

use crate::chaos::ChaosRng;
use crate::client::{Client, ClientError};
use crate::protocol::{BackendId, ErrorCode, NetworkSpec};
use crate::transport::TcpTransport;
use sinr_core::{ChannelModel, Located, Network, StationId, SurgeryOp};
use sinr_geometry::Point;
use std::io;
use std::net::{SocketAddr, ToSocketAddrs};
use std::time::Duration;

/// When and how [`ResilientClient`] retries.
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Total tries per operation (first attempt included). At least 1.
    pub max_attempts: u32,
    /// Backoff before retry `n` starts from `base_backoff * 2^(n-1)`…
    pub base_backoff: Duration,
    /// …capped here; the actual sleep is a uniformly jittered fraction
    /// of the capped value (full jitter — herds of clients shed by an
    /// overloaded server must not reconnect in lockstep).
    pub max_backoff: Duration,
    /// Seeds the jitter stream ([`ChaosRng`]), so a test's retry
    /// timing is replayable like everything else in the chaos suite.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 6,
            base_backoff: Duration::from_millis(5),
            max_backoff: Duration::from_millis(500),
            seed: 0x7E57_AB1E_5EED_CAFE,
        }
    }
}

/// The session mode to restore after a reconnect.
enum Plan {
    /// No mode yet (or the caller never bound): restoration is just
    /// the TCP connect.
    Unbound,
    /// Private network: re-`Bind` from the mirror.
    Bound {
        backend: BackendId,
        epsilon: f64,
        mirror: Network,
    },
    /// Named network: re-`Attach`.
    Attached {
        name: String,
        backend: BackendId,
        epsilon: f64,
    },
}

/// A [`Client`] that survives its server: reconnects, restores its
/// session mode, and retries per [`RetryPolicy`]. See the [module
/// docs](self) for the replay-safety argument.
#[derive(Debug)]
pub struct ResilientClient {
    addrs: Vec<SocketAddr>,
    policy: RetryPolicy,
    jitter: ChaosRng,
    client: Option<Client<TcpTransport>>,
    plan: Plan,
    revision: u64,
    reconnects: u64,
    ever_connected: bool,
}

impl std::fmt::Debug for Plan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Plan::Unbound => write!(f, "Unbound"),
            Plan::Bound { backend, .. } => write!(f, "Bound({backend:?})"),
            Plan::Attached { name, .. } => write!(f, "Attached({name:?})"),
        }
    }
}

impl ResilientClient {
    /// Resolves `addr` and establishes the first connection (with the
    /// policy's backoff already in force — a server mid-restart is a
    /// transient condition).
    ///
    /// # Errors
    ///
    /// Address resolution failure, or [`io::Error`] once every attempt
    /// is spent.
    pub fn connect<A: ToSocketAddrs>(addr: A, policy: RetryPolicy) -> io::Result<ResilientClient> {
        let addrs: Vec<SocketAddr> = addr.to_socket_addrs()?.collect();
        if addrs.is_empty() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "address resolved to nothing",
            ));
        }
        let mut client = ResilientClient {
            jitter: ChaosRng::new(policy.seed),
            addrs,
            policy,
            client: None,
            plan: Plan::Unbound,
            revision: 0,
            reconnects: 0,
            ever_connected: false,
        };
        match client.ensure_connected() {
            Ok(()) => Ok(client),
            Err(ClientError::Io(e)) => Err(e),
            Err(e) => Err(io::Error::other(e.to_string())),
        }
    }

    /// How many times the underlying connection has been
    /// re-established (0 on a client that never lost one).
    pub fn reconnects(&self) -> u64 {
        self.reconnects
    }

    /// The last revision observed from the server — the fence
    /// [`ResilientClient::mutate`] uses.
    pub fn revision(&self) -> u64 {
        self.revision
    }

    /// Whether a connection is currently established (it may still be
    /// dead without the client knowing — the next call finds out).
    pub fn is_connected(&self) -> bool {
        self.client.is_some()
    }

    /// Failures worth a reconnect-and-retry: transport-level errors,
    /// a closed connection, and the accept-time [`Overloaded`] shed
    /// (which by construction processed nothing).
    ///
    /// [`Overloaded`]: ErrorCode::Overloaded
    fn transient(e: &ClientError) -> bool {
        matches!(
            e,
            ClientError::Io(_) | ClientError::Recv(_) | ClientError::ConnectionClosed
        ) || matches!(
            e,
            ClientError::Server {
                code: ErrorCode::Overloaded,
                ..
            }
        )
    }

    fn backoff(&mut self, attempt: u32) {
        let exp = self
            .policy
            .base_backoff
            .saturating_mul(1u32 << attempt.min(16))
            .min(self.policy.max_backoff);
        let nanos = exp.as_nanos() as u64;
        // Full jitter: anywhere in (0, exp]. Deterministic per seed.
        let sleep = Duration::from_nanos(self.jitter.below(nanos.max(1)) + 1);
        std::thread::sleep(sleep);
    }

    fn disconnect(&mut self) {
        self.client = None;
    }

    /// Connects (if needed) and restores the session plan, burning
    /// policy attempts on transient failures.
    fn ensure_connected(&mut self) -> Result<(), ClientError> {
        if self.client.is_some() {
            return Ok(());
        }
        let mut attempt = 0u32;
        loop {
            match self.try_connect_once() {
                Ok(()) => return Ok(()),
                Err(e) if Self::transient(&e) => {
                    self.disconnect();
                    attempt += 1;
                    if attempt >= self.policy.max_attempts.max(1) {
                        return Err(e);
                    }
                    self.backoff(attempt);
                }
                // A typed non-transient failure during restoration
                // (e.g. the named network was unregistered): the
                // session cannot be restored, tell the caller.
                Err(e) => {
                    self.disconnect();
                    return Err(e);
                }
            }
        }
    }

    fn try_connect_once(&mut self) -> Result<(), ClientError> {
        let mut last = None;
        for addr in &self.addrs {
            match Client::connect(addr) {
                Ok(c) => {
                    self.client = Some(c);
                    last = None;
                    break;
                }
                Err(e) => last = Some(e),
            }
        }
        if let Some(e) = last {
            return Err(ClientError::Io(e));
        }
        let client = self.client.as_mut().expect("connected above");
        match &self.plan {
            Plan::Unbound => {}
            Plan::Bound {
                backend,
                epsilon,
                mirror,
            } => {
                self.revision = client.bind_network(*backend, *epsilon, mirror)?;
            }
            Plan::Attached {
                name,
                backend,
                epsilon,
            } => {
                self.revision = client.attach(name, *backend, *epsilon)?;
            }
        }
        if self.ever_connected {
            self.reconnects += 1;
        }
        self.ever_connected = true;
        Ok(())
    }

    /// Runs one idempotent operation with reconnect-and-replay.
    fn with_retry<R>(
        &mut self,
        mut op: impl FnMut(&mut Client<TcpTransport>) -> Result<R, ClientError>,
    ) -> Result<R, ClientError> {
        let mut attempt = 0u32;
        loop {
            self.ensure_connected()?;
            let client = self.client.as_mut().expect("ensure_connected succeeded");
            match op(client) {
                Ok(r) => return Ok(r),
                Err(e) if Self::transient(&e) => {
                    self.disconnect();
                    attempt += 1;
                    if attempt >= self.policy.max_attempts.max(1) {
                        return Err(e);
                    }
                    self.backoff(attempt);
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Binds a private network (replayed on reconnect from a
    /// client-side mirror — see the [module docs](self)). Returns the
    /// starting revision.
    ///
    /// # Errors
    ///
    /// As [`Client::bind_network`], after retries.
    pub fn bind_network(
        &mut self,
        backend: BackendId,
        epsilon: f64,
        net: &Network,
    ) -> Result<u64, ClientError> {
        let revision = self.with_retry(|c| c.bind_network(backend, epsilon, net))?;
        let mirror = NetworkSpec::of(net)
            .build()
            .expect("server accepted this network, so its spec builds");
        self.plan = Plan::Bound {
            backend,
            epsilon,
            mirror,
        };
        self.revision = revision;
        Ok(revision)
    }

    /// Attaches to a named network (re-attached automatically after
    /// every reconnect). Returns the revision this session sees next.
    ///
    /// # Errors
    ///
    /// As [`Client::attach`], after retries.
    pub fn attach(
        &mut self,
        name: &str,
        backend: BackendId,
        epsilon: f64,
    ) -> Result<u64, ClientError> {
        let revision = self.with_retry(|c| c.attach(name, backend, epsilon))?;
        self.plan = Plan::Attached {
            name: name.to_owned(),
            backend,
            epsilon,
        };
        self.revision = revision;
        Ok(revision)
    }

    /// Publishes `net` under `name`. Replayed on transient failure; a
    /// replay whose original registration actually landed reports
    /// [`ErrorCode::NameTaken`] — nothing is registered twice, and the
    /// caller can [`ResilientClient::attach`] to the existing name.
    ///
    /// # Errors
    ///
    /// As [`Client::register_network`], after retries.
    pub fn register_network(&mut self, name: &str, net: &Network) -> Result<u64, ClientError> {
        self.with_retry(|c| c.register_network(name, net))
    }

    /// Point location with replay (idempotent). Updates
    /// [`ResilientClient::revision`].
    ///
    /// # Errors
    ///
    /// As [`Client::locate_batch`], after retries.
    pub fn locate_batch(&mut self, points: &[Point]) -> Result<(u64, Vec<Located>), ClientError> {
        let (revision, answers) = self.with_retry(|c| c.locate_batch(points))?;
        self.revision = revision;
        Ok((revision, answers))
    }

    /// SINR sampling with replay (idempotent).
    ///
    /// # Errors
    ///
    /// As [`Client::sinr_batch`], after retries.
    pub fn sinr_batch(
        &mut self,
        station: StationId,
        points: &[Point],
    ) -> Result<(u64, Vec<f64>), ClientError> {
        let (revision, values) = self.with_retry(|c| c.sinr_batch(station, points))?;
        self.revision = revision;
        Ok((revision, values))
    }

    /// Seeded Monte-Carlo reception probabilities with replay (the
    /// seed makes even this idempotent: a replay recomputes the same
    /// bits).
    ///
    /// # Errors
    ///
    /// As [`Client::reception_prob_batch`], after retries.
    pub fn reception_prob_batch(
        &mut self,
        trials: u32,
        seed: u64,
        channel: &ChannelModel,
        points: &[Point],
    ) -> Result<(u64, Vec<f64>), ClientError> {
        let (revision, values) =
            self.with_retry(|c| c.reception_prob_batch(trials, seed, channel, points))?;
        self.revision = revision;
        Ok((revision, values))
    }

    /// Seeded SINR quantiles with replay (idempotent, like
    /// [`ResilientClient::reception_prob_batch`]).
    ///
    /// # Errors
    ///
    /// As [`Client::sinr_quantiles_batch`], after retries.
    pub fn sinr_quantiles_batch(
        &mut self,
        station: StationId,
        trials: u32,
        seed: u64,
        channel: &ChannelModel,
        quantiles: &[f64],
        points: &[Point],
    ) -> Result<(u64, Vec<f64>), ClientError> {
        let (revision, values) = self.with_retry(|c| {
            c.sinr_quantiles_batch(station, trials, seed, channel, quantiles, points)
        })?;
        self.revision = revision;
        Ok((revision, values))
    }

    /// Server-side heatmap rasterisation with replay (idempotent).
    ///
    /// # Errors
    ///
    /// As [`Client::heatmap_batch`], after retries.
    pub fn heatmap_batch(
        &mut self,
        min: Point,
        max: Point,
        width: u32,
        height: u32,
    ) -> Result<(u64, Vec<Located>, u64), ClientError> {
        let (revision, cells, evaluated) =
            self.with_retry(|c| c.heatmap_batch(min, max, width, height))?;
        self.revision = revision;
        Ok((revision, cells, evaluated))
    }

    /// Applies a timestep of surgery ops, fenced at the client's last
    /// observed [`revision`](ResilientClient::revision).
    ///
    /// The replay fence is what makes retrying a mutation safe, and it
    /// is mode-dependent:
    ///
    /// * **Attached**: the shared network persists across reconnects,
    ///   so every attempt carries the fence **captured before the
    ///   first attempt**. An original that secretly applied leaves the
    ///   server past the fence, and the replay is rejected with a
    ///   typed [`ErrorCode::RevisionMismatch`] — *nothing is applied
    ///   twice*; the caller refreshes and decides.
    /// * **Bound**: a reconnect re-`Bind`s the private network from
    ///   the mirror (which only advances on *confirmed* mutations),
    ///   rolling back anything half-delivered — and restarting the
    ///   revision space. The fence therefore follows the re-bind: each
    ///   attempt fences at the revision the restored network actually
    ///   reports, and the replay applies exactly once.
    ///
    /// On success the Bound mirror advances with the same ops, keeping
    /// future reconnects faithful.
    ///
    /// # Errors
    ///
    /// As [`Client::mutate`], after retries. `RevisionMismatch` after
    /// a reconnect in Attached mode means *either* the original
    /// applied or a concurrent writer won the revision — refresh with
    /// [`ResilientClient::refresh_revision`] and re-read before
    /// re-deriving ops.
    pub fn mutate(&mut self, ops: &[SurgeryOp]) -> Result<u64, ClientError> {
        let attached_fence = self.revision;
        let mut attempt = 0u32;
        let result = loop {
            if let Err(e) = self.ensure_connected() {
                break Err(e);
            }
            // Reconnecting refreshed `self.revision` from the restored
            // session; Bound mode must fence there (fresh revision
            // space), Attached mode keeps the pre-attempt capture.
            let fence = match &self.plan {
                Plan::Bound { .. } => self.revision,
                Plan::Unbound | Plan::Attached { .. } => attached_fence,
            };
            let client = self.client.as_mut().expect("ensure_connected succeeded");
            match client.mutate(fence, ops) {
                Ok(revision) => break Ok(revision),
                Err(e) if Self::transient(&e) => {
                    self.disconnect();
                    attempt += 1;
                    if attempt >= self.policy.max_attempts.max(1) {
                        break Err(e);
                    }
                    self.backoff(attempt);
                }
                Err(e) => break Err(e),
            }
        };
        match result {
            Ok(revision) => {
                self.revision = revision;
                if let Plan::Bound { mirror, .. } = &mut self.plan {
                    for op in ops {
                        // The server applied this op against a state
                        // identical to the mirror (the invariant the
                        // re-`Bind` path maintains), so it must apply.
                        mirror
                            .apply_op(op)
                            .expect("op the server applied against identical state");
                    }
                }
                Ok(revision)
            }
            Err(e) => {
                if let ClientError::Server {
                    code: ErrorCode::Surgery,
                    ..
                } = &e
                {
                    // A prefix applied server-side. Re-apply the same
                    // prefix to the Bound mirror (it fails at the same
                    // op — identical state), and pick up the server's
                    // post-prefix revision so the fence stays usable.
                    if let Plan::Bound { mirror, .. } = &mut self.plan {
                        for op in ops {
                            if mirror.apply_op(op).is_err() {
                                break;
                            }
                        }
                    }
                    let _ = self.refresh_revision();
                }
                Err(e)
            }
        }
    }

    /// Re-reads the server's current revision (an empty locate batch)
    /// — the resync step after an ambiguous mutation outcome.
    ///
    /// # Errors
    ///
    /// As [`Client::locate_batch`], after retries.
    pub fn refresh_revision(&mut self) -> Result<u64, ClientError> {
        let (revision, _) = self.locate_batch(&[])?;
        Ok(revision)
    }
}
