//! # sinr-server
//!
//! A streaming batched point-location server for SINR diagrams: the
//! network face of the workspace's
//! [`QueryEngine`](sinr_core::QueryEngine) machinery (the paper's
//! Theorem-3 query structures and the Observation-2.2 dispatch become
//! "algorithmically usable" at scale only when batches of query points
//! can be served continuously — this crate is that service).
//!
//! The design is std-only (no async runtime exists in this workspace)
//! with **two serving modes** and **two engine-ownership modes**,
//! chosen independently:
//!
//! * **Engine ownership.** A session either `Bind`s — it gets a private
//!   [`Network`](sinr_core::Network) and
//!   [`BoxedEngine`](sinr_core::BoxedEngine), the original share-nothing
//!   path — or `Attach`es to a network another session `Register`ed
//!   under a server-wide name. Attached sessions share **one**
//!   [`SnapshotStore`](sinr_core::SnapshotStore) per (network, backend,
//!   epsilon): queries run against the immutable
//!   [`EngineSnapshot`](sinr_core::EngineSnapshot) published for the
//!   current revision, and a `Mutate` publishes a new snapshot that
//!   every attached session observes at its next request while
//!   in-flight batches finish on the old one (RCU — see
//!   [`registry`] and `sinr_core::snapshot`). Memory scales with the
//!   number of *(network, backend)* pairs, not the session count.
//! * **Serving mode.** [`Server::spawn`] is classic
//!   thread-per-connection — one blocking thread per session, ideal for
//!   few heavy clients. [`Server::spawn_pooled`] multiplexes all
//!   connections over a small fixed worker pool (nonblocking sockets, a
//!   readiness poll loop, per-session state machines) — ideal for
//!   hundreds of light clients, where a thread each would thrash. Both
//!   drive the same [`session::SessionCore`], so behavior is identical
//!   frame-for-frame.
//!
//! Either way a session accepts an arbitrary interleaving of query and
//! mutation frames, so a mobile-station client streams `Mutate` +
//! `LocateBatch` forever against one engine that is patched
//! incrementally (PR 3's [`NetworkDelta`](sinr_core::NetworkDelta)
//! path) — never rebuilt, never re-shipped.
//!
//! ## Wire protocol
//!
//! Every frame is a little-endian `u32` payload length followed by the
//! payload; payloads at most [`MAX_FRAME_LEN`](transport::MAX_FRAME_LEN)
//! bytes (16 MiB). All integers little-endian; all reals IEEE-754
//! `f64`, little-endian. The first payload byte is the frame tag:
//!
//! | tag | direction | frame | body layout |
//! |-----|-----------|-------|-------------|
//! | `0x01` | → | `Bind` | backend `u8`, epsilon `f64`, noise `f64`, beta `f64`, alpha `f64`, n `u32`, n × (x `f64`, y `f64`, power `f64`) |
//! | `0x02` | → | `LocateBatch` | count `u32`, count × (x `f64`, y `f64`) |
//! | `0x03` | → | `SinrBatch` | station `u32`, count `u32`, count × (x `f64`, y `f64`) |
//! | `0x04` | → | `Mutate` | expected_revision `u64`, op_count `u32`, ops (see below) |
//! | `0x05` | → | `ReceptionProbBatch` | trials `u32`, seed `u64`, channel (see below), count `u32`, count × (x `f64`, y `f64`) |
//! | `0x06` | → | `Register` | name (see below), then the `Bind` network block: noise `f64`, beta `f64`, alpha `f64`, n `u32`, n × (x `f64`, y `f64`, power `f64`) |
//! | `0x07` | → | `Attach` | name (see below), backend `u8`, epsilon `f64` |
//! | `0x08` | → | `SinrQuantilesBatch` | station `u32`, trials `u32`, seed `u64`, channel (see below), q_count `u32`, q_count × `f64`, count `u32`, count × (x `f64`, y `f64`) |
//! | `0x09` | → | `HeatmapBatch` | min_x `f64`, min_y `f64`, max_x `f64`, max_y `f64`, width `u32`, height `u32` |
//! | `0x0A` | → | `Unregister` | name (see below) |
//! | `0x81` | ← | `Bound` | revision `u64`, backend `u8` |
//! | `0x82` | ← | `Located` | revision `u64`, total `u32`, runs × (kind `u8`, station `u32`, len `u32`) |
//! | `0x83` | ← | `Sinrs` | revision `u64`, count `u32`, count × `f64` |
//! | `0x84` | ← | `Mutated` | revision `u64`, applied `u32` |
//! | `0x85` | ← | `ReceptionProbs` | revision `u64`, count `u32`, count × `f64` |
//! | `0x86` | ← | `Registered` | revision `u64` |
//! | `0x87` | ← | `Attached` | revision `u64`, backend `u8` |
//! | `0x88` | ← | `SinrQuantiles` | revision `u64`, quantiles `u32`, count `u32`, count × `f64` (row-major: point-major rows of `quantiles` values; `quantiles` divides count) |
//! | `0x89` | ← | `Heatmap` | revision `u64`, width `u32`, height `u32`, cells_evaluated `u64`, runs × (kind `u8`, station `u32`, len `u32`) |
//! | `0x8A` | ← | `Unregistered` | (empty) |
//! | `0xEE` | ← | `Error` | code `u8`, msg_len `u16`, msg (UTF-8) |
//!
//! **Names** (`Register`/`Attach`/`Unregister`): len `u8` (1–255), len
//! bytes of UTF-8. A name registers a network server-wide until it is
//! `Unregister`ed (refused with code `18` while sessions are attached;
//! sessions that attached before an unregister keep their engine —
//! unregistering unlinks the *name*, it never revokes an attachment);
//! names are exact-match, case-sensitive.
//!
//! **Heatmaps.** `HeatmapBatch` rasterises the session's SINR diagram
//! over the axis-aligned window `[min, max]` at `width × height`
//! pixels, server-side, by the hierarchical (interval-certified
//! quadtree) refinement of `sinr-diagram` — bit-identical to locating
//! every pixel centre, but per-point evaluation is paid only near the
//! zone boundaries, and `cells_evaluated` reports exactly how many
//! pixels paid it. Pixels are `Located` runs in bottom-first row-major
//! order (`cells[row * width + col]`); uncertain pixels are the
//! backend's own `Uncertain` answers, exactly as a `LocateBatch` of the
//! pixel centres would produce. Grids over
//! [`protocol::MAX_HEATMAP_PIXELS`] (or whose `width × height`
//! overflows) are refused with code `1` before any computation; a grid
//! under the pixel cap whose *actual* run-length encoding still cannot
//! fit one frame (9 bytes per run + 25 header — a pathologically
//! fragmented diagram) is refused with code `11` after rasterisation.
//!
//! `Located` responses are run-length encoded (kind `0` = reception,
//! `1` = uncertain, `2` = silent with station `0`; runs must sum to
//! `total`). Surgery ops are the
//! [`SurgeryOp`](sinr_core::SurgeryOp) wire encoding of `sinr-core`:
//! tag `u8` (`0` add: x, y, power as `f64`; `1` remove: id `u32`;
//! `2` move: id `u32`, x, y; `3` set-power: id `u32`, power).
//!
//! **Channel atoms** (`ReceptionProbBatch` body; see
//! [`ChannelModel`](sinr_core::ChannelModel)): tag `u8` — `0`
//! deterministic; `1` log-normal shadowing: sigma_db `f64`; `2`
//! Rayleigh fading; `3` fixed gains: count `u32`, count × `f64`; `4`
//! composed: atom_count `u8`, atoms (no nesting — a `Composed` inside a
//! `Composed` fails decode). The answers are seeded Monte-Carlo
//! reception probabilities, bit-identical on replay of the same
//! `(trials, seed, channel, points)` at the same revision.
//!
//! **Backend ids** (`Bind` byte): `0` `exact_scan`, `1` `simd_scan`,
//! `2` `voronoi_assisted`, `3` `qds` (Theorem 3; uses `epsilon`).
//!
//! **Error codes**: see [`protocol::ErrorCode`] — `1` malformed frame,
//! `2` unknown backend, `3` not bound, `4` already bound, `5` invalid
//! network, `6` backend build, `7` revision mismatch, `8` surgery,
//! `9` station out of range, `10` stale, `11` oversized, `12`
//! unsupported (unbinds), `13` internal (closes), `14` channel
//! unsupported (unbinds/detaches), `15` invalid channel, `16` name
//! taken, `17` unknown network (detaches an attached session), `18`
//! still attached (`Unregister` refused), `19` overloaded (shed at
//! accept — nothing was processed; closes). Unless noted, the session
//! survives an error and processes the next frame.
//!
//! **Revision fencing.** Every response carries the network revision it
//! is valid for; `Mutate` carries the revision its ops were computed
//! against and is rejected (`7`) on any mismatch — a delta computed
//! against a foreign or stale revision can never be applied silently.
//!
//! **Pipelining.** The session loop answers every request with exactly
//! one response, in request order (error frames included — an error is
//! that request's response). Clients may therefore keep multiple
//! request frames in flight and match responses to requests purely by
//! order, with no request ids on the wire. Use
//! [`Client::send_locate_batch`]/[`Client::recv_located`] for manual
//! windowing or [`Client::locate_batches_pipelined`] for a fixed
//! frames-in-flight window; answers are bit-identical to the
//! request/response loop (pinned by the e2e differential suite), but
//! the per-burst round-trip gap — during which a request/response
//! server sits idle — overlaps with compute, which is what keeps the
//! engine-side tiled batch executor continuously fed. Blocking
//! clients must bound unanswered request *bytes* to what the
//! transport buffers (the session does not read ahead while
//! computing); the shipped helper enforces
//! [`client::PIPELINE_REQUEST_BUDGET`] and degrades toward lock-step
//! for oversized bursts.
//!
//! ## Resilience
//!
//! The serving layer is hardened against badly-behaved byte streams
//! and clients, and the client half has a reconnect story; every limit
//! is opt-in through [`server::ServerConfig`]:
//!
//! * **Session deadlines** ([`ServerConfig::idle_deadline`],
//!   [`ServerConfig::frame_deadline`]): an idle session is evicted
//!   after `idle_deadline` between frames, and a session that has
//!   *started* a frame must finish it within `frame_deadline` measured
//!   from the frame's first byte — an absolute budget, so a slowloris
//!   client dribbling one byte per read cannot re-arm the clock. Both
//!   modes enforce both: threaded sessions re-arm `SO_RCVTIMEO` to the
//!   *remaining* budget around each read
//!   ([`transport::Deadlines`]), pooled workers sweep
//!   [`PolledIo::partial_in`] timestamps on their existing poll loop.
//!   Eviction closes the connection without a farewell frame.
//! * **Overload shedding** ([`ServerConfig::max_connections`]): past
//!   the cap, a new connection gets one framed error code `19`
//!   ([`ErrorCode::Overloaded`]) and is closed at accept time — before
//!   any request frame is read, so retrying is always safe. Admission
//!   is first-come: an existing session closing frees a slot.
//! * **Out-queue cap** ([`ServerConfig::max_pending_out`]): a pooled
//!   session whose peer stops reading its answers is disconnected once
//!   the queued response bytes exceed the cap, instead of buffering
//!   without bound.
//! * **Fault injection** ([`chaos::ChaosStream`]): a seeded,
//!   deterministic `Read + Write` wrapper that chops reads/writes at
//!   arbitrary byte boundaries, injects `WouldBlock` and delays, and
//!   cuts the connection mid-frame after a byte budget — one `u64`
//!   seed replays one exact fault schedule. The chaos e2e suite runs
//!   fleets of chaotic clients against both serving modes and pins
//!   every completed answer bit-identical to a fresh local engine.
//! * **Reconnecting client** ([`resilient::ResilientClient`]):
//!   reconnects with exponential backoff plus deterministic jitter,
//!   restores the session mode (re-`Attach`, or re-`Bind` from a
//!   client-side mirror network), and replays failed calls. Queries
//!   replay freely (idempotent — even the Monte-Carlo frames, which
//!   carry their own seeds); a replayed `Mutate` keeps its original
//!   `expected_revision` fence, so an original that secretly applied
//!   makes the replay fail typed (`7`) instead of applying twice.
//!   `Overloaded` (`19`) is retried like a transport failure.
//!
//! [`ServerConfig::idle_deadline`]: server::ServerConfig::idle_deadline
//! [`ServerConfig::frame_deadline`]: server::ServerConfig::frame_deadline
//! [`ServerConfig::max_connections`]: server::ServerConfig::max_connections
//! [`ServerConfig::max_pending_out`]: server::ServerConfig::max_pending_out
//! [`PolledIo::partial_in`]: transport::PolledIo::partial_in
//!
//! ## Quickstart
//!
//! ```
//! use sinr_core::{Network, StationId, SurgeryOp};
//! use sinr_geometry::Point;
//! use sinr_server::{serve_in_process, BackendId};
//!
//! let net = Network::uniform(
//!     vec![Point::new(0.0, 0.0), Point::new(6.0, 0.0)],
//!     0.0,
//!     2.0,
//! ).unwrap();
//!
//! // In-process session (swap for `Client::connect(addr)` + `Server::bind`
//! // over TCP — same frames either way).
//! let mut client = serve_in_process();
//! let revision = client.bind_network(BackendId::SimdScan, 0.0, &net).unwrap();
//!
//! // Stream a query batch…
//! let (rev, answers) = client
//!     .locate_batch(&[Point::new(0.5, 0.0), Point::new(3.0, 0.0)])
//!     .unwrap();
//! assert_eq!(rev, revision);
//! assert_eq!(answers[0].station(), Some(StationId(0)));
//!
//! // …then mutate in place (revision-fenced) and keep querying: the
//! // server patches its engine with the emitted deltas, no rebuilds.
//! let rev = client
//!     .mutate(rev, &[SurgeryOp::Move { id: StationId(1), to: Point::new(2.0, 0.0) }])
//!     .unwrap();
//! let (rev2, _) = client.locate_batch(&[Point::new(0.5, 0.0)]).unwrap();
//! assert_eq!(rev2, rev);
//! ```

#![deny(missing_docs)]
#![deny(unsafe_code)]

pub mod chaos;
pub mod client;
pub mod protocol;
pub mod registry;
pub mod resilient;
pub mod server;
pub mod session;
pub mod transport;

pub use chaos::{ChaosConfig, ChaosRng, ChaosStream, ChaosTransport, CutKind};
pub use client::{serve_in_process, Client, ClientError, PIPELINE_REQUEST_BUDGET};
pub use protocol::{
    decode_request, decode_response, encode_request, encode_response, BackendId, ErrorCode,
    NetworkSpec, ProtocolError, Request, Response,
};
pub use registry::{AttachGuard, AttachHandle, NamedNetwork, NetworkRegistry, UnregisterError};
pub use resilient::{ResilientClient, RetryPolicy};
pub use server::{Server, ServerConfig, ServerHandle};
pub use session::{serve_session, serve_session_with_registry, SessionCore};
pub use transport::{
    duplex, duplex_stream, Deadlines, IoTransport, PipeStream, PipeTransport, PolledIo, RecvError,
    StreamCtl, TcpTransport, Transport,
};
