//! The payload grammar: typed requests/responses and their binary
//! codecs.
//!
//! Every frame payload starts with one tag byte; all integers are
//! little-endian, all reals are IEEE-754 `f64` in little-endian byte
//! order. The full frame layout table lives in the [crate docs](crate).
//!
//! Decoding is total: any byte string either parses into a
//! [`Request`]/[`Response`] or yields a typed [`ProtocolError`] — no
//! panics, no unchecked allocations (declared element counts are
//! validated against the bytes actually present *before* any buffer is
//! sized, so a 12-byte frame cannot ask for a 4-billion-point vector).

use sinr_core::{ChannelModel, Located, Network, NetworkError, StationId, SurgeryOp, WireError};
use sinr_geometry::Point;

/// Request tags (client → server).
const TAG_BIND: u8 = 0x01;
const TAG_LOCATE_BATCH: u8 = 0x02;
const TAG_SINR_BATCH: u8 = 0x03;
const TAG_MUTATE: u8 = 0x04;
const TAG_RECEPTION_PROB_BATCH: u8 = 0x05;
const TAG_REGISTER: u8 = 0x06;
const TAG_ATTACH: u8 = 0x07;
const TAG_SINR_QUANTILES_BATCH: u8 = 0x08;
const TAG_HEATMAP_BATCH: u8 = 0x09;
const TAG_UNREGISTER: u8 = 0x0A;

/// Response tags (server → client).
const TAG_BOUND: u8 = 0x81;
const TAG_LOCATED: u8 = 0x82;
const TAG_SINRS: u8 = 0x83;
const TAG_MUTATED: u8 = 0x84;
const TAG_RECEPTION_PROBS: u8 = 0x85;
const TAG_REGISTERED: u8 = 0x86;
const TAG_ATTACHED: u8 = 0x87;
const TAG_SINR_QUANTILES: u8 = 0x88;
const TAG_HEATMAP: u8 = 0x89;
const TAG_UNREGISTERED: u8 = 0x8A;
const TAG_ERROR: u8 = 0xEE;

/// Bounds on a named network's name (wire: length byte + UTF-8 bytes).
pub const MAX_NETWORK_NAME_LEN: usize = 255;

/// Atom tags of the [`ChannelModel`] wire encoding (one byte each).
const CHANNEL_DETERMINISTIC: u8 = 0;
const CHANNEL_LOG_NORMAL: u8 = 1;
const CHANNEL_RAYLEIGH: u8 = 2;
const CHANNEL_FIXED_GAINS: u8 = 3;
const CHANNEL_COMPOSED: u8 = 4;

/// Run kinds of the run-length-encoded `Located` answer stream.
const RUN_RECEPTION: u8 = 0;
const RUN_UNCERTAIN: u8 = 1;
const RUN_SILENT: u8 = 2;

/// The backend a session binds, as named on the wire (one byte).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BackendId {
    /// `0` — [`sinr_core::ExactScan`]: exact for every network.
    ExactScan,
    /// `1` — [`sinr_core::SimdScan`]: the vectorized exact scan.
    SimdScan,
    /// `2` — [`sinr_core::VoronoiAssisted`]: weighted kd-tree dispatch
    /// for every power assignment — nearest-station (Observation 2.2)
    /// under uniform power, power-diagram cells otherwise.
    VoronoiAssisted,
    /// `3` — the Theorem-3 `PointLocator` of `sinr-pointloc`:
    /// `O(log n)` queries, may answer [`Located::Uncertain`]; requires
    /// uniform power, `α = 2`, `β > 1`.
    Qds,
}

impl BackendId {
    /// Every backend, in wire-id order.
    pub const ALL: [BackendId; 4] = [
        BackendId::ExactScan,
        BackendId::SimdScan,
        BackendId::VoronoiAssisted,
        BackendId::Qds,
    ];

    /// The wire byte.
    pub fn to_wire(self) -> u8 {
        match self {
            BackendId::ExactScan => 0,
            BackendId::SimdScan => 1,
            BackendId::VoronoiAssisted => 2,
            BackendId::Qds => 3,
        }
    }

    /// Parses the wire byte.
    pub fn from_wire(b: u8) -> Option<BackendId> {
        BackendId::ALL.into_iter().find(|id| id.to_wire() == b)
    }

    /// The stable textual name (`exact_scan`, `simd_scan`,
    /// `voronoi_assisted`, `qds`).
    pub fn name(self) -> &'static str {
        match self {
            BackendId::ExactScan => "exact_scan",
            BackendId::SimdScan => "simd_scan",
            BackendId::VoronoiAssisted => "voronoi_assisted",
            BackendId::Qds => "qds",
        }
    }

    /// Parses the textual name (the CLI/config-file spelling).
    pub fn from_name(s: &str) -> Option<BackendId> {
        BackendId::ALL.into_iter().find(|id| id.name() == s)
    }
}

impl std::fmt::Display for BackendId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A network description as carried by a `Bind` frame: enough to
/// reconstruct a [`Network`] server-side (validation stays with
/// [`Network`]'s builder — the wire layer does not re-model it).
#[derive(Debug, Clone, PartialEq)]
pub struct NetworkSpec {
    /// Background noise `N`.
    pub noise: f64,
    /// Reception threshold `β`.
    pub beta: f64,
    /// Path-loss exponent `α`.
    pub alpha: f64,
    /// Stations as `(position, transmit power)`, in index order.
    pub stations: Vec<(Point, f64)>,
}

impl NetworkSpec {
    /// The spec describing `net`'s current state.
    pub fn of(net: &Network) -> NetworkSpec {
        NetworkSpec {
            noise: net.noise(),
            beta: net.beta(),
            alpha: net.alpha(),
            stations: net.stations().map(|s| (s.position, s.power)).collect(),
        }
    }

    /// Builds the described network.
    ///
    /// # Errors
    ///
    /// Whatever [`Network`]'s builder rejects (too few stations,
    /// non-finite coordinates, invalid noise/threshold/power/path-loss).
    pub fn build(&self) -> Result<Network, NetworkError> {
        let mut b = Network::builder()
            .background_noise(self.noise)
            .threshold(self.beta)
            .path_loss(self.alpha);
        for (p, power) in &self.stations {
            b = b.station_with_power(*p, *power);
        }
        b.build()
    }
}

/// A client→server frame.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Binds the session: the network to serve and the backend to serve
    /// it with. Must be the first frame; exactly one per session.
    Bind {
        /// The backend to build.
        backend: BackendId,
        /// Approximation parameter for [`BackendId::Qds`] (ignored by
        /// the exact backends).
        epsilon: f64,
        /// The network to serve.
        network: NetworkSpec,
    },
    /// A batch of point-location queries.
    LocateBatch {
        /// The query points.
        points: Vec<Point>,
    },
    /// A batch of SINR evaluations for one station.
    SinrBatch {
        /// The station whose SINR is sampled.
        station: StationId,
        /// The sample points.
        points: Vec<Point>,
    },
    /// A timestep of network surgery, revision-fenced: the server
    /// rejects the frame unless its network is exactly at
    /// `expected_revision` (so a delta computed against another
    /// revision can never be applied silently).
    Mutate {
        /// The revision the ops were computed against.
        expected_revision: u64,
        /// The surgery ops, applied in order via
        /// [`Network::apply_ops`].
        ops: Vec<SurgeryOp>,
    },
    /// A batch of seeded Monte-Carlo reception-probability queries
    /// under a stochastic [`ChannelModel`]
    /// ([`sinr_core::QueryEngine::reception_probability_batch`]).
    /// Fully replayable: the same `(trials, seed, channel, points)`
    /// against the same network revision answers bit-identically on
    /// every conforming server.
    ReceptionProbBatch {
        /// Monte-Carlo trial count (`1..=`[`sinr_core::channel::MAX_TRIALS`]).
        trials: u32,
        /// The base RNG seed; see the channel module's seeding contract.
        seed: u64,
        /// The stochastic channel to sample.
        channel: ChannelModel,
        /// The query points.
        points: Vec<Point>,
    },
    /// Publishes a network under a server-wide name so that any number
    /// of sessions can [`Request::Attach`] to it and share one engine
    /// snapshot per (backend, revision) — the registry path, as opposed
    /// to [`Request::Bind`]'s private-engine path. Works in any session
    /// state (registering does not bind the registering session).
    Register {
        /// The registry name (1–[`MAX_NETWORK_NAME_LEN`] UTF-8 bytes).
        name: String,
        /// The network to publish.
        network: NetworkSpec,
    },
    /// Attaches the session to a registered network: queries are served
    /// from the shared [`sinr_core::EngineSnapshot`] current at each
    /// request, and `Mutate` publishes a new snapshot every attached
    /// session observes at its next revision fence.
    Attach {
        /// The name the network was registered under.
        name: String,
        /// The backend to serve it with (shared with every other
        /// session attached via the same backend and epsilon).
        backend: BackendId,
        /// Approximation parameter for [`BackendId::Qds`] (ignored by
        /// the exact backends).
        epsilon: f64,
    },
    /// A batch of seeded Monte-Carlo SINR-distribution queries for one
    /// station ([`sinr_core::QueryEngine::sinr_quantiles_batch`]): for
    /// each point, the requested quantiles (nearest-rank over `trials`
    /// sampled SINR values) of station `station`'s SINR under the
    /// channel. Replayable like [`Request::ReceptionProbBatch`].
    SinrQuantilesBatch {
        /// The station whose SINR distribution is sampled.
        station: StationId,
        /// Monte-Carlo trial count.
        trials: u32,
        /// The base RNG seed.
        seed: u64,
        /// The stochastic channel to sample.
        channel: ChannelModel,
        /// The quantiles to report, each in `[0, 1]`.
        quantiles: Vec<f64>,
        /// The query points.
        points: Vec<Point>,
    },
    /// A reception-map raster over a window: the server labels every
    /// pixel centre of a `width × height` grid (row-major, bottom row
    /// first) and streams the labels back run-length encoded
    /// ([`Response::Heatmap`]). Served from both Private and Attached
    /// sessions; the server renders hierarchically (quadtree refinement
    /// over interval certificates) but the pixels are bit-identical to
    /// a dense per-pixel evaluation on the same backend.
    HeatmapBatch {
        /// Window minimum corner (finite; strictly below `max` on both
        /// axes).
        min: Point,
        /// Window maximum corner.
        max: Point,
        /// Raster width in pixels (`≥ 1`).
        width: u32,
        /// Raster height in pixels (`≥ 1`).
        height: u32,
    },
    /// Removes a network from the server-wide registry. Fails with
    /// [`ErrorCode::StillAttached`] while any session is attached to it
    /// (detach by unbinding/closing those sessions first); succeeds
    /// idempotently from any session, bound or not.
    Unregister {
        /// The name the network was registered under.
        name: String,
    },
}

/// A server→client frame.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// The session is bound and ready.
    Bound {
        /// The served network's revision (0 for a fresh bind).
        revision: u64,
        /// The backend actually built.
        backend: BackendId,
    },
    /// Answers to a `LocateBatch`, index-aligned with the request
    /// points (run-length encoded on the wire).
    Located {
        /// The revision the answers are valid for.
        revision: u64,
        /// One answer per query point.
        answers: Vec<Located>,
    },
    /// Answers to a `SinrBatch`.
    Sinrs {
        /// The revision the values are valid for.
        revision: u64,
        /// One SINR value per sample point.
        values: Vec<f64>,
    },
    /// A `Mutate` was applied in full.
    Mutated {
        /// The network's revision after the whole timestep.
        revision: u64,
        /// Number of ops applied.
        applied: u32,
    },
    /// Answers to a `ReceptionProbBatch`, index-aligned with the
    /// request points.
    ReceptionProbs {
        /// The revision the probabilities are valid for.
        revision: u64,
        /// One reception probability (in `[0, 1]`) per query point.
        values: Vec<f64>,
    },
    /// The network is registered ([`Request::Register`]).
    Registered {
        /// The registered network's starting revision.
        revision: u64,
    },
    /// The session is attached to a registered network
    /// ([`Request::Attach`]).
    Attached {
        /// The revision of the snapshot the session will observe next.
        revision: u64,
        /// The backend serving the shared snapshots.
        backend: BackendId,
    },
    /// Answers to a `SinrQuantilesBatch`.
    SinrQuantiles {
        /// The revision the values are valid for.
        revision: u64,
        /// Number of quantiles per point (the row width of `values`).
        quantiles: u32,
        /// Row-major: `values[k * quantiles + q]` is quantile `q` of
        /// point `k`.
        values: Vec<f64>,
    },
    /// Answers to a `HeatmapBatch`: one label per pixel, row-major
    /// bottom-first, run-length encoded on the wire (zones are
    /// contiguous, so rasters compress extremely well).
    Heatmap {
        /// The revision the raster is valid for.
        revision: u64,
        /// Raster width in pixels (echoes the request).
        width: u32,
        /// Raster height in pixels (echoes the request).
        height: u32,
        /// How many pixels the server actually evaluated per-point
        /// (the rest were resolved wholesale from interval
        /// certificates) — observability only, answers never depend on
        /// it.
        cells_evaluated: u64,
        /// One answer per pixel (`width · height` of them):
        /// `Reception`/`Silent` labels; `Uncertain` never occurs (the
        /// raster projection folds it into `Silent` server-side).
        cells: Vec<Located>,
    },
    /// The network was removed from the registry
    /// ([`Request::Unregister`]).
    Unregistered,
    /// The request failed; the session stays usable unless the
    /// [`ErrorCode`] docs say otherwise.
    Error {
        /// What failed.
        code: ErrorCode,
        /// Human-readable detail (the underlying typed error's
        /// `Display` output).
        message: String,
    },
}

/// Error codes of [`Response::Error`] (one byte on the wire).
///
/// Unless noted, the error is *per-request*: the session survives and
/// the next frame is processed normally.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ErrorCode {
    /// `1` — the frame payload did not parse; the offending frame is
    /// dropped (frame boundaries are intact, the session continues).
    MalformedFrame,
    /// `2` — `Bind` named an unknown backend id.
    UnknownBackend,
    /// `3` — a query/mutate frame arrived before a successful `Bind`.
    NotBound,
    /// `4` — a second `Bind` on an already-bound session.
    AlreadyBound,
    /// `5` — the `Bind` network failed [`Network`] validation.
    InvalidNetwork,
    /// `6` — the backend refused the network (e.g. the Theorem-3
    /// preconditions).
    BackendBuild,
    /// `7` — `Mutate`'s `expected_revision` does not match the session
    /// network (ops computed against a foreign/stale revision). Nothing
    /// was applied.
    RevisionMismatch,
    /// `8` — a surgery op failed validation mid-timestep; the ops
    /// before it **stay applied** (the message carries the failing
    /// index) and the engine is re-synced to the resulting revision.
    Surgery,
    /// `9` — `SinrBatch` named a station the network does not have.
    StationOutOfRange,
    /// `10` — the engine reported staleness at query time
    /// ([`sinr_core::LocateError`]); re-sync and retry.
    Stale,
    /// `11` — a frame length prefix exceeded
    /// [`MAX_FRAME_LEN`](crate::transport::MAX_FRAME_LEN); the stream
    /// position is unrecoverable, the server closes the connection
    /// after sending this.
    Oversized,
    /// `12` — after a mutate, the bound backend cannot represent the
    /// new network (e.g. QDS and non-uniform power); the session is
    /// **unbound** (subsequent queries get [`ErrorCode::NotBound`]).
    Unsupported,
    /// `13` — the server caught an unexpected panic while handling the
    /// frame; it closes the connection after sending this.
    Internal,
    /// `14` — the bound backend does not implement stochastic channels
    /// ([`sinr_core::ChannelError::Unsupported`]); like
    /// [`ErrorCode::Unsupported`], the session is **unbound**
    /// (subsequent queries get [`ErrorCode::NotBound`]).
    ChannelUnsupported,
    /// `15` — the `ReceptionProbBatch` channel spec or Monte-Carlo
    /// config failed [`ChannelModel`] validation (bad `σ`, wrong gain
    /// vector length, zero trials, …). Per-request: the session
    /// survives.
    InvalidChannel,
    /// `16` — `Register` named a network that already exists in the
    /// registry. Per-request: the session survives (and may `Attach` to
    /// the existing network instead).
    NameTaken,
    /// `17` — `Attach` named a network the registry does not have, or
    /// the network a session was attached to can no longer be served by
    /// its backend (the shared store was poisoned by a mutation — the
    /// session is then **detached**, like [`ErrorCode::Unsupported`]).
    UnknownNetwork,
    /// `18` — `Unregister` named a network that sessions are still
    /// attached to; nothing was removed. Per-request: the session
    /// survives (retry once the attached sessions detach or close).
    StillAttached,
    /// `19` — the server is at its configured connection cap
    /// ([`ServerConfig::max_connections`](crate::server::ServerConfig))
    /// and shed this connection at accept time: **no frame was
    /// processed**, the server closes the connection after sending
    /// this. Always safe to retry after a backoff —
    /// [`ResilientClient`](crate::resilient::ResilientClient) does so
    /// automatically.
    Overloaded,
}

impl ErrorCode {
    /// Every code, in wire order.
    pub const ALL: [ErrorCode; 19] = [
        ErrorCode::MalformedFrame,
        ErrorCode::UnknownBackend,
        ErrorCode::NotBound,
        ErrorCode::AlreadyBound,
        ErrorCode::InvalidNetwork,
        ErrorCode::BackendBuild,
        ErrorCode::RevisionMismatch,
        ErrorCode::Surgery,
        ErrorCode::StationOutOfRange,
        ErrorCode::Stale,
        ErrorCode::Oversized,
        ErrorCode::Unsupported,
        ErrorCode::Internal,
        ErrorCode::ChannelUnsupported,
        ErrorCode::InvalidChannel,
        ErrorCode::NameTaken,
        ErrorCode::UnknownNetwork,
        ErrorCode::StillAttached,
        ErrorCode::Overloaded,
    ];

    /// The wire byte.
    pub fn to_wire(self) -> u8 {
        match self {
            ErrorCode::MalformedFrame => 1,
            ErrorCode::UnknownBackend => 2,
            ErrorCode::NotBound => 3,
            ErrorCode::AlreadyBound => 4,
            ErrorCode::InvalidNetwork => 5,
            ErrorCode::BackendBuild => 6,
            ErrorCode::RevisionMismatch => 7,
            ErrorCode::Surgery => 8,
            ErrorCode::StationOutOfRange => 9,
            ErrorCode::Stale => 10,
            ErrorCode::Oversized => 11,
            ErrorCode::Unsupported => 12,
            ErrorCode::Internal => 13,
            ErrorCode::ChannelUnsupported => 14,
            ErrorCode::InvalidChannel => 15,
            ErrorCode::NameTaken => 16,
            ErrorCode::UnknownNetwork => 17,
            ErrorCode::StillAttached => 18,
            ErrorCode::Overloaded => 19,
        }
    }

    /// Parses the wire byte.
    pub fn from_wire(b: u8) -> Option<ErrorCode> {
        ErrorCode::ALL.into_iter().find(|c| c.to_wire() == b)
    }
}

impl std::fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:?}({})", self, self.to_wire())
    }
}

/// Why a frame payload failed to decode.
#[derive(Debug, Clone, PartialEq)]
pub enum ProtocolError {
    /// The payload was empty (no tag byte).
    EmptyFrame,
    /// The tag byte names no known frame type.
    UnknownTag(u8),
    /// A field ran past the end of the payload, or a declared element
    /// count promised more bytes than the payload holds.
    Truncated {
        /// Which field was being read.
        what: &'static str,
        /// How many more bytes it needed.
        missing: usize,
    },
    /// The payload continued past the end of the frame's fields.
    Trailing {
        /// How many bytes were left over.
        extra: usize,
    },
    /// `Bind` carried an unknown backend byte.
    UnknownBackend(u8),
    /// An `Error` response carried an unknown code byte.
    UnknownErrorCode(u8),
    /// A `Located` run carried an unknown kind byte.
    UnknownRunKind(u8),
    /// The `Located` runs did not sum to the declared answer count.
    RunLengthMismatch {
        /// The declared total.
        declared: u64,
        /// What the runs actually summed to.
        decoded: u64,
    },
    /// A `Located` response declared more answers than any legal
    /// request could have asked for. Run-length coding means the byte
    /// budget cannot bound this count (one 9-byte run can claim 2³²
    /// answers), so it gets its own explicit cap.
    AnswerCountTooLarge {
        /// The declared total.
        declared: u64,
        /// The cap ([`MAX_FRAME_LEN`](crate::transport::MAX_FRAME_LEN)
        /// divided by the 16-byte wire size of a query point).
        limit: u64,
    },
    /// An `Error` response message was not UTF-8.
    BadMessageEncoding,
    /// A surgery op inside `Mutate` failed to decode.
    Op(WireError),
    /// A `ReceptionProbBatch` channel atom carried an unknown tag byte.
    UnknownChannelTag(u8),
    /// A `ReceptionProbBatch` channel nested a `Composed` atom inside
    /// another `Composed` — the model family is flat by construction
    /// ([`ChannelModel::validate`] rejects it), so the wire grammar
    /// rejects it too rather than decode an always-invalid value.
    NestedChannelCompose,
    /// A `Register`/`Attach` network name was structurally invalid:
    /// empty, or not UTF-8 (the length bound is enforced by the 1-byte
    /// wire length itself).
    InvalidName(&'static str),
}

impl std::fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtocolError::EmptyFrame => write!(f, "empty frame payload"),
            ProtocolError::UnknownTag(t) => write!(f, "unknown frame tag {t:#04x}"),
            ProtocolError::Truncated { what, missing } => {
                write!(
                    f,
                    "frame truncated reading {what}: {missing} more bytes needed"
                )
            }
            ProtocolError::Trailing { extra } => {
                write!(f, "{extra} trailing bytes after the frame's fields")
            }
            ProtocolError::UnknownBackend(b) => write!(f, "unknown backend id {b}"),
            ProtocolError::UnknownErrorCode(b) => write!(f, "unknown error code {b}"),
            ProtocolError::UnknownRunKind(b) => write!(f, "unknown Located run kind {b}"),
            ProtocolError::RunLengthMismatch { declared, decoded } => write!(
                f,
                "Located runs sum to {decoded} answers but {declared} were declared"
            ),
            ProtocolError::AnswerCountTooLarge { declared, limit } => write!(
                f,
                "Located declares {declared} answers but no request can ask for more than {limit}"
            ),
            ProtocolError::BadMessageEncoding => write!(f, "error message is not UTF-8"),
            ProtocolError::Op(e) => write!(f, "bad surgery op: {e}"),
            ProtocolError::UnknownChannelTag(b) => write!(f, "unknown channel atom tag {b}"),
            ProtocolError::NestedChannelCompose => {
                write!(f, "Composed channel atom nested inside another Composed")
            }
            ProtocolError::InvalidName(reason) => {
                write!(f, "invalid network name: {reason}")
            }
        }
    }
}

impl std::error::Error for ProtocolError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ProtocolError::Op(e) => Some(e),
            _ => None,
        }
    }
}

impl From<WireError> for ProtocolError {
    fn from(e: WireError) -> Self {
        ProtocolError::Op(e)
    }
}

/// Bounded sequential reader over a frame payload.
struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Cursor { bytes, pos: 0 }
    }

    fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    fn take(&mut self, n: usize, what: &'static str) -> Result<&'a [u8], ProtocolError> {
        if self.remaining() < n {
            return Err(ProtocolError::Truncated {
                what,
                missing: n - self.remaining(),
            });
        }
        let s = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self, what: &'static str) -> Result<u8, ProtocolError> {
        Ok(self.take(1, what)?[0])
    }

    fn u16(&mut self, what: &'static str) -> Result<u16, ProtocolError> {
        Ok(u16::from_le_bytes(
            self.take(2, what)?.try_into().expect("2"),
        ))
    }

    fn u32(&mut self, what: &'static str) -> Result<u32, ProtocolError> {
        Ok(u32::from_le_bytes(
            self.take(4, what)?.try_into().expect("4"),
        ))
    }

    fn u64(&mut self, what: &'static str) -> Result<u64, ProtocolError> {
        Ok(u64::from_le_bytes(
            self.take(8, what)?.try_into().expect("8"),
        ))
    }

    fn f64(&mut self, what: &'static str) -> Result<f64, ProtocolError> {
        Ok(f64::from_le_bytes(
            self.take(8, what)?.try_into().expect("8"),
        ))
    }

    fn point(&mut self, what: &'static str) -> Result<Point, ProtocolError> {
        Ok(Point::new(self.f64(what)?, self.f64(what)?))
    }

    /// A declared element count, pre-validated against the bytes left:
    /// `count · elem_size` must fit in what remains, so adversarial
    /// counts can never drive an allocation past the frame itself.
    fn count(&mut self, elem_size: usize, what: &'static str) -> Result<usize, ProtocolError> {
        let n = self.u32(what)? as usize;
        let need = n.saturating_mul(elem_size);
        if need > self.remaining() {
            return Err(ProtocolError::Truncated {
                what,
                missing: need - self.remaining(),
            });
        }
        Ok(n)
    }

    fn finish(&self) -> Result<(), ProtocolError> {
        if self.remaining() != 0 {
            return Err(ProtocolError::Trailing {
                extra: self.remaining(),
            });
        }
        Ok(())
    }
}

fn push_point(buf: &mut Vec<u8>, p: Point) {
    buf.extend_from_slice(&p.x.to_le_bytes());
    buf.extend_from_slice(&p.y.to_le_bytes());
}

/// Pixel cap on a heatmap grid (16 Mi pixels — a 4096×4096 raster).
///
/// This bounds the *dense* cost of a heatmap on both sides of the wire
/// — the raster the session rasterises and the `Located` vector the
/// client materialises on decode — independently of how small the
/// run-length encoding turns out. Whether the *encoded* response fits a
/// frame is a separate check the session makes against the real run
/// count ([`run_count`]): a near-uniform 2048² map is a few KB of runs
/// and round-trips fine, while a worst-case checkerboard of the same
/// size is refused as oversized only because it genuinely is.
pub const MAX_HEATMAP_PIXELS: u64 = 16 * 1024 * 1024;

/// Run-length encodes a `Located` stream (shared by `Located` and
/// `Heatmap` responses): each run is a kind byte, a station id, and a
/// length — 9 bytes for any stretch of identical answers.
fn push_runs(buf: &mut Vec<u8>, answers: &[Located]) {
    let mut i = 0;
    while i < answers.len() {
        let mut j = i + 1;
        while j < answers.len() && answers[j] == answers[i] {
            j += 1;
        }
        let (kind, station) = match answers[i] {
            Located::Reception(s) => (RUN_RECEPTION, s.0 as u32),
            Located::Uncertain(s) => (RUN_UNCERTAIN, s.0 as u32),
            Located::Silent => (RUN_SILENT, 0),
        };
        buf.push(kind);
        buf.extend_from_slice(&station.to_le_bytes());
        buf.extend_from_slice(&((j - i) as u32).to_le_bytes());
        i = j;
    }
}

/// The number of runs [`push_runs`] would emit for `answers` — the
/// exact encoded length is `9 × run_count` bytes. Lets the session
/// check a response's real wire size against the frame limit *before*
/// encoding (and refuse with a typed error instead of dying on
/// `send_frame`'s length check).
pub(crate) fn run_count(answers: &[Located]) -> usize {
    let mut runs = 0;
    let mut i = 0;
    while i < answers.len() {
        let mut j = i + 1;
        while j < answers.len() && answers[j] == answers[i] {
            j += 1;
        }
        runs += 1;
        i = j;
    }
    runs
}

/// Decodes exactly `total` run-length encoded answers. The caller must
/// have bounded `total` already (run-length coding sidesteps the
/// bytes-present bound `Cursor::count` gives other collections).
fn decode_runs(c: &mut Cursor<'_>, total: u64) -> Result<Vec<Located>, ProtocolError> {
    let mut answers = Vec::new();
    let mut decoded: u64 = 0;
    while decoded < total {
        let kind = c.u8("run kind")?;
        let station = c.u32("run station")? as usize;
        let len = c.u32("run length")? as u64;
        let answer = match kind {
            RUN_RECEPTION => Located::Reception(StationId(station)),
            RUN_UNCERTAIN => Located::Uncertain(StationId(station)),
            RUN_SILENT => Located::Silent,
            other => return Err(ProtocolError::UnknownRunKind(other)),
        };
        decoded = decoded.saturating_add(len);
        if len == 0 || decoded > total {
            return Err(ProtocolError::RunLengthMismatch {
                declared: total,
                decoded,
            });
        }
        answers.extend(std::iter::repeat_n(answer, len as usize));
    }
    Ok(answers)
}

/// Encodes a registry name: a length byte, then that many UTF-8 bytes.
/// Callers (the typed [`Request`] constructors) are trusted to stay
/// within [`MAX_NETWORK_NAME_LEN`]; longer names are truncated at a
/// char boundary rather than silently corrupting the frame.
fn push_name(buf: &mut Vec<u8>, name: &str) {
    let mut len = name.len().min(MAX_NETWORK_NAME_LEN);
    while !name.is_char_boundary(len) {
        len -= 1;
    }
    buf.push(len as u8);
    buf.extend_from_slice(&name.as_bytes()[..len]);
}

fn push_spec(buf: &mut Vec<u8>, network: &NetworkSpec) {
    buf.extend_from_slice(&network.noise.to_le_bytes());
    buf.extend_from_slice(&network.beta.to_le_bytes());
    buf.extend_from_slice(&network.alpha.to_le_bytes());
    buf.extend_from_slice(&(network.stations.len() as u32).to_le_bytes());
    for (p, power) in &network.stations {
        push_point(buf, *p);
        buf.extend_from_slice(&power.to_le_bytes());
    }
}

fn decode_name(c: &mut Cursor<'_>) -> Result<String, ProtocolError> {
    let len = c.u8("name length")? as usize;
    if len == 0 {
        return Err(ProtocolError::InvalidName("empty name"));
    }
    let raw = c.take(len, "name bytes")?;
    std::str::from_utf8(raw)
        .map(str::to_owned)
        .map_err(|_| ProtocolError::InvalidName("not UTF-8"))
}

fn decode_spec(c: &mut Cursor<'_>) -> Result<NetworkSpec, ProtocolError> {
    let noise = c.f64("noise")?;
    let beta = c.f64("beta")?;
    let alpha = c.f64("alpha")?;
    let n = c.count(24, "station count")?;
    let mut stations = Vec::with_capacity(n);
    for _ in 0..n {
        let p = c.point("station position")?;
        let power = c.f64("station power")?;
        stations.push((p, power));
    }
    Ok(NetworkSpec {
        noise,
        beta,
        alpha,
        stations,
    })
}

/// Encodes one channel atom (recursing once for `Composed`): a tag
/// byte, then the atom's parameters.
fn encode_channel(buf: &mut Vec<u8>, model: &ChannelModel) {
    match model {
        ChannelModel::Deterministic => buf.push(CHANNEL_DETERMINISTIC),
        ChannelModel::LogNormalShadowing { sigma_db } => {
            buf.push(CHANNEL_LOG_NORMAL);
            buf.extend_from_slice(&sigma_db.to_le_bytes());
        }
        ChannelModel::RayleighFading => buf.push(CHANNEL_RAYLEIGH),
        ChannelModel::FixedGains { gains } => {
            buf.push(CHANNEL_FIXED_GAINS);
            buf.extend_from_slice(&(gains.len() as u32).to_le_bytes());
            for g in gains {
                buf.extend_from_slice(&g.to_le_bytes());
            }
        }
        ChannelModel::Composed(atoms) => {
            buf.push(CHANNEL_COMPOSED);
            buf.push(atoms.len() as u8);
            for atom in atoms {
                encode_channel(buf, atom);
            }
        }
    }
}

/// Decodes one channel atom. The wire grammar mirrors
/// [`ChannelModel::validate`]'s structural rule — `Composed` cannot
/// nest — so `allow_compose` is false while inside one; semantic
/// validation (finite `σ`, gain count vs the bound network, atom
/// limits) stays with the engine, surfacing as
/// [`ErrorCode::InvalidChannel`] rather than a decode failure.
fn decode_channel(c: &mut Cursor<'_>, allow_compose: bool) -> Result<ChannelModel, ProtocolError> {
    let tag = c.u8("channel atom tag")?;
    Ok(match tag {
        CHANNEL_DETERMINISTIC => ChannelModel::Deterministic,
        CHANNEL_LOG_NORMAL => ChannelModel::LogNormalShadowing {
            sigma_db: c.f64("shadowing sigma")?,
        },
        CHANNEL_RAYLEIGH => ChannelModel::RayleighFading,
        CHANNEL_FIXED_GAINS => {
            let n = c.count(8, "gain count")?;
            let mut gains = Vec::with_capacity(n);
            for _ in 0..n {
                gains.push(c.f64("gain value")?);
            }
            ChannelModel::FixedGains { gains }
        }
        CHANNEL_COMPOSED => {
            if !allow_compose {
                return Err(ProtocolError::NestedChannelCompose);
            }
            let n = c.u8("composed atom count")? as usize;
            let mut atoms = Vec::with_capacity(n.min(64));
            for _ in 0..n {
                atoms.push(decode_channel(c, false)?);
            }
            ChannelModel::Composed(atoms)
        }
        other => return Err(ProtocolError::UnknownChannelTag(other)),
    })
}

/// Encodes a request into a frame payload.
pub fn encode_request(req: &Request) -> Vec<u8> {
    let mut buf = Vec::new();
    match req {
        Request::Bind {
            backend,
            epsilon,
            network,
        } => {
            buf.push(TAG_BIND);
            buf.push(backend.to_wire());
            buf.extend_from_slice(&epsilon.to_le_bytes());
            push_spec(&mut buf, network);
        }
        Request::LocateBatch { points } => {
            buf.push(TAG_LOCATE_BATCH);
            buf.extend_from_slice(&(points.len() as u32).to_le_bytes());
            for p in points {
                push_point(&mut buf, *p);
            }
        }
        Request::SinrBatch { station, points } => {
            buf.push(TAG_SINR_BATCH);
            buf.extend_from_slice(&(station.0 as u32).to_le_bytes());
            buf.extend_from_slice(&(points.len() as u32).to_le_bytes());
            for p in points {
                push_point(&mut buf, *p);
            }
        }
        Request::Mutate {
            expected_revision,
            ops,
        } => {
            buf.push(TAG_MUTATE);
            buf.extend_from_slice(&expected_revision.to_le_bytes());
            buf.extend_from_slice(&(ops.len() as u32).to_le_bytes());
            for op in ops {
                op.encode_into(&mut buf);
            }
        }
        Request::ReceptionProbBatch {
            trials,
            seed,
            channel,
            points,
        } => {
            buf.push(TAG_RECEPTION_PROB_BATCH);
            buf.extend_from_slice(&trials.to_le_bytes());
            buf.extend_from_slice(&seed.to_le_bytes());
            encode_channel(&mut buf, channel);
            buf.extend_from_slice(&(points.len() as u32).to_le_bytes());
            for p in points {
                push_point(&mut buf, *p);
            }
        }
        Request::Register { name, network } => {
            buf.push(TAG_REGISTER);
            push_name(&mut buf, name);
            push_spec(&mut buf, network);
        }
        Request::Attach {
            name,
            backend,
            epsilon,
        } => {
            buf.push(TAG_ATTACH);
            push_name(&mut buf, name);
            buf.push(backend.to_wire());
            buf.extend_from_slice(&epsilon.to_le_bytes());
        }
        Request::SinrQuantilesBatch {
            station,
            trials,
            seed,
            channel,
            quantiles,
            points,
        } => {
            buf.push(TAG_SINR_QUANTILES_BATCH);
            buf.extend_from_slice(&(station.0 as u32).to_le_bytes());
            buf.extend_from_slice(&trials.to_le_bytes());
            buf.extend_from_slice(&seed.to_le_bytes());
            encode_channel(&mut buf, channel);
            buf.extend_from_slice(&(quantiles.len() as u32).to_le_bytes());
            for q in quantiles {
                buf.extend_from_slice(&q.to_le_bytes());
            }
            buf.extend_from_slice(&(points.len() as u32).to_le_bytes());
            for p in points {
                push_point(&mut buf, *p);
            }
        }
        Request::HeatmapBatch {
            min,
            max,
            width,
            height,
        } => {
            buf.push(TAG_HEATMAP_BATCH);
            push_point(&mut buf, *min);
            push_point(&mut buf, *max);
            buf.extend_from_slice(&width.to_le_bytes());
            buf.extend_from_slice(&height.to_le_bytes());
        }
        Request::Unregister { name } => {
            buf.push(TAG_UNREGISTER);
            push_name(&mut buf, name);
        }
    }
    buf
}

/// Decodes a frame payload as a request.
///
/// # Errors
///
/// A typed [`ProtocolError`]; never panics, never over-allocates.
pub fn decode_request(payload: &[u8]) -> Result<Request, ProtocolError> {
    let mut c = Cursor::new(payload);
    let tag = c.u8("frame tag").map_err(|_| ProtocolError::EmptyFrame)?;
    let req = match tag {
        TAG_BIND => {
            let backend_byte = c.u8("backend id")?;
            let backend = BackendId::from_wire(backend_byte)
                .ok_or(ProtocolError::UnknownBackend(backend_byte))?;
            let epsilon = c.f64("epsilon")?;
            let network = decode_spec(&mut c)?;
            Request::Bind {
                backend,
                epsilon,
                network,
            }
        }
        TAG_LOCATE_BATCH => {
            let n = c.count(16, "point count")?;
            let mut points = Vec::with_capacity(n);
            for _ in 0..n {
                points.push(c.point("query point")?);
            }
            Request::LocateBatch { points }
        }
        TAG_SINR_BATCH => {
            let station = StationId(c.u32("station id")? as usize);
            let n = c.count(16, "point count")?;
            let mut points = Vec::with_capacity(n);
            for _ in 0..n {
                points.push(c.point("sample point")?);
            }
            Request::SinrBatch { station, points }
        }
        TAG_MUTATE => {
            let expected_revision = c.u64("expected revision")?;
            // Smallest op is 5 bytes (Remove).
            let n = c.count(5, "op count")?;
            // The count bounds wire bytes, not heap bytes: an in-memory
            // op is ~6× its smallest wire form, so a full pre-allocation
            // would let a 16 MiB frame pin ~100 MB before one op
            // decodes. Cap the *hint*; the vector still grows to any
            // honest op count.
            let mut ops = Vec::with_capacity(n.min(4096));
            for _ in 0..n {
                let (op, used) = SurgeryOp::decode(&c.bytes[c.pos..])?;
                c.pos += used;
                ops.push(op);
            }
            Request::Mutate {
                expected_revision,
                ops,
            }
        }
        TAG_RECEPTION_PROB_BATCH => {
            let trials = c.u32("trial count")?;
            let seed = c.u64("seed")?;
            let channel = decode_channel(&mut c, true)?;
            let n = c.count(16, "point count")?;
            let mut points = Vec::with_capacity(n);
            for _ in 0..n {
                points.push(c.point("query point")?);
            }
            Request::ReceptionProbBatch {
                trials,
                seed,
                channel,
                points,
            }
        }
        TAG_REGISTER => {
            let name = decode_name(&mut c)?;
            let network = decode_spec(&mut c)?;
            Request::Register { name, network }
        }
        TAG_ATTACH => {
            let name = decode_name(&mut c)?;
            let backend_byte = c.u8("backend id")?;
            let backend = BackendId::from_wire(backend_byte)
                .ok_or(ProtocolError::UnknownBackend(backend_byte))?;
            let epsilon = c.f64("epsilon")?;
            Request::Attach {
                name,
                backend,
                epsilon,
            }
        }
        TAG_SINR_QUANTILES_BATCH => {
            let station = StationId(c.u32("station id")? as usize);
            let trials = c.u32("trial count")?;
            let seed = c.u64("seed")?;
            let channel = decode_channel(&mut c, true)?;
            let nq = c.count(8, "quantile count")?;
            let mut quantiles = Vec::with_capacity(nq);
            for _ in 0..nq {
                quantiles.push(c.f64("quantile value")?);
            }
            let n = c.count(16, "point count")?;
            let mut points = Vec::with_capacity(n);
            for _ in 0..n {
                points.push(c.point("query point")?);
            }
            Request::SinrQuantilesBatch {
                station,
                trials,
                seed,
                channel,
                quantiles,
                points,
            }
        }
        TAG_HEATMAP_BATCH => {
            let min = c.point("window min")?;
            let max = c.point("window max")?;
            let width = c.u32("grid width")?;
            let height = c.u32("grid height")?;
            Request::HeatmapBatch {
                min,
                max,
                width,
                height,
            }
        }
        TAG_UNREGISTER => {
            let name = decode_name(&mut c)?;
            Request::Unregister { name }
        }
        other => return Err(ProtocolError::UnknownTag(other)),
    };
    c.finish()?;
    Ok(req)
}

/// Encodes a response into a frame payload. `Located` answers are
/// run-length encoded: long stretches of identical answers (the common
/// shape — zones are contiguous regions) compress to 9 bytes per run.
pub fn encode_response(resp: &Response) -> Vec<u8> {
    let mut buf = Vec::new();
    match resp {
        Response::Bound { revision, backend } => {
            buf.push(TAG_BOUND);
            buf.extend_from_slice(&revision.to_le_bytes());
            buf.push(backend.to_wire());
        }
        Response::Located { revision, answers } => {
            buf.push(TAG_LOCATED);
            buf.extend_from_slice(&revision.to_le_bytes());
            buf.extend_from_slice(&(answers.len() as u32).to_le_bytes());
            push_runs(&mut buf, answers);
        }
        Response::Sinrs { revision, values } => {
            buf.push(TAG_SINRS);
            buf.extend_from_slice(&revision.to_le_bytes());
            buf.extend_from_slice(&(values.len() as u32).to_le_bytes());
            for v in values {
                buf.extend_from_slice(&v.to_le_bytes());
            }
        }
        Response::Mutated { revision, applied } => {
            buf.push(TAG_MUTATED);
            buf.extend_from_slice(&revision.to_le_bytes());
            buf.extend_from_slice(&applied.to_le_bytes());
        }
        Response::ReceptionProbs { revision, values } => {
            buf.push(TAG_RECEPTION_PROBS);
            buf.extend_from_slice(&revision.to_le_bytes());
            buf.extend_from_slice(&(values.len() as u32).to_le_bytes());
            for v in values {
                buf.extend_from_slice(&v.to_le_bytes());
            }
        }
        Response::Registered { revision } => {
            buf.push(TAG_REGISTERED);
            buf.extend_from_slice(&revision.to_le_bytes());
        }
        Response::Attached { revision, backend } => {
            buf.push(TAG_ATTACHED);
            buf.extend_from_slice(&revision.to_le_bytes());
            buf.push(backend.to_wire());
        }
        Response::SinrQuantiles {
            revision,
            quantiles,
            values,
        } => {
            buf.push(TAG_SINR_QUANTILES);
            buf.extend_from_slice(&revision.to_le_bytes());
            buf.extend_from_slice(&quantiles.to_le_bytes());
            buf.extend_from_slice(&(values.len() as u32).to_le_bytes());
            for v in values {
                buf.extend_from_slice(&v.to_le_bytes());
            }
        }
        Response::Heatmap {
            revision,
            width,
            height,
            cells_evaluated,
            cells,
        } => {
            buf.push(TAG_HEATMAP);
            buf.extend_from_slice(&revision.to_le_bytes());
            buf.extend_from_slice(&width.to_le_bytes());
            buf.extend_from_slice(&height.to_le_bytes());
            buf.extend_from_slice(&cells_evaluated.to_le_bytes());
            push_runs(&mut buf, cells);
        }
        Response::Unregistered => {
            buf.push(TAG_UNREGISTERED);
        }
        Response::Error { code, message } => {
            buf.push(TAG_ERROR);
            buf.push(code.to_wire());
            // Truncate oversized messages on a char boundary: cutting a
            // multi-byte character in half would make the frame fail
            // decode_response's UTF-8 check and lose the typed error.
            let mut len = message.len().min(u16::MAX as usize);
            while !message.is_char_boundary(len) {
                len -= 1;
            }
            buf.extend_from_slice(&(len as u16).to_le_bytes());
            buf.extend_from_slice(&message.as_bytes()[..len]);
        }
    }
    buf
}

/// Decodes a frame payload as a response.
///
/// # Errors
///
/// A typed [`ProtocolError`]; never panics, never over-allocates.
pub fn decode_response(payload: &[u8]) -> Result<Response, ProtocolError> {
    let mut c = Cursor::new(payload);
    let tag = c.u8("frame tag").map_err(|_| ProtocolError::EmptyFrame)?;
    let resp = match tag {
        TAG_BOUND => {
            let revision = c.u64("revision")?;
            let backend_byte = c.u8("backend id")?;
            let backend = BackendId::from_wire(backend_byte)
                .ok_or(ProtocolError::UnknownBackend(backend_byte))?;
            Response::Bound { revision, backend }
        }
        TAG_LOCATED => {
            let revision = c.u64("revision")?;
            let total = c.u32("answer count")? as u64;
            // Run-length coding breaks the bytes-present bound every
            // other collection gets from `Cursor::count` (a 9-byte run
            // can claim 2³² answers), so cap the total explicitly: no
            // legal request fits more than MAX_FRAME_LEN/16 query
            // points, so no honest response answers more.
            let limit = (crate::transport::MAX_FRAME_LEN / 16) as u64;
            if total > limit {
                return Err(ProtocolError::AnswerCountTooLarge {
                    declared: total,
                    limit,
                });
            }
            let answers = decode_runs(&mut c, total)?;
            Response::Located { revision, answers }
        }
        TAG_SINRS => {
            let revision = c.u64("revision")?;
            let n = c.count(8, "value count")?;
            let mut values = Vec::with_capacity(n);
            for _ in 0..n {
                values.push(c.f64("sinr value")?);
            }
            Response::Sinrs { revision, values }
        }
        TAG_MUTATED => Response::Mutated {
            revision: c.u64("revision")?,
            applied: c.u32("applied count")?,
        },
        TAG_RECEPTION_PROBS => {
            let revision = c.u64("revision")?;
            let n = c.count(8, "probability count")?;
            let mut values = Vec::with_capacity(n);
            for _ in 0..n {
                values.push(c.f64("probability value")?);
            }
            Response::ReceptionProbs { revision, values }
        }
        TAG_REGISTERED => Response::Registered {
            revision: c.u64("revision")?,
        },
        TAG_ATTACHED => {
            let revision = c.u64("revision")?;
            let backend_byte = c.u8("backend id")?;
            let backend = BackendId::from_wire(backend_byte)
                .ok_or(ProtocolError::UnknownBackend(backend_byte))?;
            Response::Attached { revision, backend }
        }
        TAG_SINR_QUANTILES => {
            let revision = c.u64("revision")?;
            let quantiles = c.u32("quantile width")?;
            let n = c.count(8, "quantile value count")?;
            let mut values = Vec::with_capacity(n);
            for _ in 0..n {
                values.push(c.f64("quantile value")?);
            }
            Response::SinrQuantiles {
                revision,
                quantiles,
                values,
            }
        }
        TAG_HEATMAP => {
            let revision = c.u64("revision")?;
            let width = c.u32("grid width")?;
            let height = c.u32("grid height")?;
            let cells_evaluated = c.u64("cells evaluated")?;
            let total = width as u64 * height as u64;
            // Run-length coding breaks the bytes-present bound other
            // collections get from `Cursor::count` (one 9-byte run can
            // claim 2³² answers), so the dense answer count is capped
            // explicitly at the grid pixel cap the session enforces on
            // requests — the decode-side allocation bound.
            if total > MAX_HEATMAP_PIXELS {
                return Err(ProtocolError::AnswerCountTooLarge {
                    declared: total,
                    limit: MAX_HEATMAP_PIXELS,
                });
            }
            let cells = decode_runs(&mut c, total)?;
            Response::Heatmap {
                revision,
                width,
                height,
                cells_evaluated,
                cells,
            }
        }
        TAG_UNREGISTERED => Response::Unregistered,
        TAG_ERROR => {
            let code_byte = c.u8("error code")?;
            let code = ErrorCode::from_wire(code_byte)
                .ok_or(ProtocolError::UnknownErrorCode(code_byte))?;
            let len = c.u16("message length")? as usize;
            let raw = c.take(len, "message bytes")?;
            let message = std::str::from_utf8(raw)
                .map_err(|_| ProtocolError::BadMessageEncoding)?
                .to_owned();
            Response::Error { code, message }
        }
        other => return Err(ProtocolError::UnknownTag(other)),
    };
    c.finish()?;
    Ok(resp)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_spec() -> NetworkSpec {
        NetworkSpec {
            noise: 0.02,
            beta: 1.5,
            alpha: 2.0,
            stations: vec![
                (Point::new(0.0, 0.0), 1.0),
                (Point::new(4.0, 0.0), 1.0),
                (Point::new(1.0, 3.0), 2.5),
            ],
        }
    }

    #[test]
    fn requests_round_trip() {
        let reqs = [
            Request::Bind {
                backend: BackendId::VoronoiAssisted,
                epsilon: 0.3,
                network: sample_spec(),
            },
            Request::LocateBatch {
                points: vec![Point::new(0.5, -0.25), Point::new(1e9, -1e-9)],
            },
            Request::SinrBatch {
                station: StationId(2),
                points: vec![Point::new(0.0, 0.0)],
            },
            Request::Mutate {
                expected_revision: 41,
                ops: vec![
                    SurgeryOp::Add {
                        position: Point::new(2.0, 2.0),
                        power: 1.0,
                    },
                    SurgeryOp::Remove { id: StationId(1) },
                    SurgeryOp::Move {
                        id: StationId(0),
                        to: Point::new(-1.0, 0.5),
                    },
                    SurgeryOp::SetPower {
                        id: StationId(2),
                        power: 0.75,
                    },
                ],
            },
            Request::LocateBatch { points: vec![] },
            Request::ReceptionProbBatch {
                trials: 256,
                seed: 0xDEAD_BEEF_F00D_u64,
                channel: ChannelModel::Deterministic,
                points: vec![Point::new(0.25, -3.0)],
            },
            Request::ReceptionProbBatch {
                trials: 1,
                seed: 0,
                channel: ChannelModel::Composed(vec![
                    ChannelModel::LogNormalShadowing { sigma_db: 4.0 },
                    ChannelModel::RayleighFading,
                    ChannelModel::FixedGains {
                        gains: vec![0.5, 1.0, 2.0],
                    },
                ]),
                points: vec![],
            },
            Request::Register {
                name: "cell-grid/région-7".into(),
                network: sample_spec(),
            },
            Request::Attach {
                name: "cell-grid/région-7".into(),
                backend: BackendId::Qds,
                epsilon: 0.25,
            },
            Request::SinrQuantilesBatch {
                station: StationId(1),
                trials: 128,
                seed: 42,
                channel: ChannelModel::RayleighFading,
                quantiles: vec![0.1, 0.5, 0.9],
                points: vec![Point::new(0.5, -0.25), Point::new(-2.0, 3.0)],
            },
            Request::HeatmapBatch {
                min: Point::new(-3.5, -1.25),
                max: Point::new(4.0, 2.75),
                width: 640,
                height: 480,
            },
            Request::Unregister {
                name: "cell-grid/région-7".into(),
            },
        ];
        for req in &reqs {
            let bytes = encode_request(req);
            assert_eq!(&decode_request(&bytes).unwrap(), req, "for {req:?}");
        }
    }

    #[test]
    fn responses_round_trip() {
        let resps = [
            Response::Bound {
                revision: 7,
                backend: BackendId::Qds,
            },
            Response::Located {
                revision: 3,
                answers: vec![
                    Located::Reception(StationId(0)),
                    Located::Reception(StationId(0)),
                    Located::Silent,
                    Located::Uncertain(StationId(4)),
                    Located::Silent,
                ],
            },
            Response::Located {
                revision: 0,
                answers: vec![],
            },
            Response::Sinrs {
                revision: 9,
                values: vec![0.5, f64::INFINITY, 0.0],
            },
            Response::Mutated {
                revision: 12,
                applied: 4,
            },
            Response::ReceptionProbs {
                revision: 5,
                values: vec![0.0, 0.5, 1.0],
            },
            Response::Error {
                code: ErrorCode::RevisionMismatch,
                message: "expected 3, at 5".into(),
            },
            Response::Registered { revision: 0 },
            Response::Attached {
                revision: 17,
                backend: BackendId::SimdScan,
            },
            Response::SinrQuantiles {
                revision: 4,
                quantiles: 3,
                values: vec![0.0, 1.5, f64::INFINITY, 0.25, 0.5, 0.75],
            },
            Response::Error {
                code: ErrorCode::NameTaken,
                message: "grid".into(),
            },
            Response::Error {
                code: ErrorCode::UnknownNetwork,
                message: "no such network".into(),
            },
            Response::Heatmap {
                revision: 21,
                width: 3,
                height: 2,
                cells_evaluated: 4,
                cells: vec![
                    Located::Reception(StationId(1)),
                    Located::Reception(StationId(1)),
                    Located::Silent,
                    Located::Silent,
                    Located::Uncertain(StationId(0)),
                    Located::Reception(StationId(2)),
                ],
            },
            Response::Unregistered,
            Response::Error {
                code: ErrorCode::StillAttached,
                message: "2 session(s) are still attached".into(),
            },
        ];
        for resp in &resps {
            let bytes = encode_response(resp);
            assert_eq!(&decode_response(&bytes).unwrap(), resp, "for {resp:?}");
        }
    }

    #[test]
    fn oversized_error_messages_truncate_on_char_boundaries() {
        // 'é' is 2 bytes and every occurrence starts at an even offset,
        // so a blind cut at u16::MAX (odd) would split one in half and
        // the frame would fail the decoder's UTF-8 check.
        let resp = Response::Error {
            code: ErrorCode::Internal,
            message: "é".repeat(40_000),
        };
        let bytes = encode_response(&resp);
        match decode_response(&bytes).expect("truncated frame must still decode") {
            Response::Error { code, message } => {
                assert_eq!(code, ErrorCode::Internal);
                assert_eq!(message.len(), u16::MAX as usize - 1);
                assert!(message.chars().all(|c| c == 'é'));
            }
            other => panic!("expected Error, got {other:?}"),
        }
    }

    #[test]
    fn located_runs_compress() {
        let answers = vec![Located::Reception(StationId(3)); 10_000];
        let bytes = encode_response(&Response::Located {
            revision: 0,
            answers,
        });
        // tag + revision + count + one 9-byte run.
        assert_eq!(bytes.len(), 1 + 8 + 4 + 9);
    }

    #[test]
    fn run_count_predicts_encoded_heatmap_length() {
        // The session's pre-send size check relies on `run_count`
        // agreeing byte-for-byte with what `push_runs` will emit:
        // 25 header bytes + 9 per run.
        let mut cells = Vec::new();
        for k in 0..1000usize {
            let answer = match k % 3 {
                0 => Located::Reception(StationId(k % 7)),
                1 => Located::Silent,
                _ => Located::Uncertain(StationId(2)),
            };
            // Variable-length runs, including singletons.
            for _ in 0..(k % 4) + 1 {
                cells.push(answer);
            }
        }
        let runs = run_count(&cells);
        let bytes = encode_response(&Response::Heatmap {
            revision: 5,
            width: cells.len() as u32,
            height: 1,
            cells_evaluated: 0,
            cells: cells.clone(),
        });
        assert_eq!(bytes.len(), 25 + 9 * runs);
        assert_eq!(run_count(&[]), 0);
        assert_eq!(run_count(&vec![Located::Silent; 10_000]), 1);
    }

    #[test]
    fn malformed_payloads_yield_typed_errors() {
        assert_eq!(decode_request(&[]), Err(ProtocolError::EmptyFrame));
        assert_eq!(
            decode_request(&[0x7F]),
            Err(ProtocolError::UnknownTag(0x7F))
        );
        // Bind with an unknown backend id.
        assert_eq!(
            decode_request(&[TAG_BIND, 200]),
            Err(ProtocolError::UnknownBackend(200))
        );
        // LocateBatch whose count promises more points than the frame holds.
        let mut lying = vec![TAG_LOCATE_BATCH];
        lying.extend_from_slice(&(u32::MAX).to_le_bytes());
        assert!(matches!(
            decode_request(&lying),
            Err(ProtocolError::Truncated { .. })
        ));
        // Trailing garbage after a valid frame.
        let mut trailing = encode_request(&Request::LocateBatch { points: vec![] });
        trailing.push(0xAA);
        assert_eq!(
            decode_request(&trailing),
            Err(ProtocolError::Trailing { extra: 1 })
        );
        // Mutate with a bad op tag.
        let mut bad_op = vec![TAG_MUTATE];
        bad_op.extend_from_slice(&0u64.to_le_bytes());
        bad_op.extend_from_slice(&1u32.to_le_bytes());
        bad_op.extend_from_slice(&[99, 0, 0, 0, 0]);
        assert!(matches!(
            decode_request(&bad_op),
            Err(ProtocolError::Op(WireError::UnknownOpTag(99)))
        ));
        // A lying Located frame declaring ~4 billion answers in one
        // 9-byte run: must be rejected by the explicit answer cap
        // before any allocation happens (run-length coding sidesteps
        // the bytes-present bound, so this is its own check).
        let mut lying_rle = vec![TAG_LOCATED];
        lying_rle.extend_from_slice(&0u64.to_le_bytes());
        lying_rle.extend_from_slice(&u32::MAX.to_le_bytes());
        lying_rle.push(RUN_SILENT);
        lying_rle.extend_from_slice(&0u32.to_le_bytes());
        lying_rle.extend_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            decode_response(&lying_rle),
            Err(ProtocolError::AnswerCountTooLarge { declared, .. }) if declared == u32::MAX as u64
        ));
        // Located runs overshooting their declared total.
        let mut overshoot = vec![TAG_LOCATED];
        overshoot.extend_from_slice(&0u64.to_le_bytes());
        overshoot.extend_from_slice(&2u32.to_le_bytes());
        overshoot.push(RUN_SILENT);
        overshoot.extend_from_slice(&0u32.to_le_bytes());
        overshoot.extend_from_slice(&3u32.to_le_bytes());
        assert!(matches!(
            decode_response(&overshoot),
            Err(ProtocolError::RunLengthMismatch { .. })
        ));
        // A lying Heatmap frame declaring a ~16-terapixel grid in one
        // run: rejected by the explicit raster cap (same rationale as
        // the Located cap — RLE sidesteps the bytes-present bound).
        let mut lying_heatmap = vec![TAG_HEATMAP];
        lying_heatmap.extend_from_slice(&0u64.to_le_bytes());
        lying_heatmap.extend_from_slice(&u32::MAX.to_le_bytes());
        lying_heatmap.extend_from_slice(&4096u32.to_le_bytes());
        lying_heatmap.extend_from_slice(&0u64.to_le_bytes());
        lying_heatmap.push(RUN_SILENT);
        lying_heatmap.extend_from_slice(&0u32.to_le_bytes());
        lying_heatmap.extend_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            decode_response(&lying_heatmap),
            Err(ProtocolError::AnswerCountTooLarge { declared, .. })
                if declared == u32::MAX as u64 * 4096
        ));
        // Heatmap runs not covering the full grid.
        let mut short_grid = vec![TAG_HEATMAP];
        short_grid.extend_from_slice(&0u64.to_le_bytes());
        short_grid.extend_from_slice(&2u32.to_le_bytes());
        short_grid.extend_from_slice(&2u32.to_le_bytes());
        short_grid.extend_from_slice(&0u64.to_le_bytes());
        short_grid.push(RUN_SILENT);
        short_grid.extend_from_slice(&0u32.to_le_bytes());
        short_grid.extend_from_slice(&3u32.to_le_bytes());
        assert!(matches!(
            decode_response(&short_grid),
            Err(ProtocolError::Truncated { .. }) | Err(ProtocolError::RunLengthMismatch { .. })
        ));
        // Truncated HeatmapBatch request (window but no grid dims).
        let mut short_heatmap = vec![TAG_HEATMAP_BATCH];
        for v in [-1.0f64, -1.0, 1.0, 1.0] {
            short_heatmap.extend_from_slice(&v.to_le_bytes());
        }
        assert!(matches!(
            decode_request(&short_heatmap),
            Err(ProtocolError::Truncated { .. })
        ));
        // ReceptionProbBatch with an unknown channel atom tag.
        let mut bad_channel = vec![TAG_RECEPTION_PROB_BATCH];
        bad_channel.extend_from_slice(&8u32.to_le_bytes());
        bad_channel.extend_from_slice(&0u64.to_le_bytes());
        bad_channel.push(77);
        assert_eq!(
            decode_request(&bad_channel),
            Err(ProtocolError::UnknownChannelTag(77))
        );
        // Truncated shadowing sigma.
        let mut short_sigma = vec![TAG_RECEPTION_PROB_BATCH];
        short_sigma.extend_from_slice(&8u32.to_le_bytes());
        short_sigma.extend_from_slice(&0u64.to_le_bytes());
        short_sigma.push(CHANNEL_LOG_NORMAL);
        short_sigma.extend_from_slice(&[0, 0, 0]);
        assert!(matches!(
            decode_request(&short_sigma),
            Err(ProtocolError::Truncated {
                what: "shadowing sigma",
                ..
            })
        ));
        // FixedGains whose count promises more gains than the frame holds.
        let mut lying_gains = vec![TAG_RECEPTION_PROB_BATCH];
        lying_gains.extend_from_slice(&8u32.to_le_bytes());
        lying_gains.extend_from_slice(&0u64.to_le_bytes());
        lying_gains.push(CHANNEL_FIXED_GAINS);
        lying_gains.extend_from_slice(&(u32::MAX).to_le_bytes());
        assert!(matches!(
            decode_request(&lying_gains),
            Err(ProtocolError::Truncated {
                what: "gain count",
                ..
            })
        ));
        // Composed nested inside Composed: structurally invalid, the
        // grammar rejects it rather than decode an always-invalid value.
        let mut nested = vec![TAG_RECEPTION_PROB_BATCH];
        nested.extend_from_slice(&8u32.to_le_bytes());
        nested.extend_from_slice(&0u64.to_le_bytes());
        nested.push(CHANNEL_COMPOSED);
        nested.push(1);
        nested.push(CHANNEL_COMPOSED);
        nested.push(0);
        nested.extend_from_slice(&0u32.to_le_bytes());
        assert_eq!(
            decode_request(&nested),
            Err(ProtocolError::NestedChannelCompose)
        );
        // Register with an empty name.
        let mut empty_name = vec![TAG_REGISTER];
        empty_name.push(0);
        assert_eq!(
            decode_request(&empty_name),
            Err(ProtocolError::InvalidName("empty name"))
        );
        // Attach with a non-UTF-8 name.
        let mut bad_name = vec![TAG_ATTACH];
        bad_name.push(2);
        bad_name.extend_from_slice(&[0xFF, 0xFE]);
        assert_eq!(
            decode_request(&bad_name),
            Err(ProtocolError::InvalidName("not UTF-8"))
        );
        // Attach whose name length byte promises more bytes than exist.
        let mut short_name = vec![TAG_ATTACH];
        short_name.push(10);
        short_name.extend_from_slice(b"abc");
        assert!(matches!(
            decode_request(&short_name),
            Err(ProtocolError::Truncated {
                what: "name bytes",
                ..
            })
        ));
        // SinrQuantilesBatch whose quantile count promises more values
        // than the frame holds.
        let mut lying_q = vec![TAG_SINR_QUANTILES_BATCH];
        lying_q.extend_from_slice(&0u32.to_le_bytes());
        lying_q.extend_from_slice(&8u32.to_le_bytes());
        lying_q.extend_from_slice(&0u64.to_le_bytes());
        lying_q.push(CHANNEL_DETERMINISTIC);
        lying_q.extend_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            decode_request(&lying_q),
            Err(ProtocolError::Truncated {
                what: "quantile count",
                ..
            })
        ));
    }

    #[test]
    fn oversized_names_truncate_on_char_boundaries() {
        // 'é' is 2 bytes; MAX_NETWORK_NAME_LEN is odd, so the blind cut
        // would split one in half.
        let req = Request::Register {
            name: "é".repeat(200),
            network: sample_spec(),
        };
        match decode_request(&encode_request(&req)).unwrap() {
            Request::Register { name, .. } => {
                assert_eq!(name.len(), MAX_NETWORK_NAME_LEN - 1);
                assert!(name.chars().all(|c| c == 'é'));
            }
            other => panic!("expected Register, got {other:?}"),
        }
    }

    #[test]
    fn backend_and_error_code_wire_bytes_are_stable() {
        for id in BackendId::ALL {
            assert_eq!(BackendId::from_wire(id.to_wire()), Some(id));
            assert_eq!(BackendId::from_name(id.name()), Some(id));
        }
        assert_eq!(BackendId::from_wire(99), None);
        for code in ErrorCode::ALL {
            assert_eq!(ErrorCode::from_wire(code.to_wire()), Some(code));
        }
        assert_eq!(ErrorCode::from_wire(0), None);
    }

    #[test]
    fn network_spec_round_trips_through_build() {
        let spec = sample_spec();
        let net = spec.build().unwrap();
        assert_eq!(NetworkSpec::of(&net), spec);
        // Invalid specs surface the model's own validation.
        let bad = NetworkSpec {
            beta: -1.0,
            ..sample_spec()
        };
        assert!(bad.build().is_err());
    }
}
