//! The client half of the protocol: typed request/response round trips
//! over any [`Transport`].
//!
//! [`Client`] is deliberately thin — one method per request frame, each
//! returning the revision stamped on the response so callers can fence
//! their own mirrors (the e2e differential suite compares server
//! answers against a local [`sinr_core::ExactScan`] *at the same
//! revision*; the revision plumbing is what makes that comparison
//! well-defined under concurrent mutation).
//!
//! [`serve_in_process`] wires a client straight to a session loop over
//! the in-process [`PipeTransport`] — the loopback-free path used by
//! tests and the `server_throughput` bench to measure protocol cost
//! without kernel sockets.

use crate::protocol::{
    decode_response, encode_request, BackendId, ErrorCode, NetworkSpec, ProtocolError, Request,
    Response,
};
use crate::session::serve_session;
use crate::transport::{duplex, PipeTransport, RecvError, TcpTransport, Transport};
use sinr_core::{ChannelModel, Located, Network, StationId, SurgeryOp};
use sinr_geometry::Point;
use std::io;
use std::net::{TcpStream, ToSocketAddrs};

/// Why a client call failed.
#[derive(Debug)]
pub enum ClientError {
    /// The transport failed sending.
    Io(io::Error),
    /// The transport failed receiving.
    Recv(RecvError),
    /// The server's response did not decode.
    Protocol(ProtocolError),
    /// The server answered with a typed error frame.
    Server {
        /// The error code.
        code: ErrorCode,
        /// The server's message.
        message: String,
    },
    /// The server closed the connection instead of answering.
    ConnectionClosed,
    /// The server answered with the wrong response type for the
    /// request.
    UnexpectedResponse(&'static str),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "send failed: {e}"),
            ClientError::Recv(e) => write!(f, "receive failed: {e}"),
            ClientError::Protocol(e) => write!(f, "undecodable response: {e}"),
            ClientError::Server { code, message } => {
                write!(f, "server error {code}: {message}")
            }
            ClientError::ConnectionClosed => write!(f, "server closed the connection"),
            ClientError::UnexpectedResponse(what) => {
                write!(f, "unexpected response type (wanted {what})")
            }
        }
    }
}

impl std::error::Error for ClientError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ClientError::Io(e) => Some(e),
            ClientError::Recv(e) => Some(e),
            ClientError::Protocol(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<RecvError> for ClientError {
    fn from(e: RecvError) -> Self {
        ClientError::Recv(e)
    }
}

impl From<ProtocolError> for ClientError {
    fn from(e: ProtocolError) -> Self {
        ClientError::Protocol(e)
    }
}

/// Default cap on unanswered request bytes a pipelined stream keeps in
/// flight ([`Client::locate_batches_pipelined`]): conservative against
/// default TCP socket buffering, so a blocking client can never wedge
/// against a session blocked writing responses (see the method docs
/// for the argument). 64 KiB.
pub const PIPELINE_REQUEST_BUDGET: usize = 64 * 1024;

/// Encoded size of a `LocateBatch` frame payload: tag, count, and 16
/// bytes per point (see the crate docs' frame table).
fn locate_wire_size(points: &[Point]) -> usize {
    5 + 16 * points.len()
}

/// A connected protocol client.
#[derive(Debug)]
pub struct Client<T: Transport> {
    transport: T,
}

impl Client<TcpTransport> {
    /// Connects over TCP.
    ///
    /// # Errors
    ///
    /// Any [`io::Error`] from [`TcpStream::connect`].
    pub fn connect<A: ToSocketAddrs>(addr: A) -> io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        // See the server side: whole-frame writes + request/response
        // round trips make Nagle pure latency.
        let _ = stream.set_nodelay(true);
        Ok(Client::new(TcpTransport::new(stream)))
    }
}

impl<T: Transport> Client<T> {
    /// Wraps an already-connected transport.
    pub fn new(transport: T) -> Self {
        Client { transport }
    }

    /// Binds the session: ships `net` and the backend choice, returns
    /// the server-side starting revision.
    ///
    /// # Errors
    ///
    /// [`ClientError::Server`] with [`ErrorCode::AlreadyBound`] /
    /// [`ErrorCode::InvalidNetwork`] / [`ErrorCode::BackendBuild`], or
    /// any transport failure.
    pub fn bind_network(
        &mut self,
        backend: BackendId,
        epsilon: f64,
        net: &Network,
    ) -> Result<u64, ClientError> {
        match self.roundtrip(&Request::Bind {
            backend,
            epsilon,
            network: NetworkSpec::of(net),
        })? {
            Response::Bound { revision, .. } => Ok(revision),
            other => Err(unexpected(other, "Bound")),
        }
    }

    /// Streams one batch of point-location queries; returns the
    /// revision the answers are valid for and one answer per point.
    ///
    /// # Errors
    ///
    /// [`ClientError::Server`] (e.g. [`ErrorCode::NotBound`]) or any
    /// transport failure.
    pub fn locate_batch(&mut self, points: &[Point]) -> Result<(u64, Vec<Located>), ClientError> {
        match self.roundtrip(&Request::LocateBatch {
            points: points.to_vec(),
        })? {
            Response::Located { revision, answers } => Ok((revision, answers)),
            other => Err(unexpected(other, "Located")),
        }
    }

    /// Sends one `LocateBatch` frame **without waiting for the
    /// response** — the pipelined half of [`Client::locate_batch`].
    /// Pair each send with one later [`Client::recv_located`]; the
    /// session loop answers strictly in request order, so responses
    /// arrive in send order (see the crate docs' *Pipelining* section).
    ///
    /// # Errors
    ///
    /// Any transport send failure.
    pub fn send_locate_batch(&mut self, points: &[Point]) -> Result<(), ClientError> {
        Ok(self
            .transport
            .send_frame(&encode_request(&Request::LocateBatch {
                points: points.to_vec(),
            }))?)
    }

    /// Receives one `Located` response for an earlier
    /// [`Client::send_locate_batch`].
    ///
    /// # Errors
    ///
    /// [`ClientError::Server`], transport failures, or
    /// [`ClientError::UnexpectedResponse`] if the pairing discipline
    /// was violated.
    pub fn recv_located(&mut self) -> Result<(u64, Vec<Located>), ClientError> {
        match self.recv()? {
            Response::Located { revision, answers } => Ok((revision, answers)),
            other => Err(unexpected(other, "Located")),
        }
    }

    /// Pipelined point location: streams every burst with up to
    /// `in_flight` request frames outstanding before the first response
    /// is read, keeping the server's tiled batch executor fed while
    /// later bursts are still in transit. With `in_flight == 1` this
    /// degenerates to the request/response loop of
    /// [`Client::locate_batch`]; answers are identical either way
    /// (pinned by the e2e differential suite) — only the idle time
    /// between bursts changes.
    ///
    /// Besides the frame-count window, outstanding *request bytes* are
    /// capped at [`PIPELINE_REQUEST_BUDGET`] — the deadlock guard for
    /// blocking transports: a client that keeps writing requests while
    /// the single-threaded session is blocked writing a response the
    /// client has not read can wedge both sides once the socket
    /// buffers in both directions fill. Keeping unanswered request
    /// bytes within what the transport is guaranteed to buffer means
    /// every send completes without the server having to read, so the
    /// client always reaches its next `recv` and drains the responses
    /// that unblock the server. For very large bursts the budget
    /// degrades the window toward lock-step (which is safe for frames
    /// of any size); on transports with ample or unbounded buffering
    /// (the in-process pipe) use
    /// [`Client::locate_batches_pipelined_with_budget`] to widen it.
    ///
    /// Returns one `(revision, answers)` per burst, in burst order.
    ///
    /// # Panics
    ///
    /// Panics if `in_flight == 0`.
    ///
    /// # Errors
    ///
    /// As [`Client::locate_batch`]; on any error the pipeline is
    /// abandoned mid-stream (the session itself stays healthy — the
    /// remaining responses are simply unread and the transport should
    /// be dropped or drained by the caller).
    pub fn locate_batches_pipelined(
        &mut self,
        bursts: &[&[Point]],
        in_flight: usize,
    ) -> Result<Vec<(u64, Vec<Located>)>, ClientError> {
        self.locate_batches_pipelined_with_budget(bursts, in_flight, PIPELINE_REQUEST_BUDGET)
    }

    /// [`Client::locate_batches_pipelined`] with an explicit
    /// outstanding-request byte budget. Safe to raise only when the
    /// transport path is known to buffer at least `budget` request
    /// bytes while the peer is not reading — true for the in-process
    /// [`PipeTransport`] (unbounded queues) and for TCP stacks
    /// configured with correspondingly large send+receive buffers.
    ///
    /// # Panics
    ///
    /// Panics if `in_flight == 0`.
    ///
    /// # Errors
    ///
    /// As [`Client::locate_batches_pipelined`].
    pub fn locate_batches_pipelined_with_budget(
        &mut self,
        bursts: &[&[Point]],
        in_flight: usize,
        budget: usize,
    ) -> Result<Vec<(u64, Vec<Located>)>, ClientError> {
        assert!(
            in_flight > 0,
            "a pipeline needs at least one frame in flight"
        );
        let mut results = Vec::with_capacity(bursts.len());
        let mut pending: std::collections::VecDeque<usize> = std::collections::VecDeque::new();
        let mut outstanding = 0usize;
        let mut sent = 0usize;
        while results.len() < bursts.len() {
            // Fill the window as far as the frame count and the byte
            // budget allow; with nothing outstanding a frame of any
            // size may go (plain request/response is always safe).
            while sent < bursts.len() && pending.len() < in_flight {
                let size = locate_wire_size(bursts[sent]);
                if !pending.is_empty() && outstanding + size > budget {
                    break;
                }
                self.send_locate_batch(bursts[sent])?;
                outstanding += size;
                pending.push_back(size);
                sent += 1;
            }
            results.push(self.recv_located()?);
            let answered = pending
                .pop_front()
                .expect("every response matches a pending request");
            outstanding -= answered;
        }
        Ok(results)
    }

    /// Streams one batch of SINR samples for `station`.
    ///
    /// # Errors
    ///
    /// [`ClientError::Server`] (e.g. [`ErrorCode::StationOutOfRange`])
    /// or any transport failure.
    pub fn sinr_batch(
        &mut self,
        station: StationId,
        points: &[Point],
    ) -> Result<(u64, Vec<f64>), ClientError> {
        match self.roundtrip(&Request::SinrBatch {
            station,
            points: points.to_vec(),
        })? {
            Response::Sinrs { revision, values } => Ok((revision, values)),
            other => Err(unexpected(other, "Sinrs")),
        }
    }

    /// Applies a timestep of surgery ops, revision-fenced at
    /// `expected_revision`; returns the network's revision afterwards.
    ///
    /// # Errors
    ///
    /// [`ClientError::Server`] with [`ErrorCode::RevisionMismatch`]
    /// (nothing applied) or [`ErrorCode::Surgery`] (prefix applied —
    /// the message names the failing op), or any transport failure.
    pub fn mutate(
        &mut self,
        expected_revision: u64,
        ops: &[SurgeryOp],
    ) -> Result<u64, ClientError> {
        match self.roundtrip(&Request::Mutate {
            expected_revision,
            ops: ops.to_vec(),
        })? {
            Response::Mutated { revision, .. } => Ok(revision),
            other => Err(unexpected(other, "Mutated")),
        }
    }

    /// Streams one batch of seeded Monte-Carlo reception-probability
    /// queries under `channel`; returns the revision the probabilities
    /// are valid for and one probability per point. Replayable: the
    /// same `(trials, seed, channel, points)` at the same revision
    /// answers bit-identically (the e2e suite pins server answers
    /// against a fresh local engine).
    ///
    /// # Errors
    ///
    /// [`ClientError::Server`] with [`ErrorCode::ChannelUnsupported`]
    /// (the session is then **unbound**) or
    /// [`ErrorCode::InvalidChannel`] / [`ErrorCode::Stale`]
    /// (per-request), or any transport failure.
    pub fn reception_prob_batch(
        &mut self,
        trials: u32,
        seed: u64,
        channel: &ChannelModel,
        points: &[Point],
    ) -> Result<(u64, Vec<f64>), ClientError> {
        match self.roundtrip(&Request::ReceptionProbBatch {
            trials,
            seed,
            channel: channel.clone(),
            points: points.to_vec(),
        })? {
            Response::ReceptionProbs { revision, values } => Ok((revision, values)),
            other => Err(unexpected(other, "ReceptionProbs")),
        }
    }

    /// Publishes `net` under a server-wide `name` so any session on
    /// this server can [`Client::attach`] to it; returns the registered
    /// network's starting revision. Does **not** bind or attach the
    /// registering session.
    ///
    /// # Errors
    ///
    /// [`ClientError::Server`] with [`ErrorCode::NameTaken`] /
    /// [`ErrorCode::InvalidNetwork`], or any transport failure.
    pub fn register_network(&mut self, name: &str, net: &Network) -> Result<u64, ClientError> {
        match self.roundtrip(&Request::Register {
            name: name.to_owned(),
            network: NetworkSpec::of(net),
        })? {
            Response::Registered { revision } => Ok(revision),
            other => Err(unexpected(other, "Registered")),
        }
    }

    /// Attaches this session to the network registered under `name`:
    /// queries are served from the engine snapshot shared with every
    /// other session attached with the same `backend` and `epsilon`,
    /// and `Mutate` publishes a new snapshot all of them observe.
    /// Returns the revision of the snapshot this session will see next.
    ///
    /// # Errors
    ///
    /// [`ClientError::Server`] with [`ErrorCode::UnknownNetwork`] /
    /// [`ErrorCode::AlreadyBound`] / [`ErrorCode::BackendBuild`], or
    /// any transport failure.
    pub fn attach(
        &mut self,
        name: &str,
        backend: BackendId,
        epsilon: f64,
    ) -> Result<u64, ClientError> {
        match self.roundtrip(&Request::Attach {
            name: name.to_owned(),
            backend,
            epsilon,
        })? {
            Response::Attached { revision, .. } => Ok(revision),
            other => Err(unexpected(other, "Attached")),
        }
    }

    /// Streams one batch of seeded Monte-Carlo SINR-quantile queries
    /// for `station` under `channel`: returns the revision, and the
    /// row-major matrix of `points.len() × quantiles.len()` values
    /// (`values[k * quantiles.len() + q]` is quantile `q` of point
    /// `k`). Replayable like [`Client::reception_prob_batch`].
    ///
    /// # Errors
    ///
    /// [`ClientError::Server`] with [`ErrorCode::StationOutOfRange`] /
    /// [`ErrorCode::ChannelUnsupported`] (unbinds/detaches) /
    /// [`ErrorCode::InvalidChannel`] / [`ErrorCode::Stale`], or any
    /// transport failure.
    #[allow(clippy::too_many_arguments)]
    pub fn sinr_quantiles_batch(
        &mut self,
        station: StationId,
        trials: u32,
        seed: u64,
        channel: &ChannelModel,
        quantiles: &[f64],
        points: &[Point],
    ) -> Result<(u64, Vec<f64>), ClientError> {
        match self.roundtrip(&Request::SinrQuantilesBatch {
            station,
            trials,
            seed,
            channel: channel.clone(),
            quantiles: quantiles.to_vec(),
            points: points.to_vec(),
        })? {
            Response::SinrQuantiles {
                revision, values, ..
            } => Ok((revision, values)),
            other => Err(unexpected(other, "SinrQuantiles")),
        }
    }

    /// Rasterises the session's SINR diagram over `[min, max]` at
    /// `width × height` pixels, server-side, by hierarchical
    /// (interval-certified quadtree) refinement — answers are
    /// bit-identical to locating every pixel centre, but the server
    /// pays per-point evaluation only near the zone boundaries.
    /// Returns the revision, one [`Located`] per pixel (bottom-first
    /// row-major: `cells[row * width + col]`), and how many pixels the
    /// server actually evaluated per-point (the economy observable).
    ///
    /// # Errors
    ///
    /// [`ClientError::Server`] with [`ErrorCode::MalformedFrame`]
    /// (degenerate window, zero grid, or more than
    /// [`MAX_HEATMAP_PIXELS`](crate::protocol::MAX_HEATMAP_PIXELS)
    /// pixels), [`ErrorCode::Oversized`] (the computed raster's actual
    /// run-length encoding does not fit one response frame — uniform
    /// rasters compress to a handful of runs, so this only triggers on
    /// genuinely fragmented diagrams), [`ErrorCode::NotBound`] /
    /// [`ErrorCode::Stale`], or any transport failure.
    pub fn heatmap_batch(
        &mut self,
        min: Point,
        max: Point,
        width: u32,
        height: u32,
    ) -> Result<(u64, Vec<Located>, u64), ClientError> {
        match self.roundtrip(&Request::HeatmapBatch {
            min,
            max,
            width,
            height,
        })? {
            Response::Heatmap {
                revision,
                cells,
                cells_evaluated,
                ..
            } => Ok((revision, cells, cells_evaluated)),
            other => Err(unexpected(other, "Heatmap")),
        }
    }

    /// Removes the network registered under `name`, provided no session
    /// is currently attached to it. Works in any session mode and does
    /// not change this session's mode; sessions already attached keep
    /// working (only the *name* disappears — unregistering is `unlink`,
    /// not revocation).
    ///
    /// # Errors
    ///
    /// [`ClientError::Server`] with [`ErrorCode::UnknownNetwork`] /
    /// [`ErrorCode::StillAttached`], or any transport failure.
    pub fn unregister_network(&mut self, name: &str) -> Result<(), ClientError> {
        match self.roundtrip(&Request::Unregister {
            name: name.to_owned(),
        })? {
            Response::Unregistered => Ok(()),
            other => Err(unexpected(other, "Unregistered")),
        }
    }

    /// One request frame out, one response frame back.
    ///
    /// # Errors
    ///
    /// Transport failures, undecodable responses, and server `Error`
    /// frames (as [`ClientError::Server`]).
    pub fn roundtrip(&mut self, request: &Request) -> Result<Response, ClientError> {
        self.transport.send_frame(&encode_request(request))?;
        self.recv()
    }

    /// Sends raw payload bytes as one frame — the fuzz suites' way of
    /// shipping malformed payloads through a well-formed framing layer.
    ///
    /// # Errors
    ///
    /// Any transport send failure.
    pub fn send_raw(&mut self, payload: &[u8]) -> Result<(), ClientError> {
        Ok(self.transport.send_frame(payload)?)
    }

    /// Receives and decodes one response frame; a server `Error` frame
    /// becomes [`ClientError::Server`].
    ///
    /// # Errors
    ///
    /// Transport failures, [`ClientError::ConnectionClosed`] on EOF,
    /// undecodable responses.
    pub fn recv(&mut self) -> Result<Response, ClientError> {
        let payload = self
            .transport
            .recv_frame()?
            .ok_or(ClientError::ConnectionClosed)?;
        match decode_response(&payload)? {
            Response::Error { code, message } => Err(ClientError::Server { code, message }),
            response => Ok(response),
        }
    }

    /// The underlying transport (e.g. to reach the raw [`TcpStream`]).
    pub fn transport(&self) -> &T {
        &self.transport
    }
}

fn unexpected(got: Response, wanted: &'static str) -> ClientError {
    // The decoded-but-wrong-type response is deliberately dropped: the
    // variant name is enough to diagnose a protocol-order bug.
    let _ = got;
    ClientError::UnexpectedResponse(wanted)
}

/// A client wired directly to a session loop over the in-process pipe:
/// no sockets, no ports, same frames. The session thread ends when the
/// returned client is dropped (the pipe closes, the session sees a
/// clean EOF).
pub fn serve_in_process() -> Client<PipeTransport> {
    let (client_end, server_end) = duplex();
    std::thread::Builder::new()
        .name("sinr-server-pipe-session".into())
        .spawn(move || serve_session(server_end))
        .expect("spawn pipe session thread");
    Client::new(client_end)
}
