//! The client half of the protocol: typed request/response round trips
//! over any [`Transport`].
//!
//! [`Client`] is deliberately thin — one method per request frame, each
//! returning the revision stamped on the response so callers can fence
//! their own mirrors (the e2e differential suite compares server
//! answers against a local [`sinr_core::ExactScan`] *at the same
//! revision*; the revision plumbing is what makes that comparison
//! well-defined under concurrent mutation).
//!
//! [`serve_in_process`] wires a client straight to a session loop over
//! the in-process [`PipeTransport`] — the loopback-free path used by
//! tests and the `server_throughput` bench to measure protocol cost
//! without kernel sockets.

use crate::protocol::{
    decode_response, encode_request, BackendId, ErrorCode, NetworkSpec, ProtocolError, Request,
    Response,
};
use crate::session::serve_session;
use crate::transport::{duplex, PipeTransport, RecvError, TcpTransport, Transport};
use sinr_core::{Located, Network, StationId, SurgeryOp};
use sinr_geometry::Point;
use std::io;
use std::net::{TcpStream, ToSocketAddrs};

/// Why a client call failed.
#[derive(Debug)]
pub enum ClientError {
    /// The transport failed sending.
    Io(io::Error),
    /// The transport failed receiving.
    Recv(RecvError),
    /// The server's response did not decode.
    Protocol(ProtocolError),
    /// The server answered with a typed error frame.
    Server {
        /// The error code.
        code: ErrorCode,
        /// The server's message.
        message: String,
    },
    /// The server closed the connection instead of answering.
    ConnectionClosed,
    /// The server answered with the wrong response type for the
    /// request.
    UnexpectedResponse(&'static str),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "send failed: {e}"),
            ClientError::Recv(e) => write!(f, "receive failed: {e}"),
            ClientError::Protocol(e) => write!(f, "undecodable response: {e}"),
            ClientError::Server { code, message } => {
                write!(f, "server error {code}: {message}")
            }
            ClientError::ConnectionClosed => write!(f, "server closed the connection"),
            ClientError::UnexpectedResponse(what) => {
                write!(f, "unexpected response type (wanted {what})")
            }
        }
    }
}

impl std::error::Error for ClientError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ClientError::Io(e) => Some(e),
            ClientError::Recv(e) => Some(e),
            ClientError::Protocol(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<RecvError> for ClientError {
    fn from(e: RecvError) -> Self {
        ClientError::Recv(e)
    }
}

impl From<ProtocolError> for ClientError {
    fn from(e: ProtocolError) -> Self {
        ClientError::Protocol(e)
    }
}

/// A connected protocol client.
#[derive(Debug)]
pub struct Client<T: Transport> {
    transport: T,
}

impl Client<TcpTransport> {
    /// Connects over TCP.
    ///
    /// # Errors
    ///
    /// Any [`io::Error`] from [`TcpStream::connect`].
    pub fn connect<A: ToSocketAddrs>(addr: A) -> io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        // See the server side: whole-frame writes + request/response
        // round trips make Nagle pure latency.
        let _ = stream.set_nodelay(true);
        Ok(Client::new(TcpTransport::new(stream)))
    }
}

impl<T: Transport> Client<T> {
    /// Wraps an already-connected transport.
    pub fn new(transport: T) -> Self {
        Client { transport }
    }

    /// Binds the session: ships `net` and the backend choice, returns
    /// the server-side starting revision.
    ///
    /// # Errors
    ///
    /// [`ClientError::Server`] with [`ErrorCode::AlreadyBound`] /
    /// [`ErrorCode::InvalidNetwork`] / [`ErrorCode::BackendBuild`], or
    /// any transport failure.
    pub fn bind_network(
        &mut self,
        backend: BackendId,
        epsilon: f64,
        net: &Network,
    ) -> Result<u64, ClientError> {
        match self.roundtrip(&Request::Bind {
            backend,
            epsilon,
            network: NetworkSpec::of(net),
        })? {
            Response::Bound { revision, .. } => Ok(revision),
            other => Err(unexpected(other, "Bound")),
        }
    }

    /// Streams one batch of point-location queries; returns the
    /// revision the answers are valid for and one answer per point.
    ///
    /// # Errors
    ///
    /// [`ClientError::Server`] (e.g. [`ErrorCode::NotBound`]) or any
    /// transport failure.
    pub fn locate_batch(&mut self, points: &[Point]) -> Result<(u64, Vec<Located>), ClientError> {
        match self.roundtrip(&Request::LocateBatch {
            points: points.to_vec(),
        })? {
            Response::Located { revision, answers } => Ok((revision, answers)),
            other => Err(unexpected(other, "Located")),
        }
    }

    /// Streams one batch of SINR samples for `station`.
    ///
    /// # Errors
    ///
    /// [`ClientError::Server`] (e.g. [`ErrorCode::StationOutOfRange`])
    /// or any transport failure.
    pub fn sinr_batch(
        &mut self,
        station: StationId,
        points: &[Point],
    ) -> Result<(u64, Vec<f64>), ClientError> {
        match self.roundtrip(&Request::SinrBatch {
            station,
            points: points.to_vec(),
        })? {
            Response::Sinrs { revision, values } => Ok((revision, values)),
            other => Err(unexpected(other, "Sinrs")),
        }
    }

    /// Applies a timestep of surgery ops, revision-fenced at
    /// `expected_revision`; returns the network's revision afterwards.
    ///
    /// # Errors
    ///
    /// [`ClientError::Server`] with [`ErrorCode::RevisionMismatch`]
    /// (nothing applied) or [`ErrorCode::Surgery`] (prefix applied —
    /// the message names the failing op), or any transport failure.
    pub fn mutate(
        &mut self,
        expected_revision: u64,
        ops: &[SurgeryOp],
    ) -> Result<u64, ClientError> {
        match self.roundtrip(&Request::Mutate {
            expected_revision,
            ops: ops.to_vec(),
        })? {
            Response::Mutated { revision, .. } => Ok(revision),
            other => Err(unexpected(other, "Mutated")),
        }
    }

    /// One request frame out, one response frame back.
    ///
    /// # Errors
    ///
    /// Transport failures, undecodable responses, and server `Error`
    /// frames (as [`ClientError::Server`]).
    pub fn roundtrip(&mut self, request: &Request) -> Result<Response, ClientError> {
        self.transport.send_frame(&encode_request(request))?;
        self.recv()
    }

    /// Sends raw payload bytes as one frame — the fuzz suites' way of
    /// shipping malformed payloads through a well-formed framing layer.
    ///
    /// # Errors
    ///
    /// Any transport send failure.
    pub fn send_raw(&mut self, payload: &[u8]) -> Result<(), ClientError> {
        Ok(self.transport.send_frame(payload)?)
    }

    /// Receives and decodes one response frame; a server `Error` frame
    /// becomes [`ClientError::Server`].
    ///
    /// # Errors
    ///
    /// Transport failures, [`ClientError::ConnectionClosed`] on EOF,
    /// undecodable responses.
    pub fn recv(&mut self) -> Result<Response, ClientError> {
        let payload = self
            .transport
            .recv_frame()?
            .ok_or(ClientError::ConnectionClosed)?;
        match decode_response(&payload)? {
            Response::Error { code, message } => Err(ClientError::Server { code, message }),
            response => Ok(response),
        }
    }

    /// The underlying transport (e.g. to reach the raw [`TcpStream`]).
    pub fn transport(&self) -> &T {
        &self.transport
    }
}

fn unexpected(got: Response, wanted: &'static str) -> ClientError {
    // The decoded-but-wrong-type response is deliberately dropped: the
    // variant name is enough to diagnose a protocol-order bug.
    let _ = got;
    ClientError::UnexpectedResponse(wanted)
}

/// A client wired directly to a session loop over the in-process pipe:
/// no sockets, no ports, same frames. The session thread ends when the
/// returned client is dropped (the pipe closes, the session sees a
/// clean EOF).
pub fn serve_in_process() -> Client<PipeTransport> {
    let (client_end, server_end) = duplex();
    std::thread::Builder::new()
        .name("sinr-server-pipe-session".into())
        .spawn(move || serve_session(server_end))
        .expect("spawn pipe session thread");
    Client::new(client_end)
}
