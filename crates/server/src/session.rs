//! The per-connection session loop: decode → dispatch → encode.
//!
//! One session serves one client over one [`Transport`]. The session
//! owns its [`Network`] and its [`BoxedEngine`] — sessions share
//! nothing, so a hostile or crashing client can never poison a
//! neighbouring session (isolation the e2e and fuzz suites pin).
//!
//! ## Pipelined mode
//!
//! The loop's discipline — **exactly one response per request, emitted
//! strictly in request order, never reordered and never coalesced** —
//! is a load-bearing protocol guarantee, not an implementation detail:
//! it is what makes client pipelining safe. A client may keep multiple
//! request frames in flight; while the engine chews on one
//! `LocateBatch`, the peer's subsequent frames queue in the transport,
//! so the tiled batch executor always has a full batch waiting and the
//! inter-burst round-trip idle disappears. One caveat is the client's,
//! not the loop's: this loop does not read ahead while computing, so a
//! *blocking* client must bound its unanswered request bytes to what
//! the transport buffers (or it can wedge against a session blocked
//! writing a response the client is not draining) — the shipped
//! pipelined client enforces exactly that budget
//! ([`PIPELINE_REQUEST_BUDGET`](crate::client::PIPELINE_REQUEST_BUDGET)). [`Client::locate_batches_pipelined`](crate::client::Client::locate_batches_pipelined)
//! is the client half; the e2e suite pins that pipelined answers are
//! bit-identical to request/response answers, and
//! `server_throughput`'s `pipelined_stream` scenario measures the win.
//! Mid-stream errors keep their slot in the response order (an error
//! frame *is* that request's response), so a pipelined client never
//! loses frame alignment.
//!
//! Error discipline (the hard part of a long-lived server):
//!
//! * **Malformed payloads** get a typed [`ErrorCode::MalformedFrame`]
//!   reply and the session continues — frame boundaries come from the
//!   length prefix, so one bad payload does not desynchronize the
//!   stream.
//! * **Oversized frames** get [`ErrorCode::Oversized`] and then the
//!   connection closes: after a lying length prefix the stream position
//!   is meaningless.
//! * **Semantic failures** (unknown backend, revision fences, surgery
//!   validation, staleness) are per-request typed errors; the session
//!   survives.
//! * **Panics** while handling a frame are caught, answered with
//!   [`ErrorCode::Internal`], and close only this session. The handler
//!   itself is written not to panic — the catch is the last line of
//!   defence, not the error path.

use crate::protocol::{decode_request, encode_response, BackendId, ErrorCode, Request, Response};
use crate::transport::{RecvError, Transport};
use sinr_core::engine::BoxedEngine;
use sinr_core::{ChannelError, Located, McConfig, Network, NetworkDelta, QueryEngine};
use sinr_pointloc::{PointLocator, QdsConfig};
use std::panic::{catch_unwind, AssertUnwindSafe};

/// The bound half of a session: one network, one engine, built by the
/// `Bind` frame and mutated only by `Mutate` frames.
struct BoundState {
    net: Network,
    engine: BoxedEngine,
    backend: BackendId,
}

/// Serves one client to completion: reads frames until the peer closes
/// (or the stream becomes unrecoverable) and answers every request with
/// exactly one response frame.
///
/// Never panics out: frame handling runs under `catch_unwind`, and a
/// caught panic answers [`ErrorCode::Internal`] before dropping the
/// connection.
pub fn serve_session<T: Transport>(mut transport: T) {
    let mut state: Option<BoundState> = None;
    loop {
        let payload = match transport.recv_frame() {
            Ok(Some(payload)) => payload,
            // Clean close on a frame boundary: the session is over.
            Ok(None) => return,
            Err(RecvError::Oversized { len }) => {
                let _ = send(
                    &mut transport,
                    &error(
                        ErrorCode::Oversized,
                        format!("frame length {len} exceeds the limit"),
                    ),
                );
                return;
            }
            // I/O failure or EOF mid-frame: nothing sensible to say.
            Err(_) => return,
        };
        let request = match decode_request(&payload) {
            Ok(request) => request,
            Err(e) => {
                let code = match e {
                    crate::protocol::ProtocolError::UnknownBackend(_) => ErrorCode::UnknownBackend,
                    _ => ErrorCode::MalformedFrame,
                };
                if send(&mut transport, &error(code, e.to_string())).is_err() {
                    return;
                }
                continue;
            }
        };
        let outcome = catch_unwind(AssertUnwindSafe(|| handle(&mut state, request)));
        let (response, close) = match outcome {
            Ok(response) => {
                // An Unsupported/ChannelUnsupported error unbinds
                // (documented on the codes): the engine can no longer
                // serve what the session is asking of it.
                if matches!(
                    response,
                    Response::Error {
                        code: ErrorCode::Unsupported | ErrorCode::ChannelUnsupported,
                        ..
                    }
                ) {
                    state = None;
                }
                (response, false)
            }
            Err(_) => (
                error(
                    ErrorCode::Internal,
                    "panic while handling the frame; closing this session".to_string(),
                ),
                true,
            ),
        };
        if send(&mut transport, &response).is_err() || close {
            return;
        }
    }
}

fn send<T: Transport>(transport: &mut T, response: &Response) -> std::io::Result<()> {
    transport.send_frame(&encode_response(response))
}

fn error(code: ErrorCode, message: String) -> Response {
    Response::Error { code, message }
}

/// Builds the requested backend over `net`.
fn build_backend(backend: BackendId, epsilon: f64, net: &Network) -> Result<BoxedEngine, Response> {
    match backend {
        BackendId::ExactScan => Ok(BoxedEngine::exact_scan(net)),
        BackendId::SimdScan => Ok(BoxedEngine::simd_scan(net)),
        BackendId::VoronoiAssisted => Ok(BoxedEngine::voronoi_assisted(net)),
        BackendId::Qds => {
            if !(epsilon > 0.0 && epsilon < 1.0) {
                return Err(error(
                    ErrorCode::BackendBuild,
                    format!("qds needs 0 < epsilon < 1, got {epsilon}"),
                ));
            }
            PointLocator::build(net, &QdsConfig::with_epsilon(epsilon))
                .map(|locator| BoxedEngine::new("qds", locator))
                .map_err(|e| error(ErrorCode::BackendBuild, e.to_string()))
        }
    }
}

/// Brings the engine up to date with deltas the session network just
/// emitted: incremental [`QueryEngine::apply`] per delta, falling back
/// to a full [`QueryEngine::sync`] if any application is refused. A
/// failed sync means the backend cannot represent the mutated network
/// at all — reported as [`ErrorCode::Unsupported`] (the caller unbinds).
fn catch_up(bound: &mut BoundState, deltas: &[NetworkDelta]) -> Result<(), Response> {
    for delta in deltas {
        if bound.engine.apply(delta).is_err() {
            break;
        }
    }
    if bound.engine.is_stale() {
        bound.engine.sync(&bound.net).map_err(|e| {
            error(
                ErrorCode::Unsupported,
                format!(
                    "backend {} cannot represent the mutated network: {e}",
                    bound.backend
                ),
            )
        })?;
    }
    Ok(())
}

/// One request → one response. Pure with respect to the transport.
fn handle(state: &mut Option<BoundState>, request: Request) -> Response {
    match request {
        Request::Bind {
            backend,
            epsilon,
            network,
        } => {
            if state.is_some() {
                return error(
                    ErrorCode::AlreadyBound,
                    "this session is already bound; open a new connection".to_string(),
                );
            }
            let net = match network.build() {
                Ok(net) => net,
                Err(e) => return error(ErrorCode::InvalidNetwork, e.to_string()),
            };
            let engine = match build_backend(backend, epsilon, &net) {
                Ok(engine) => engine,
                Err(resp) => return resp,
            };
            let revision = net.revision();
            *state = Some(BoundState {
                net,
                engine,
                backend,
            });
            Response::Bound { revision, backend }
        }
        Request::LocateBatch { points } => {
            let Some(bound) = state.as_ref() else {
                return not_bound();
            };
            let mut answers = vec![Located::Silent; points.len()];
            match bound.engine.try_locate_batch(&points, &mut answers) {
                Ok(()) => Response::Located {
                    revision: bound.engine.revision(),
                    answers,
                },
                Err(e) => error(ErrorCode::Stale, e.to_string()),
            }
        }
        Request::SinrBatch { station, points } => {
            let Some(bound) = state.as_ref() else {
                return not_bound();
            };
            if station.0 >= bound.net.len() {
                return error(
                    ErrorCode::StationOutOfRange,
                    format!(
                        "station {} out of range (network has {})",
                        station.0,
                        bound.net.len()
                    ),
                );
            }
            let mut values = vec![0.0; points.len()];
            match bound.engine.try_sinr_batch(station, &points, &mut values) {
                Ok(()) => Response::Sinrs {
                    revision: bound.engine.revision(),
                    values,
                },
                Err(e) => error(ErrorCode::Stale, e.to_string()),
            }
        }
        Request::Mutate {
            expected_revision,
            ops,
        } => {
            let Some(bound) = state.as_mut() else {
                return not_bound();
            };
            let current = bound.net.revision();
            if expected_revision != current {
                return error(
                    ErrorCode::RevisionMismatch,
                    format!(
                        "mutate was computed against revision {expected_revision} but the \
                         session network is at revision {current}; nothing was applied"
                    ),
                );
            }
            match bound.net.apply_ops(&ops) {
                Ok(deltas) => {
                    if let Err(resp) = catch_up(bound, &deltas) {
                        return resp;
                    }
                    Response::Mutated {
                        revision: bound.net.revision(),
                        applied: deltas.len() as u32,
                    }
                }
                Err(batch) => {
                    // The prefix stays applied (in-place surgery, not a
                    // transaction): re-sync the engine to it, then report
                    // the failing op. The revision in the message tells
                    // the client where the session network now is.
                    if let Err(resp) = catch_up(bound, &batch.applied) {
                        return resp;
                    }
                    error(
                        ErrorCode::Surgery,
                        format!(
                            "{batch}; session network is now at revision {}",
                            bound.net.revision()
                        ),
                    )
                }
            }
        }
        Request::ReceptionProbBatch {
            trials,
            seed,
            channel,
            points,
        } => {
            let Some(bound) = state.as_ref() else {
                return not_bound();
            };
            let mc = McConfig { trials, seed };
            let mut values = vec![0.0; points.len()];
            match bound
                .engine
                .reception_probability_batch(&channel, mc, &points, &mut values)
            {
                Ok(()) => Response::ReceptionProbs {
                    revision: bound.engine.revision(),
                    values,
                },
                Err(ChannelError::Unsupported(msg)) => error(
                    ErrorCode::ChannelUnsupported,
                    format!(
                        "backend {} cannot serve stochastic channels: {msg}",
                        bound.backend
                    ),
                ),
                Err(e @ ChannelError::InvalidChannel(_)) => {
                    error(ErrorCode::InvalidChannel, e.to_string())
                }
                Err(ChannelError::Stale(e)) => error(ErrorCode::Stale, e.to_string()),
            }
        }
    }
}

fn not_bound() -> Response {
    error(
        ErrorCode::NotBound,
        "session is not bound; send a Bind frame first".to_string(),
    )
}
