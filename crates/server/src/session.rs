//! The per-connection session state machine: decode → dispatch → encode.
//!
//! One [`SessionCore`] serves one client. It is transport-agnostic —
//! [`serve_session`] drives it over a blocking [`Transport`], and the
//! worker-pool server drives many cores over polled transports from a
//! fixed set of threads — and it runs in one of three modes:
//!
//! * **Unbound** — fresh session; only `Bind`, `Attach` and `Register`
//!   do real work.
//! * **Private** (`Bind`) — the legacy share-nothing path: the session
//!   owns its [`Network`] and its [`BoxedEngine`], so a hostile or
//!   crashing client can never poison a neighbouring session. Behavior
//!   on this path is pinned bit-identical to the pre-registry server by
//!   the e2e and fuzz suites.
//! * **Attached** (`Attach`) — the shared path: queries are served from
//!   the [`Arc<EngineSnapshot>`](sinr_core::EngineSnapshot) currently
//!   published by a [`SnapshotStore`] shared with every other session
//!   attached to the same (network, backend, epsilon). `Mutate` goes
//!   through the named network's revision fence and publishes a new
//!   snapshot; a batch already running keeps its loaded `Arc` (RCU — it
//!   finishes on the old snapshot, which frees when released).
//!
//! `Register` works in any mode and does not change the session's mode.
//!
//! ## Pipelined mode
//!
//! The loop's discipline — **exactly one response per request, emitted
//! strictly in request order, never reordered and never coalesced** —
//! is a load-bearing protocol guarantee, not an implementation detail:
//! it is what makes client pipelining safe. A client may keep multiple
//! request frames in flight; while the engine chews on one
//! `LocateBatch`, the peer's subsequent frames queue in the transport,
//! so the tiled batch executor always has a full batch waiting and the
//! inter-burst round-trip idle disappears. One caveat is the client's,
//! not the loop's: this loop does not read ahead while computing, so a
//! *blocking* client must bound its unanswered request bytes to what
//! the transport buffers (or it can wedge against a session blocked
//! writing a response the client is not draining) — the shipped
//! pipelined client enforces exactly that budget
//! ([`PIPELINE_REQUEST_BUDGET`](crate::client::PIPELINE_REQUEST_BUDGET)). [`Client::locate_batches_pipelined`](crate::client::Client::locate_batches_pipelined)
//! is the client half; the e2e suite pins that pipelined answers are
//! bit-identical to request/response answers, and
//! `server_throughput`'s `pipelined_stream` scenario measures the win.
//! Mid-stream errors keep their slot in the response order (an error
//! frame *is* that request's response), so a pipelined client never
//! loses frame alignment.
//!
//! Error discipline (the hard part of a long-lived server):
//!
//! * **Malformed payloads** get a typed [`ErrorCode::MalformedFrame`]
//!   reply and the session continues — frame boundaries come from the
//!   length prefix, so one bad payload does not desynchronize the
//!   stream.
//! * **Oversized frames** get [`ErrorCode::Oversized`] and then the
//!   connection closes: after a lying length prefix the stream position
//!   is meaningless.
//! * **Semantic failures** (unknown backend, revision fences, surgery
//!   validation, staleness) are per-request typed errors; the session
//!   survives.
//! * **Mode-ending failures**: [`ErrorCode::Unsupported`] and
//!   [`ErrorCode::ChannelUnsupported`] unbind/detach the session, and
//!   [`ErrorCode::UnknownNetwork`] detaches an *attached* session (its
//!   shared store was poisoned by a mutation its backend cannot
//!   represent). Subsequent queries get [`ErrorCode::NotBound`].
//! * **Panics** while handling a frame are caught, answered with
//!   [`ErrorCode::Internal`], and close only this session. The handler
//!   itself is written not to panic — the catch is the last line of
//!   defence, not the error path.

use crate::protocol::{decode_request, encode_response, BackendId, ErrorCode, Request, Response};
use crate::registry::{
    build_backend, AttachError, AttachGuard, MutateError, NamedNetwork, NetworkRegistry,
    RegisterError, UnregisterError,
};
use crate::transport::{RecvError, Transport, MAX_FRAME_LEN};
use sinr_core::engine::BoxedEngine;
use sinr_core::{
    ChannelError, ChannelModel, Located, McConfig, Network, NetworkDelta, QueryEngine,
    SnapshotStore, StationId,
};
use sinr_geometry::Point;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

/// The private half of a session: one network, one engine, built by the
/// `Bind` frame and mutated only by this session's `Mutate` frames.
struct BoundState {
    net: Network,
    engine: BoxedEngine,
    backend: BackendId,
}

/// The shared half of a session: a handle onto a registered network and
/// the snapshot store shared with every session attached alike.
struct AttachedState {
    network: Arc<NamedNetwork>,
    store: Arc<SnapshotStore>,
    backend: BackendId,
    /// Holds the registry attachment alive: dropping this state (detach,
    /// unbind, session end) releases the refcount that gates
    /// [`NetworkRegistry::unregister`].
    _guard: Arc<AttachGuard>,
}

/// What the session is currently serving.
enum Mode {
    Unbound,
    Private(BoundState),
    Attached(AttachedState),
}

/// The transport-independent session state machine: feed it one request
/// payload at a time ([`SessionCore::handle_payload`]), send back the
/// bytes it returns. Both the blocking per-connection loop
/// ([`serve_session`]) and the worker-pool server drive sessions
/// through this type, so the two serving modes cannot drift apart.
pub struct SessionCore {
    registry: Arc<NetworkRegistry>,
    mode: Mode,
}

impl SessionCore {
    /// A fresh, unbound session over `registry`.
    pub fn new(registry: Arc<NetworkRegistry>) -> SessionCore {
        SessionCore {
            registry,
            mode: Mode::Unbound,
        }
    }

    /// Handles one request payload (the frame body, length prefix
    /// already stripped) and returns the encoded response frame body
    /// plus whether the connection must close after sending it (a
    /// caught panic — [`ErrorCode::Internal`]).
    ///
    /// Never panics out: dispatch runs under `catch_unwind`.
    pub fn handle_payload(&mut self, payload: &[u8]) -> (Vec<u8>, bool) {
        let request = match decode_request(payload) {
            Ok(request) => request,
            Err(e) => {
                let code = match e {
                    crate::protocol::ProtocolError::UnknownBackend(_) => ErrorCode::UnknownBackend,
                    _ => ErrorCode::MalformedFrame,
                };
                return (encode_response(&error(code, e.to_string())), false);
            }
        };
        let outcome = catch_unwind(AssertUnwindSafe(|| self.handle(request)));
        match outcome {
            Ok(response) => {
                // An Unsupported/ChannelUnsupported error unbinds or
                // detaches (documented on the codes): the engine can no
                // longer serve what the session is asking of it. An
                // UnknownNetwork error on an *attached* session means
                // its shared store was poisoned — detach likewise.
                let mode_over = matches!(
                    response,
                    Response::Error {
                        code: ErrorCode::Unsupported | ErrorCode::ChannelUnsupported,
                        ..
                    }
                ) || (matches!(
                    response,
                    Response::Error {
                        code: ErrorCode::UnknownNetwork,
                        ..
                    }
                ) && matches!(self.mode, Mode::Attached(_)));
                if mode_over {
                    self.mode = Mode::Unbound;
                }
                (encode_response(&response), false)
            }
            Err(_) => (
                encode_response(&error(
                    ErrorCode::Internal,
                    "panic while handling the frame; closing this session".to_string(),
                )),
                true,
            ),
        }
    }

    /// One request → one response. Pure with respect to the transport.
    fn handle(&mut self, request: Request) -> Response {
        match request {
            Request::Bind {
                backend,
                epsilon,
                network,
            } => {
                if !matches!(self.mode, Mode::Unbound) {
                    return already_bound();
                }
                let net = match network.build() {
                    Ok(net) => net,
                    Err(e) => return error(ErrorCode::InvalidNetwork, e.to_string()),
                };
                let engine = match build_backend(backend, epsilon, &net) {
                    Ok(engine) => engine,
                    Err(msg) => return error(ErrorCode::BackendBuild, msg),
                };
                let revision = net.revision();
                self.mode = Mode::Private(BoundState {
                    net,
                    engine,
                    backend,
                });
                Response::Bound { revision, backend }
            }
            Request::Register { name, network } => match self.registry.register(&name, &network) {
                Ok(revision) => Response::Registered { revision },
                Err(RegisterError::NameTaken) => error(
                    ErrorCode::NameTaken,
                    format!("network name '{name}' is already registered"),
                ),
                // Unreachable from the wire (the name codec enforces the
                // length bound), reachable through in-process use.
                Err(e @ RegisterError::InvalidName) => {
                    error(ErrorCode::MalformedFrame, e.to_string())
                }
                Err(RegisterError::InvalidNetwork(e)) => {
                    error(ErrorCode::InvalidNetwork, e.to_string())
                }
            },
            Request::Attach {
                name,
                backend,
                epsilon,
            } => {
                if !matches!(self.mode, Mode::Unbound) {
                    return already_bound();
                }
                match self.registry.attach(&name, backend, epsilon) {
                    Ok(handle) => {
                        let revision = handle.revision;
                        self.mode = Mode::Attached(AttachedState {
                            network: handle.network,
                            store: handle.store,
                            backend,
                            _guard: handle.guard,
                        });
                        Response::Attached { revision, backend }
                    }
                    Err(AttachError::UnknownNetwork) => error(
                        ErrorCode::UnknownNetwork,
                        format!("no network registered under '{name}'"),
                    ),
                    Err(AttachError::BackendBuild(msg)) => error(ErrorCode::BackendBuild, msg),
                }
            }
            Request::LocateBatch { points } => match &self.mode {
                Mode::Unbound => not_bound(),
                Mode::Private(bound) => locate_on(&bound.engine, &points),
                Mode::Attached(att) => match load_snapshot(att) {
                    Ok(snap) => locate_on(snap.engine(), &points),
                    Err(resp) => resp,
                },
            },
            Request::SinrBatch { station, points } => match &self.mode {
                Mode::Unbound => not_bound(),
                Mode::Private(bound) => sinrs_on(&bound.engine, bound.net.len(), station, &points),
                Mode::Attached(att) => match load_snapshot(att) {
                    Ok(snap) => sinrs_on(snap.engine(), snap.stations(), station, &points),
                    Err(resp) => resp,
                },
            },
            Request::Mutate {
                expected_revision,
                ops,
            } => match &mut self.mode {
                Mode::Unbound => not_bound(),
                Mode::Private(bound) => {
                    let current = bound.net.revision();
                    if expected_revision != current {
                        return error(
                            ErrorCode::RevisionMismatch,
                            format!(
                                "mutate was computed against revision {expected_revision} but the \
                                 session network is at revision {current}; nothing was applied"
                            ),
                        );
                    }
                    match bound.net.apply_ops(&ops) {
                        Ok(deltas) => {
                            if let Err(resp) = catch_up(bound, &deltas) {
                                return resp;
                            }
                            Response::Mutated {
                                revision: bound.net.revision(),
                                applied: deltas.len() as u32,
                            }
                        }
                        Err(batch) => {
                            // The prefix stays applied (in-place surgery,
                            // not a transaction): re-sync the engine to it,
                            // then report the failing op. The revision in
                            // the message tells the client where the
                            // session network now is.
                            if let Err(resp) = catch_up(bound, &batch.applied) {
                                return resp;
                            }
                            error(
                                ErrorCode::Surgery,
                                format!(
                                    "{batch}; session network is now at revision {}",
                                    bound.net.revision()
                                ),
                            )
                        }
                    }
                }
                Mode::Attached(att) => match att.network.mutate(expected_revision, &ops) {
                    Ok(ok) => Response::Mutated {
                        revision: ok.revision,
                        applied: ok.applied,
                    },
                    Err(MutateError::RevisionMismatch { expected, current }) => error(
                        ErrorCode::RevisionMismatch,
                        format!(
                            "mutate was computed against revision {expected} but network '{}' \
                             is at revision {current}; nothing was applied",
                            att.network.name()
                        ),
                    ),
                    Err(MutateError::Surgery { message, revision }) => error(
                        ErrorCode::Surgery,
                        format!(
                            "{message}; network '{}' is now at revision {revision}",
                            att.network.name()
                        ),
                    ),
                },
            },
            Request::ReceptionProbBatch {
                trials,
                seed,
                channel,
                points,
            } => match &self.mode {
                Mode::Unbound => not_bound(),
                Mode::Private(bound) => reception_on(
                    &bound.engine,
                    bound.backend,
                    trials,
                    seed,
                    &channel,
                    &points,
                ),
                Mode::Attached(att) => match load_snapshot(att) {
                    Ok(snap) => {
                        reception_on(snap.engine(), att.backend, trials, seed, &channel, &points)
                    }
                    Err(resp) => resp,
                },
            },
            Request::SinrQuantilesBatch {
                station,
                trials,
                seed,
                channel,
                quantiles,
                points,
            } => match &self.mode {
                Mode::Unbound => not_bound(),
                Mode::Private(bound) => quantiles_on(
                    &bound.engine,
                    bound.net.len(),
                    bound.backend,
                    station,
                    trials,
                    seed,
                    &channel,
                    &quantiles,
                    &points,
                ),
                Mode::Attached(att) => match load_snapshot(att) {
                    Ok(snap) => quantiles_on(
                        snap.engine(),
                        snap.stations(),
                        att.backend,
                        station,
                        trials,
                        seed,
                        &channel,
                        &quantiles,
                        &points,
                    ),
                    Err(resp) => resp,
                },
            },
            Request::HeatmapBatch {
                min,
                max,
                width,
                height,
            } => match &self.mode {
                Mode::Unbound => not_bound(),
                Mode::Private(bound) => heatmap_on(&bound.engine, min, max, width, height),
                Mode::Attached(att) => match load_snapshot(att) {
                    Ok(snap) => heatmap_on(snap.engine(), min, max, width, height),
                    Err(resp) => resp,
                },
            },
            Request::Unregister { name } => match self.registry.unregister(&name) {
                Ok(()) => Response::Unregistered,
                Err(UnregisterError::UnknownNetwork) => error(
                    ErrorCode::UnknownNetwork,
                    format!("no network registered under '{name}'"),
                ),
                Err(e @ UnregisterError::StillAttached { .. }) => error(
                    ErrorCode::StillAttached,
                    format!("cannot unregister '{name}': {e}"),
                ),
            },
        }
    }
}

/// Serves one client to completion over a **private** registry: reads
/// frames until the peer closes (or the stream becomes unrecoverable)
/// and answers every request with exactly one response frame. With a
/// per-session registry, `Register`ed networks are invisible to other
/// sessions — the share-nothing contract of the original server. Accept
/// loops that want shared networks use
/// [`serve_session_with_registry`].
///
/// Never panics out: frame handling runs under `catch_unwind`, and a
/// caught panic answers [`ErrorCode::Internal`] before dropping the
/// connection.
pub fn serve_session<T: Transport>(transport: T) {
    serve_session_with_registry(transport, Arc::new(NetworkRegistry::new()));
}

/// [`serve_session`] against a shared [`NetworkRegistry`]: every
/// session served with the same `registry` sees the same named
/// networks and shares their snapshot stores.
pub fn serve_session_with_registry<T: Transport>(mut transport: T, registry: Arc<NetworkRegistry>) {
    let mut core = SessionCore::new(registry);
    loop {
        let payload = match transport.recv_frame() {
            Ok(Some(payload)) => payload,
            // Clean close on a frame boundary: the session is over.
            Ok(None) => return,
            Err(RecvError::Oversized { len }) => {
                let _ = transport.send_frame(&encode_response(&error(
                    ErrorCode::Oversized,
                    format!("frame length {len} exceeds the limit"),
                )));
                return;
            }
            // A session deadline expired (idle or mid-frame slowloris —
            // see [`crate::transport::Deadlines`]): evict by closing.
            // No error frame: an idle peer will learn on its next use,
            // and a dribbling peer is exactly who we stop serving.
            Err(RecvError::DeadlineExpired { .. }) => return,
            // I/O failure or EOF mid-frame: nothing sensible to say.
            Err(_) => return,
        };
        let (frame, close) = core.handle_payload(&payload);
        if transport.send_frame(&frame).is_err() || close {
            return;
        }
    }
}

fn error(code: ErrorCode, message: String) -> Response {
    Response::Error { code, message }
}

fn not_bound() -> Response {
    error(
        ErrorCode::NotBound,
        "session is not bound; send a Bind or Attach frame first".to_string(),
    )
}

fn already_bound() -> Response {
    error(
        ErrorCode::AlreadyBound,
        "this session is already bound; open a new connection".to_string(),
    )
}

/// The attached session's current snapshot, or the typed detach error
/// (the caller returns it; [`SessionCore::handle_payload`] sees the
/// [`ErrorCode::UnknownNetwork`] and drops the session to unbound).
fn load_snapshot(att: &AttachedState) -> Result<Arc<sinr_core::EngineSnapshot>, Response> {
    att.store.load().map_err(|e| {
        error(
            ErrorCode::UnknownNetwork,
            format!("detached from network '{}': {e}", att.network.name()),
        )
    })
}

/// Brings a private engine up to date with deltas the session network
/// just emitted: incremental [`QueryEngine::apply`] per delta, falling
/// back to a full [`QueryEngine::sync`] if any application is refused.
/// A failed sync means the backend cannot represent the mutated network
/// at all — reported as [`ErrorCode::Unsupported`] (the caller unbinds).
fn catch_up(bound: &mut BoundState, deltas: &[NetworkDelta]) -> Result<(), Response> {
    for delta in deltas {
        if bound.engine.apply(delta).is_err() {
            break;
        }
    }
    if bound.engine.is_stale() {
        bound.engine.sync(&bound.net).map_err(|e| {
            error(
                ErrorCode::Unsupported,
                format!(
                    "backend {} cannot represent the mutated network: {e}",
                    bound.backend
                ),
            )
        })?;
    }
    Ok(())
}

fn locate_on(engine: &BoxedEngine, points: &[Point]) -> Response {
    let mut answers = vec![Located::Silent; points.len()];
    match engine.try_locate_batch(points, &mut answers) {
        Ok(()) => Response::Located {
            revision: engine.revision(),
            answers,
        },
        Err(e) => error(ErrorCode::Stale, e.to_string()),
    }
}

/// Serves a `HeatmapBatch`: rasterises the engine's SINR diagram over
/// the window by hierarchical (interval-certified quadtree) refinement
/// — bit-identical to a dense per-pixel sweep, but paying per-point
/// evaluation only near the zone boundaries. The raster rows are
/// returned bottom-first, row-major, as [`Located`] runs.
fn heatmap_on(engine: &BoxedEngine, min: Point, max: Point, width: u32, height: u32) -> Response {
    if width == 0
        || height == 0
        || !min.is_finite()
        || !max.is_finite()
        || !(max.x - min.x).is_finite()
        || !(max.y - min.y).is_finite()
        || max.x <= min.x
        || max.y <= min.y
    {
        return error(
            ErrorCode::MalformedFrame,
            format!(
                "heatmap window must be finite with positive extent and positive grid \
                 dimensions (got [{min:?}, {max:?}] at {width}x{height})"
            ),
        );
    }
    // Cheap pre-compute screen only: the grid's *dense* pixel count
    // must be representable and within the protocol's pixel cap (the
    // bound on the raster this handler materialises and on the client's
    // decode allocation). Whether the *response* fits one frame is
    // decided below against the real run-length encoding — a raster's
    // wire size depends on how uniform it is, not on its pixel count,
    // so a mostly-uniform 2048² map (a few KB of runs) is served rather
    // than refused on its 9-bytes-per-pixel worst case.
    match (width as u64).checked_mul(height as u64) {
        Some(pixels) if pixels <= crate::protocol::MAX_HEATMAP_PIXELS => {}
        _ => {
            return error(
                ErrorCode::MalformedFrame,
                format!("heatmap grid {width}x{height} exceeds the pixel cap"),
            )
        }
    }
    if engine.is_stale() {
        return error(
            ErrorCode::Stale,
            "engine is stale relative to its network".to_string(),
        );
    }
    let window = sinr_geometry::BBox::new(min, max);
    let (map, stats) = sinr_diagram::ReceptionMap::compute_hierarchical_with_engine(
        engine,
        window,
        width as usize,
        height as usize,
    );
    let mut answers = Vec::with_capacity(width as usize * height as usize);
    for row in 0..height as usize {
        for col in 0..width as usize {
            answers.push(match map.at(col, row) {
                sinr_diagram::PixelLabel::Heard(i) => Located::Reception(i),
                sinr_diagram::PixelLabel::Silent => Located::Silent,
            });
        }
    }
    // The real frame-size check: 25 bytes of header (tag + revision +
    // dims + cells_evaluated) plus exactly 9 bytes per run.
    let encoded = 25 + 9 * crate::protocol::run_count(&answers);
    if encoded > MAX_FRAME_LEN {
        return error(
            ErrorCode::Oversized,
            format!(
                "heatmap response for {width}x{height} run-length encodes to {encoded} bytes, \
                 over the {MAX_FRAME_LEN}-byte frame limit; request a smaller window or grid"
            ),
        );
    }
    Response::Heatmap {
        revision: engine.revision(),
        width,
        height,
        cells_evaluated: stats.cells_evaluated,
        cells: answers,
    }
}

fn sinrs_on(
    engine: &BoxedEngine,
    stations: usize,
    station: StationId,
    points: &[Point],
) -> Response {
    if station.0 >= stations {
        return error(
            ErrorCode::StationOutOfRange,
            format!(
                "station {} out of range (network has {})",
                station.0, stations
            ),
        );
    }
    let mut values = vec![0.0; points.len()];
    match engine.try_sinr_batch(station, points, &mut values) {
        Ok(()) => Response::Sinrs {
            revision: engine.revision(),
            values,
        },
        Err(e) => error(ErrorCode::Stale, e.to_string()),
    }
}

fn reception_on(
    engine: &BoxedEngine,
    backend: BackendId,
    trials: u32,
    seed: u64,
    channel: &ChannelModel,
    points: &[Point],
) -> Response {
    let mc = McConfig { trials, seed };
    let mut values = vec![0.0; points.len()];
    match engine.reception_probability_batch(channel, mc, points, &mut values) {
        Ok(()) => Response::ReceptionProbs {
            revision: engine.revision(),
            values,
        },
        Err(ChannelError::Unsupported(msg)) => error(
            ErrorCode::ChannelUnsupported,
            format!("backend {backend} cannot serve stochastic channels: {msg}"),
        ),
        Err(e @ ChannelError::InvalidChannel(_)) => error(ErrorCode::InvalidChannel, e.to_string()),
        Err(ChannelError::Stale(e)) => error(ErrorCode::Stale, e.to_string()),
    }
}

#[allow(clippy::too_many_arguments)]
fn quantiles_on(
    engine: &BoxedEngine,
    stations: usize,
    backend: BackendId,
    station: StationId,
    trials: u32,
    seed: u64,
    channel: &ChannelModel,
    quantiles: &[f64],
    points: &[Point],
) -> Response {
    if station.0 >= stations {
        return error(
            ErrorCode::StationOutOfRange,
            format!(
                "station {} out of range (network has {})",
                station.0, stations
            ),
        );
    }
    // The response carries points × quantiles f64s; refuse grids whose
    // *response* could not fit in one frame (the request decoded fine,
    // but answering it would break the framing contract). 17 bytes of
    // header: tag + revision + quantile width + value count.
    let cells = points.len().checked_mul(quantiles.len());
    match cells {
        Some(cells) if 17 + 8 * cells <= MAX_FRAME_LEN => {}
        _ => {
            return error(
                ErrorCode::MalformedFrame,
                format!(
                    "quantile grid ({} points x {} quantiles) exceeds the response frame limit",
                    points.len(),
                    quantiles.len()
                ),
            )
        }
    }
    let mc = McConfig { trials, seed };
    let mut values = vec![0.0; points.len() * quantiles.len()];
    match engine.sinr_quantiles_batch(channel, mc, station, points, quantiles, &mut values) {
        Ok(()) => Response::SinrQuantiles {
            revision: engine.revision(),
            quantiles: quantiles.len() as u32,
            values,
        },
        Err(ChannelError::Unsupported(msg)) => error(
            ErrorCode::ChannelUnsupported,
            format!("backend {backend} cannot serve stochastic channels: {msg}"),
        ),
        Err(e @ ChannelError::InvalidChannel(_)) => error(ErrorCode::InvalidChannel, e.to_string()),
        Err(ChannelError::Stale(e)) => error(ErrorCode::Stale, e.to_string()),
    }
}
