//! Deterministic fault injection for transports: the chaos layer the
//! resilience tests drive the server through.
//!
//! The protocol's framing, deadline, and shedding machinery all claim
//! to survive badly-behaved byte streams — claims that are only worth
//! anything if tests can *produce* badly-behaved byte streams on
//! demand, reproducibly. [`ChaosStream`] is that producer: a
//! `Read + Write` wrapper that chops reads and writes at arbitrary
//! byte boundaries, injects artificial `WouldBlock`s and microsecond
//! delays, and cuts the connection mid-frame after a byte budget — all
//! driven by a [splitmix64](ChaosRng) stream, so **one `u64` seed
//! replays one exact fault schedule**. A failing chaotic run is
//! re-runnable from the seed in its failure message alone.
//!
//! Composition is by layering, not by special cases:
//!
//! * over a [`TcpStream`]: `IoTransport::new(ChaosStream::new(stream,
//!   cfg))` — a chaotic blocking client against a real server (the
//!   [`ChaosTransport`] alias; the chaos e2e fleets use exactly this);
//! * over a [`PipeStream`](crate::transport::PipeStream): the same,
//!   loopback-free — every byte-split of a frame exercised with zero
//!   kernel involvement (the protocol-fuzz chaos suites);
//! * under a [`PolledIo`](crate::transport::PolledIo):
//!   `PolledIo::from_stream(ChaosStream::new(nonblocking_stream,
//!   cfg))` — injected `WouldBlock`s and chopped reads exercise the
//!   worker pool's partial-frame reassembly deterministically.
//!
//! Chaos on a *blocking* stream must keep `would_block_one_in` at 0:
//! blocking readers treat `WouldBlock` as a real error. The seeded
//! presets ([`ChaosConfig::from_seed`]) respect this.

use crate::transport::{IoTransport, PipeStream, StreamCtl};
use std::io::{self, Read, Write};
use std::net::{Shutdown, TcpStream};
use std::time::Duration;

/// A chaotic blocking transport: frames over a [`ChaosStream`]. The
/// server cannot tell it from a badly-scheduled network.
pub type ChaosTransport<S> = IoTransport<ChaosStream<S>>;

/// The deterministic PRNG behind every chaos decision: splitmix64.
/// Small, seedable, and dependency-free — the whole point is that the
/// library crate carries its own replayable randomness instead of
/// depending on `rand`.
#[derive(Debug, Clone)]
pub struct ChaosRng {
    state: u64,
}

impl ChaosRng {
    /// A generator whose entire output is determined by `seed`.
    pub fn new(seed: u64) -> ChaosRng {
        ChaosRng { state: seed }
    }

    /// The next 64 pseudo-random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, bound)`; `bound == 0` returns 0.
    pub fn below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            0
        } else {
            self.next_u64() % bound
        }
    }

    /// True once in `one_in` calls on average; `one_in == 0` is never.
    pub fn one_in(&mut self, one_in: u32) -> bool {
        one_in != 0 && self.below(one_in as u64) == 0
    }
}

/// How a [`ChaosStream`] severs the connection when its transmit
/// budget runs out.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CutKind {
    /// Shut the underlying stream down in both directions: the peer
    /// observes EOF — mid-frame, if the budget landed there (it is
    /// chosen so that it usually does).
    Eof,
    /// Report `ConnectionReset` locally and shut the stream down: the
    /// local caller sees the abrupt-failure path, the peer sees the
    /// same mid-frame EOF (a true RST would need `SO_LINGER(0)`, which
    /// std does not expose — the *server-visible* behaviour is
    /// identical for this protocol: a connection that dies mid-frame).
    Reset,
}

/// The fault schedule of one [`ChaosStream`], replayable from
/// [`ChaosConfig::from_seed`].
#[derive(Debug, Clone)]
pub struct ChaosConfig {
    /// Seeds the per-stream [`ChaosRng`] (every chop length, delay and
    /// injection decision flows from it).
    pub seed: u64,
    /// Chop reads: each `read` asks the inner stream for a random
    /// 1..=n prefix of the caller's buffer, so frames arrive in
    /// dribbles.
    pub read_chop: bool,
    /// Chop writes: each `write` hands the inner stream a random 1..=n
    /// prefix (a *short write* — the caller's `write_all` loops, the
    /// peer sees partial frames between scheduling gaps).
    pub write_chop: bool,
    /// Inject a `WouldBlock` error once in this many I/O calls (0 =
    /// never). **Only for nonblocking consumers** such as
    /// [`PolledIo`](crate::transport::PolledIo); blocking readers treat
    /// `WouldBlock` as fatal.
    pub would_block_one_in: u32,
    /// Sleep before an I/O call once in this many calls (0 = never).
    pub delay_one_in: u32,
    /// Upper bound on one injected delay, in microseconds.
    pub delay_max_us: u64,
    /// Sever the connection after accepting this many written bytes
    /// (`None` = never): the mid-frame EOF/reset injector.
    pub cut_after_tx: Option<u64>,
    /// How the cut presents (see [`CutKind`]).
    pub cut_kind: CutKind,
}

impl ChaosConfig {
    /// A fully deterministic preset derived from `seed` alone — the
    /// fleet tests' one-knob entry point. Always chops reads and
    /// writes and injects small delays; roughly one seed in three also
    /// schedules a mid-frame cut (EOF or reset, seed's choice) inside
    /// the first couple of KiB, so a seeded fleet contains both
    /// well-behaved-but-slow clients and clients that die mid-frame.
    /// Never injects `WouldBlock` (safe for blocking transports).
    pub fn from_seed(seed: u64) -> ChaosConfig {
        // Derive the schedule from a *separate* rng stream so the
        // schedule and the per-op decisions are independent.
        let mut rng = ChaosRng::new(seed ^ 0xC0A5_C0A5_C0A5_C0A5);
        let cut_after_tx = if rng.one_in(3) {
            Some(64 + rng.below(2048))
        } else {
            None
        };
        let cut_kind = if rng.one_in(2) {
            CutKind::Eof
        } else {
            CutKind::Reset
        };
        ChaosConfig {
            seed,
            read_chop: true,
            write_chop: true,
            would_block_one_in: 0,
            delay_one_in: 6,
            delay_max_us: 120,
            cut_after_tx,
            cut_kind,
        }
    }

    /// [`ChaosConfig::from_seed`] without the cut injector: a client
    /// that behaves arbitrarily badly at the byte level but never
    /// dies — every request it sends completes.
    pub fn from_seed_no_cut(seed: u64) -> ChaosConfig {
        ChaosConfig {
            cut_after_tx: None,
            ..ChaosConfig::from_seed(seed)
        }
    }
}

/// Streams a [`ChaosStream`] can sever on cue (the cut injector's
/// hook into the real connection).
pub trait ChaosCut {
    /// Severs the stream so the *peer* observes the connection dying
    /// (both directions). Default: no-op (the local error alone).
    fn chaos_sever(&self) {}
}

impl ChaosCut for TcpStream {
    fn chaos_sever(&self) {
        let _ = self.shutdown(Shutdown::Both);
    }
}

impl ChaosCut for PipeStream {
    fn chaos_sever(&self) {
        self.shutdown_both();
    }
}

/// A `Read + Write` wrapper that perturbs every byte-level interaction
/// according to a seeded [`ChaosConfig`] — see the [module
/// docs](self) for the composition patterns.
#[derive(Debug)]
pub struct ChaosStream<S> {
    inner: S,
    rng: ChaosRng,
    cfg: ChaosConfig,
    /// Bytes of transmit budget left before the scheduled cut.
    tx_left: Option<u64>,
    /// The cut fired: all further I/O fails.
    severed: bool,
}

impl<S> ChaosStream<S> {
    /// Wraps `inner` under the fault schedule of `cfg`.
    pub fn new(inner: S, cfg: ChaosConfig) -> ChaosStream<S> {
        ChaosStream {
            rng: ChaosRng::new(cfg.seed),
            tx_left: cfg.cut_after_tx,
            severed: false,
            inner,
            cfg,
        }
    }

    /// The wrapped stream.
    pub fn get_ref(&self) -> &S {
        &self.inner
    }

    /// Whether the scheduled cut has fired.
    pub fn severed(&self) -> bool {
        self.severed
    }

    fn maybe_delay(&mut self) {
        if self.cfg.delay_max_us > 0 && self.rng.one_in(self.cfg.delay_one_in) {
            let us = self.rng.below(self.cfg.delay_max_us.max(1)) + 1;
            std::thread::sleep(Duration::from_micros(us));
        }
    }

    fn maybe_would_block(&mut self) -> io::Result<()> {
        if self.rng.one_in(self.cfg.would_block_one_in) {
            return Err(io::ErrorKind::WouldBlock.into());
        }
        Ok(())
    }

    /// A random nonempty prefix length of an `n`-byte operation.
    fn chop(&mut self, n: usize, enabled: bool) -> usize {
        if !enabled || n <= 1 {
            n
        } else {
            1 + self.rng.below(n as u64) as usize
        }
    }
}

impl<S: ChaosCut> ChaosStream<S> {
    fn sever(&mut self) -> io::Error {
        self.severed = true;
        self.inner.chaos_sever();
        match self.cfg.cut_kind {
            CutKind::Eof => io::Error::new(io::ErrorKind::BrokenPipe, "chaos cut (eof)"),
            CutKind::Reset => io::Error::new(io::ErrorKind::ConnectionReset, "chaos cut (reset)"),
        }
    }
}

impl<S: Read + ChaosCut> Read for ChaosStream<S> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        if self.severed {
            return Err(io::Error::new(
                io::ErrorKind::ConnectionReset,
                "chaos stream already severed",
            ));
        }
        self.maybe_delay();
        self.maybe_would_block()?;
        let k = self.chop(buf.len(), self.cfg.read_chop);
        self.inner.read(&mut buf[..k])
    }
}

impl<S: Write + ChaosCut> Write for ChaosStream<S> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        if self.severed {
            return Err(io::Error::new(
                io::ErrorKind::ConnectionReset,
                "chaos stream already severed",
            ));
        }
        if let Some(0) = self.tx_left {
            return Err(self.sever());
        }
        self.maybe_delay();
        self.maybe_would_block()?;
        let mut k = self.chop(buf.len(), self.cfg.write_chop);
        if let Some(left) = self.tx_left {
            // Land exactly on the budget so the cut falls mid-frame
            // whenever the budget does.
            k = k.min(left as usize).max(1.min(buf.len()));
        }
        let written = self.inner.write(&buf[..k])?;
        if let Some(left) = &mut self.tx_left {
            *left = left.saturating_sub(written as u64);
        }
        Ok(written)
    }

    fn flush(&mut self) -> io::Result<()> {
        if self.severed {
            return Ok(());
        }
        self.inner.flush()
    }
}

impl<S: StreamCtl> StreamCtl for ChaosStream<S> {
    fn set_read_limit(&self, limit: Option<Duration>) -> io::Result<()> {
        self.inner.set_read_limit(limit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::{duplex_stream, RecvError, Transport};

    #[test]
    fn rng_is_deterministic() {
        let a: Vec<u64> = {
            let mut r = ChaosRng::new(42);
            (0..32).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = ChaosRng::new(42);
            (0..32).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        let c: Vec<u64> = {
            let mut r = ChaosRng::new(43);
            (0..32).map(|_| r.next_u64()).collect()
        };
        assert_ne!(a, c);
    }

    #[test]
    fn config_from_seed_is_deterministic_and_varied() {
        for seed in 0..64u64 {
            let a = ChaosConfig::from_seed(seed);
            let b = ChaosConfig::from_seed(seed);
            assert_eq!(a.cut_after_tx, b.cut_after_tx);
            assert_eq!(a.cut_kind, b.cut_kind);
        }
        let cuts = (0..64u64)
            .filter(|s| ChaosConfig::from_seed(*s).cut_after_tx.is_some())
            .count();
        assert!(
            cuts > 8 && cuts < 56,
            "seed family should mix surviving and dying clients (got {cuts}/64 cuts)"
        );
    }

    /// Frames pushed through a chaotic pipe (chopped, delayed writes
    /// and chopped reads on the peer) arrive byte-identical, for many
    /// seeds.
    #[test]
    fn chopped_frames_round_trip_identically() {
        for seed in 0..24u64 {
            let (a, b) = duplex_stream();
            let mut tx = IoTransport::new(ChaosStream::new(a, ChaosConfig::from_seed_no_cut(seed)));
            let payloads: Vec<Vec<u8>> = (0..6)
                .map(|i| (0..(7 * i + 1)).map(|j| (j * 31 + i) as u8).collect())
                .collect();
            let expected = payloads.clone();
            let writer = std::thread::spawn(move || {
                for p in &payloads {
                    tx.send_frame(p).expect("chaotic send completes");
                }
                tx
            });
            let mut rx = IoTransport::new(ChaosStream::new(
                b,
                ChaosConfig::from_seed_no_cut(seed ^ 0x5555),
            ));
            for want in &expected {
                let got = rx.recv_frame().expect("recv ok").expect("frame present");
                assert_eq!(&got, want, "seed {seed}");
            }
            drop(writer.join().expect("writer thread"));
            assert!(rx.recv_frame().expect("clean close").is_none());
        }
    }

    /// The cut injector severs mid-frame: the peer sees a truncated
    /// frame, never a corrupted-but-complete one.
    #[test]
    fn cut_mid_frame_truncates_at_the_peer() {
        let cfg = ChaosConfig {
            seed: 7,
            read_chop: false,
            write_chop: true,
            would_block_one_in: 0,
            delay_one_in: 0,
            delay_max_us: 0,
            cut_after_tx: Some(10),
            cut_kind: CutKind::Eof,
        };
        let (a, b) = duplex_stream();
        let mut tx = IoTransport::new(ChaosStream::new(a, cfg));
        // 4 (prefix) + 20 (payload) > 10: the cut lands mid-payload.
        let err = tx.send_frame(&[0xAB; 20]).expect_err("cut fires");
        assert_eq!(err.kind(), io::ErrorKind::BrokenPipe);
        let mut rx = IoTransport::new(b);
        match rx.recv_frame() {
            Err(RecvError::TruncatedFrame { missing }) => assert!(missing > 0),
            other => panic!("expected mid-frame truncation, got {other:?}"),
        }
    }

    /// Injected `WouldBlock`s surface to the caller (the nonblocking
    /// consumer's contract) and never corrupt subsequent reads.
    #[test]
    fn would_block_injection_is_lossless() {
        let cfg = ChaosConfig {
            seed: 11,
            read_chop: true,
            write_chop: false,
            would_block_one_in: 2,
            delay_one_in: 0,
            delay_max_us: 0,
            cut_after_tx: None,
            cut_kind: CutKind::Eof,
        };
        let (a, mut b) = duplex_stream();
        let mut chaotic = ChaosStream::new(a, cfg);
        let payload: Vec<u8> = (0..200u32).map(|i| (i % 251) as u8).collect();
        b.write_all(&payload).expect("pipe write");
        drop(b);
        let mut got = Vec::new();
        let mut saw_would_block = false;
        let mut buf = [0u8; 64];
        loop {
            match chaotic.read(&mut buf) {
                Ok(0) => break,
                Ok(n) => got.extend_from_slice(&buf[..n]),
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => saw_would_block = true,
                Err(e) => panic!("unexpected read error: {e}"),
            }
        }
        assert_eq!(got, payload);
        assert!(saw_would_block, "seed 11 schedules at least one WouldBlock");
    }
}
