//! The TCP face: accept loops, session threading, shutdown.
//!
//! No async runtime exists in this workspace, so both serving modes are
//! std-only:
//!
//! * **Thread-per-connection** ([`Server::spawn`],
//!   [`Server::serve_sessions`]) — one OS thread per connection, each
//!   running the blocking session loop over a
//!   [`TcpTransport`](crate::transport::TcpTransport). The right shape
//!   for few heavy clients: a session streaming large batches keeps its
//!   thread busy with engine work, and the kernel's blocking reads are
//!   the cheapest possible readiness mechanism. It stops being right
//!   when connections are many and light — hundreds of threads exist
//!   mostly to sleep in `read(2)`, and every mutation wakes a stampede.
//! * **Worker pool** ([`Server::spawn_pooled`]) — a small fixed pool of
//!   workers multiplexes *all* connections: sockets are nonblocking
//!   ([`PolledIo`]), each connection is a [`SessionCore`] state
//!   machine, and a worker round-robins its connections, treating
//!   `WouldBlock` as "idle, move on". Hundreds of concurrent light
//!   clients cost hundreds of small buffers, not hundreds of stacks.
//!   Fairness is per-frame: a worker serves at most a bounded number of
//!   frames per connection per visit. An idle worker does not spin or
//!   park on a timer: it blocks in `poll(2)` over its sessions' sockets
//!   (plus `POLLOUT` for sessions with queued response bytes) and a
//!   wake pipe the accept thread writes after handing it a connection —
//!   zero syscalls while nothing happens, single-digit-microsecond
//!   wake-ups when something does (see [`readiness`](self)).
//!
//! Both modes drive the same state machine through the same
//! [`Transport`](crate::transport::Transport) trait, share one
//! [`NetworkRegistry`] per server, and speak identical frames — the e2e
//! suite pins bit-identical answers across the two.
//!
//! ## Shutdown
//!
//! [`ServerHandle::shutdown`] stops accepting, **closes every live
//! session's socket** (a registered `TcpStream` clone per session —
//! `shutdown(2)` unblocks a session thread parked in `read`), and joins
//! with a bounded wait. Idle connected clients therefore no longer wedge
//! shutdown — their sessions observe EOF and exit; a session that still
//! refuses to die within the bound is abandoned (leaked thread) rather
//! than hanging the caller forever.

use crate::protocol::{encode_response, ErrorCode, Response};
use crate::registry::NetworkRegistry;
use crate::session::{serve_session_with_registry, SessionCore};
use crate::transport::{Deadlines, IoTransport, PolledIo, RecvError, MAX_PENDING_OUT};
use crate::Transport;
use std::collections::HashMap;
use std::io;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// How long [`ServerHandle::shutdown`] waits for threads to finish
/// after closing their sockets before abandoning them (the default
/// [`ServerConfig::shutdown_join_bound`]).
const SHUTDOWN_JOIN_BOUND: Duration = Duration::from_secs(10);

/// Resource limits and session deadlines for a [`Server`]. The default
/// is the fully permissive pre-hardening behaviour: no deadlines, no
/// connection cap, the stock out-queue cap — every limit is opt-in.
///
/// ```no_run
/// use sinr_server::server::{Server, ServerConfig};
/// use std::time::Duration;
///
/// let server = Server::bind("127.0.0.1:0")?.with_config(ServerConfig {
///     idle_deadline: Some(Duration::from_secs(60)),
///     frame_deadline: Some(Duration::from_secs(5)),
///     max_connections: Some(1024),
///     ..ServerConfig::default()
/// });
/// # Ok::<(), std::io::Error>(())
/// ```
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Evict a session that goes this long **between frames** (`None`
    /// = never). An idle-but-connected client holds a thread (threaded
    /// mode) or a buffer (pooled mode); this bounds how long.
    pub idle_deadline: Option<Duration>,
    /// Evict a session that takes this long to deliver **one frame**,
    /// measured from its first byte (`None` = never). This is the
    /// slowloris defense: the budget is absolute per frame, so a
    /// client dribbling one byte per read cannot re-arm it.
    pub frame_deadline: Option<Duration>,
    /// Shed connections at accept time beyond this many live sessions
    /// (`None` = unbounded). A shed connection gets one framed
    /// [`ErrorCode::Overloaded`] and is closed — **no request frame is
    /// read**, so retrying is always safe.
    pub max_connections: Option<usize>,
    /// Pooled mode's per-session out-queue byte cap (a peer that stops
    /// reading its answers is disconnected once this many response
    /// bytes queue). Clamped to at least one maximal frame; defaults
    /// to [`MAX_PENDING_OUT`].
    pub max_pending_out: usize,
    /// How long [`ServerHandle::shutdown`] waits per thread before
    /// abandoning it (counted on
    /// [`ServerHandle::abandoned_sessions`]).
    pub shutdown_join_bound: Duration,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            idle_deadline: None,
            frame_deadline: None,
            max_connections: None,
            max_pending_out: MAX_PENDING_OUT,
            shutdown_join_bound: SHUTDOWN_JOIN_BOUND,
        }
    }
}

impl ServerConfig {
    fn deadlines(&self) -> Deadlines {
        Deadlines {
            idle: self.idle_deadline,
            frame: self.frame_deadline,
        }
    }

    /// The shortest configured deadline, if any — the pooled sweep's
    /// wait cap, so a blocked worker still wakes in time to evict.
    fn min_deadline(&self) -> Option<Duration> {
        match (self.idle_deadline, self.frame_deadline) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }
}

/// Counts live sessions against [`ServerConfig::max_connections`];
/// shared by the accept thread (admission) and session teardown
/// (release).
#[derive(Debug, Default)]
struct ConnGauge {
    live: AtomicUsize,
}

impl ConnGauge {
    /// Admits one connection unless `max` are already live.
    fn try_admit(&self, max: Option<usize>) -> bool {
        let Some(max) = max else {
            self.live.fetch_add(1, Ordering::SeqCst);
            return true;
        };
        self.live
            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |live| {
                (live < max).then_some(live + 1)
            })
            .is_ok()
    }

    fn release(&self) {
        self.live.fetch_sub(1, Ordering::SeqCst);
    }
}

/// Sheds a connection the gauge refused: one framed `Overloaded`
/// error, a write-side half-close, then a brief bounded drain of the
/// read side on a detached thread. The frame is a few dozen bytes — it
/// fits any socket send buffer, so the send cannot wedge the accept
/// thread even on a peer that never reads. The drain matters for
/// correctness, not politeness: a client caught mid-request has bytes
/// in flight, and fully closing against unread data turns the close
/// into a reset that discards the error frame before the client can
/// read it — the typed `Overloaded` (always safe to retry) would
/// degrade into an ambiguous I/O error.
fn shed_overloaded(stream: TcpStream) {
    let _ = stream.set_nodelay(true);
    let mut transport = IoTransport::new(stream);
    let _ = transport.send_frame(&encode_response(&Response::Error {
        code: ErrorCode::Overloaded,
        message: "server at connection capacity; retry after backoff".into(),
    }));
    let mut stream = transport.into_inner();
    let _ = stream.shutdown(Shutdown::Write);
    std::thread::spawn(move || {
        use std::io::Read;
        let _ = stream.set_read_timeout(Some(Duration::from_millis(100)));
        let deadline = Instant::now() + Duration::from_millis(500);
        let mut sink = [0u8; 1024];
        while Instant::now() < deadline {
            match stream.read(&mut sink) {
                Ok(n) if n > 0 => {}
                _ => break,
            }
        }
    });
}

/// Frames one pooled connection may consume per worker visit before the
/// worker moves on (fairness bound: one chatty pipelined client cannot
/// starve its neighbours on the same worker).
const FRAMES_PER_VISIT: usize = 8;

/// Upper bound on one blocking readiness wait. The wake pipe makes the
/// timeout a belt-and-braces backstop (new connections and shutdown
/// both write it), not the latency floor — a worker wakes the instant
/// any of its fds turns ready.
const WORKER_WAIT_MS: i32 = 1000;

/// Blocking readiness for idle pooled workers.
///
/// On Unix this is a raw `poll(2)` over every session socket (`POLLIN`,
/// plus `POLLOUT` for sessions with queued response bytes) and the read
/// end of an anonymous wake pipe; the accept thread writes one byte to
/// the pipe after handing the worker a connection, and shutdown writes
/// it too, so a blocked worker never misses either. The FFI is confined
/// to this module — everything else in the crate stays
/// `deny(unsafe_code)`.
///
/// Elsewhere the module degrades to a timed sleep with the same
/// signature (wakes are no-ops; the sweep loop re-polls on the same
/// bounded cadence the old park-based worker used).
#[cfg(unix)]
#[allow(unsafe_code)]
mod readiness {
    use super::PooledSession;
    use std::io::{self, PipeReader, PipeWriter, Read, Write};
    use std::os::fd::{AsRawFd, RawFd};
    use std::os::raw::{c_int, c_ulong};
    use std::sync::Arc;

    const POLLIN: i16 = 0x001;
    const POLLOUT: i16 = 0x004;

    #[repr(C)]
    struct PollFd {
        fd: RawFd,
        events: i16,
        revents: i16,
    }

    extern "C" {
        fn poll(fds: *mut PollFd, nfds: c_ulong, timeout: c_int) -> c_int;
    }

    /// The worker-side end: owns the wake pipe's reader and builds the
    /// poll set each wait.
    pub(super) struct Readiness {
        reader: PipeReader,
        fds: Vec<PollFd>,
    }

    /// The producer-side end: one byte per [`Waker::wake`], cheap to
    /// clone and share between the accept thread and the shutdown path.
    #[derive(Clone, Debug)]
    pub(super) struct Waker {
        writer: Arc<PipeWriter>,
    }

    impl Waker {
        /// Unblocks the paired worker's current (and next) wait.
        pub(super) fn wake(&self) {
            let _ = (&*self.writer).write(&[1u8]);
        }
    }

    /// A connected (worker, producer) wake pair.
    pub(super) fn wake_pair() -> io::Result<(Readiness, Waker)> {
        let (reader, writer) = io::pipe()?;
        Ok((
            Readiness {
                reader,
                fds: Vec::new(),
            },
            Waker {
                writer: Arc::new(writer),
            },
        ))
    }

    impl Readiness {
        /// Blocks until any session socket is readable (or writable,
        /// for sessions with queued output), the wake pipe is written,
        /// or `timeout_ms` elapses — whichever comes first. Spurious
        /// returns are fine; the caller re-sweeps its sessions either
        /// way.
        pub(super) fn wait(&mut self, sessions: &[PooledSession], timeout_ms: i32) {
            self.fds.clear();
            self.fds.push(PollFd {
                fd: self.reader.as_raw_fd(),
                events: POLLIN,
                revents: 0,
            });
            for session in sessions {
                self.fds.push(PollFd {
                    fd: session.io.get_ref().as_raw_fd(),
                    events: if session.io.wants_write() {
                        POLLIN | POLLOUT
                    } else {
                        POLLIN
                    },
                    revents: 0,
                });
            }
            // SAFETY: `fds` points at `self.fds.len()` properly
            // initialized `PollFd`s (layout-compatible with `struct
            // pollfd`) that outlive the call; `poll` writes only their
            // `revents` fields.
            let rc = unsafe { poll(self.fds.as_mut_ptr(), self.fds.len() as c_ulong, timeout_ms) };
            if rc > 0 && self.fds[0].revents != 0 {
                // Drain a burst of wake bytes. The fd is readable, so
                // this single read cannot block; any bytes beyond the
                // buffer just make the next wait return immediately.
                let mut sink = [0u8; 64];
                let _ = self.reader.read(&mut sink);
            }
        }
    }
}

/// Condvar fallback where `poll(2)` is unavailable: same API, wakes
/// are real (the accept thread and shutdown notify a condvar the
/// worker parks on). Sockets cannot signal a condvar, so a worker
/// *with* live sessions still re-sweeps on a short nap — but an
/// **idle** worker (no sessions) parks for the full timeout and burns
/// no CPU until a wake arrives, instead of the old 500 µs
/// `park_timeout` spin.
#[cfg(not(unix))]
mod readiness {
    use super::PooledSession;
    use std::io;
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::Duration;

    /// How long a worker with live sessions naps between sweeps (its
    /// sockets cannot wake the condvar, so this is the poll cadence).
    const SESSION_NAP: Duration = Duration::from_millis(2);

    #[derive(Debug)]
    struct Shared {
        pending: Mutex<bool>,
        cv: Condvar,
    }

    pub(super) struct Readiness {
        shared: Arc<Shared>,
    }

    #[derive(Clone, Debug)]
    pub(super) struct Waker {
        shared: Arc<Shared>,
    }

    impl Waker {
        pub(super) fn wake(&self) {
            *self.shared.pending.lock().expect("wake lock") = true;
            self.shared.cv.notify_all();
        }
    }

    pub(super) fn wake_pair() -> io::Result<(Readiness, Waker)> {
        let shared = Arc::new(Shared {
            pending: Mutex::new(false),
            cv: Condvar::new(),
        });
        Ok((
            Readiness {
                shared: Arc::clone(&shared),
            },
            Waker { shared },
        ))
    }

    impl Readiness {
        pub(super) fn wait(&mut self, sessions: &[PooledSession], timeout_ms: i32) {
            let bound = Duration::from_millis(timeout_ms.max(1) as u64);
            let timeout = if sessions.is_empty() {
                bound
            } else {
                SESSION_NAP.min(bound)
            };
            let mut pending = self.shared.pending.lock().expect("wake lock");
            if !*pending {
                let (guard, _) = self
                    .shared
                    .cv
                    .wait_timeout(pending, timeout)
                    .expect("wake wait");
                pending = guard;
            }
            *pending = false;
        }
    }
}

use readiness::{wake_pair, Readiness, Waker};

/// A bound listener, not yet accepting. Every session this server ever
/// serves — threaded or pooled — shares its [`NetworkRegistry`].
#[derive(Debug)]
pub struct Server {
    listener: TcpListener,
    registry: Arc<NetworkRegistry>,
    config: ServerConfig,
}

impl Server {
    /// Binds the listener (use port 0 for an ephemeral port, then read
    /// [`Server::local_addr`]). Starts with [`ServerConfig::default`]
    /// (no limits); see [`Server::with_config`].
    ///
    /// # Errors
    ///
    /// Any [`io::Error`] from [`TcpListener::bind`].
    pub fn bind<A: ToSocketAddrs>(addr: A) -> io::Result<Server> {
        Ok(Server {
            listener: TcpListener::bind(addr)?,
            registry: Arc::new(NetworkRegistry::new()),
            config: ServerConfig::default(),
        })
    }

    /// Replaces the server's [`ServerConfig`] (deadlines, connection
    /// cap, out-queue cap, shutdown bound). Applies to every serving
    /// mode started afterwards.
    #[must_use]
    pub fn with_config(mut self, config: ServerConfig) -> Server {
        self.config = config;
        self
    }

    /// The active [`ServerConfig`].
    pub fn config(&self) -> &ServerConfig {
        &self.config
    }

    /// The bound address (the ephemeral port when bound to port 0).
    ///
    /// # Errors
    ///
    /// Any [`io::Error`] from [`TcpListener::local_addr`].
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// The server-wide registry of named networks (for in-process
    /// introspection: tests assert snapshot sharing through it).
    pub fn registry(&self) -> Arc<NetworkRegistry> {
        Arc::clone(&self.registry)
    }

    /// Accepts and serves exactly `sessions` connections (each on its
    /// own thread), joins them all, then returns — the inline mode the
    /// client/server example pair and CI smoke tests use.
    ///
    /// # Errors
    ///
    /// Any [`io::Error`] from accepting.
    pub fn serve_sessions(&self, sessions: usize) -> io::Result<()> {
        let roster = Arc::new(Roster::default());
        let gauge = Arc::new(ConnGauge::default());
        let mut handles = Vec::with_capacity(sessions);
        for _ in 0..sessions {
            let (stream, _) = self.listener.accept()?;
            if !gauge.try_admit(self.config.max_connections) {
                shed_overloaded(stream);
                continue;
            }
            handles.push(spawn_session(
                stream,
                Arc::clone(&self.registry),
                Arc::clone(&roster),
                Arc::clone(&gauge),
                self.config.deadlines(),
            ));
        }
        for handle in handles {
            let _ = handle.join();
        }
        Ok(())
    }

    /// Starts the thread-per-connection accept loop on a background
    /// thread.
    ///
    /// # Errors
    ///
    /// Any [`io::Error`] from reading the local address.
    pub fn spawn(self) -> io::Result<ServerHandle> {
        let addr = self.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let roster = Arc::new(Roster::default());
        let abandoned = Arc::new(AtomicUsize::new(0));
        let registry = Arc::clone(&self.registry);
        let stop_flag = Arc::clone(&stop);
        let roster_accept = Arc::clone(&roster);
        let abandoned_accept = Arc::clone(&abandoned);
        let config = self.config.clone();
        let listener = self.listener;
        let accept = std::thread::Builder::new()
            .name("sinr-server-accept".into())
            .spawn(move || {
                let gauge = Arc::new(ConnGauge::default());
                let mut sessions: Vec<JoinHandle<()>> = Vec::new();
                for stream in listener.incoming() {
                    if stop_flag.load(Ordering::SeqCst) {
                        break;
                    }
                    if let Ok(stream) = stream {
                        if !gauge.try_admit(config.max_connections) {
                            shed_overloaded(stream);
                            continue;
                        }
                        sessions.push(spawn_session(
                            stream,
                            Arc::clone(&registry),
                            Arc::clone(&roster_accept),
                            Arc::clone(&gauge),
                            config.deadlines(),
                        ));
                    }
                    // Reap sessions that already finished so the list
                    // stays proportional to *live* connections.
                    sessions.retain(|h| !h.is_finished());
                }
                for handle in sessions {
                    if !join_bounded(handle, config.shutdown_join_bound) {
                        abandoned_accept.fetch_add(1, Ordering::SeqCst);
                    }
                }
            })
            .expect("spawn accept thread");
        Ok(ServerHandle {
            addr,
            stop,
            roster,
            registry: self.registry,
            abandoned,
            join_bound: self.config.shutdown_join_bound,
            accept: Some(accept),
            workers: Vec::new(),
            wakers: Vec::new(),
        })
    }

    /// Starts the worker-pool server: an accept thread distributes
    /// connections round-robin over `workers` (clamped to at least 1)
    /// fixed worker threads, each multiplexing its share of connections
    /// as nonblocking [`SessionCore`] state machines. Connection count
    /// is bounded only by file descriptors — the thread count never
    /// grows.
    ///
    /// # Errors
    ///
    /// Any [`io::Error`] from reading the local address.
    pub fn spawn_pooled(self, workers: usize) -> io::Result<ServerHandle> {
        let addr = self.local_addr()?;
        let workers = workers.max(1);
        let stop = Arc::new(AtomicBool::new(false));
        let registry = Arc::clone(&self.registry);
        let gauge = Arc::new(ConnGauge::default());
        let intakes: Vec<Arc<Mutex<Vec<TcpStream>>>> = (0..workers)
            .map(|_| Arc::new(Mutex::new(Vec::new())))
            .collect();

        let mut worker_handles = Vec::with_capacity(workers);
        let mut wakers = Vec::with_capacity(workers);
        for (i, intake) in intakes.iter().enumerate() {
            let (readiness, waker) = wake_pair()?;
            wakers.push(waker);
            let intake = Arc::clone(intake);
            let stop = Arc::clone(&stop);
            let registry = Arc::clone(&registry);
            let gauge = Arc::clone(&gauge);
            let config = self.config.clone();
            worker_handles.push(
                std::thread::Builder::new()
                    .name(format!("sinr-server-worker-{i}"))
                    .spawn(move || {
                        worker_loop(&intake, &stop, &registry, readiness, &gauge, &config)
                    })
                    .expect("spawn worker thread"),
            );
        }

        let stop_flag = Arc::clone(&stop);
        let config = self.config.clone();
        let listener = self.listener;
        let accept_wakers = wakers.clone();
        let accept = std::thread::Builder::new()
            .name("sinr-server-accept".into())
            .spawn(move || {
                let mut next = 0usize;
                for stream in listener.incoming() {
                    if stop_flag.load(Ordering::SeqCst) {
                        break;
                    }
                    if let Ok(stream) = stream {
                        if !gauge.try_admit(config.max_connections) {
                            shed_overloaded(stream);
                            continue;
                        }
                        let i = next % intakes.len();
                        intakes[i].lock().expect("intake lock").push(stream);
                        // After the push, so the woken worker always
                        // finds the connection in its intake.
                        accept_wakers[i].wake();
                        next += 1;
                    }
                }
            })
            .expect("spawn accept thread");

        Ok(ServerHandle {
            addr,
            stop,
            roster: Arc::new(Roster::default()),
            registry: self.registry,
            abandoned: Arc::new(AtomicUsize::new(0)),
            join_bound: self.config.shutdown_join_bound,
            accept: Some(accept),
            workers: worker_handles,
            wakers,
        })
    }
}

fn spawn_session(
    stream: TcpStream,
    registry: Arc<NetworkRegistry>,
    roster: Arc<Roster>,
    gauge: Arc<ConnGauge>,
    deadlines: Deadlines,
) -> JoinHandle<()> {
    // Request/response framing with small Mutate frames: Nagle +
    // delayed ACK would serialize every round trip on a timer tick
    // (measured ~100× on the churn_stream bench). Frames are written
    // whole, so there is nothing for Nagle to coalesce anyway.
    let _ = stream.set_nodelay(true);
    let admitted = roster.register(&stream);
    std::thread::Builder::new()
        .name("sinr-server-session".into())
        .spawn(move || {
            let Some(id) = admitted else {
                // The server is already shutting down: the roster shut
                // the socket before we got here.
                gauge.release();
                return;
            };
            serve_session_with_registry(IoTransport::with_deadlines(stream, deadlines), registry);
            roster.deregister(id);
            gauge.release();
        })
        .expect("spawn session thread")
}

/// The live-session book of a threaded server: one `TcpStream` clone
/// per session, so shutdown can `shutdown(2)` sockets that session
/// threads are blocked reading (an idle connected client would
/// otherwise pin its thread — and the whole shutdown — forever).
#[derive(Debug, Default)]
struct Roster {
    inner: Mutex<RosterInner>,
}

#[derive(Debug, Default)]
struct RosterInner {
    next_id: u64,
    streams: HashMap<u64, TcpStream>,
    closing: bool,
}

impl Roster {
    /// Admits a session, keeping a socket clone for shutdown. `None`
    /// refuses the session (the roster is closing; the socket was shut
    /// down in place).
    fn register(&self, stream: &TcpStream) -> Option<u64> {
        let mut inner = self.inner.lock().expect("roster lock");
        if inner.closing {
            let _ = stream.shutdown(Shutdown::Both);
            return None;
        }
        let id = inner.next_id;
        inner.next_id += 1;
        // A failed clone just means this session is untracked (shutdown
        // cannot unblock it early); serving it is still correct.
        if let Ok(clone) = stream.try_clone() {
            inner.streams.insert(id, clone);
        }
        Some(id)
    }

    fn deregister(&self, id: u64) {
        self.inner.lock().expect("roster lock").streams.remove(&id);
    }

    /// Shuts down every tracked socket and refuses all future
    /// admissions.
    fn close_all(&self) {
        let mut inner = self.inner.lock().expect("roster lock");
        inner.closing = true;
        for stream in inner.streams.values() {
            let _ = stream.shutdown(Shutdown::Both);
        }
        inner.streams.clear();
    }
}

/// One pooled connection: its buffered nonblocking socket and its
/// protocol state machine.
struct PooledSession {
    io: PolledIo,
    core: SessionCore,
    /// A fatal response (Internal/Oversized) is queued but not fully
    /// flushed; close as soon as it drains.
    closing: bool,
    /// When this session last completed a frame (or connected) — the
    /// idle-deadline clock.
    last_frame: Instant,
    /// When the currently half-received frame's first bytes arrived —
    /// the frame-deadline (slowloris) clock. `None` between frames.
    partial_since: Option<Instant>,
}

impl PooledSession {
    /// True when the session has outlived one of `deadlines`' bounds:
    /// mid-frame sessions answer to the frame deadline, in-between
    /// sessions to the idle deadline. Called by the worker sweep; an
    /// overdue session is dropped (closing its socket).
    fn overdue(&mut self, deadlines: &Deadlines, now: Instant) -> bool {
        if self.io.partial_in() > 0 {
            let since = *self.partial_since.get_or_insert(now);
            matches!(deadlines.frame, Some(bound) if now.duration_since(since) > bound)
        } else {
            self.partial_since = None;
            matches!(deadlines.idle, Some(bound) if now.duration_since(self.last_frame) > bound)
        }
    }
}

enum Step {
    /// Did real work this visit (keep the pool hot).
    Progress,
    /// Nothing to do (candidate for parking).
    Idle,
    /// The connection is over; drop the session.
    Done,
}

impl PooledSession {
    fn step(&mut self) -> Step {
        // Drain queued response bytes first: a peer that has not read
        // its answers yet gets no new requests processed (the same
        // backpressure a blocking session applies by blocking in
        // `send_frame`).
        match self.io.flush_pending() {
            Ok(_) => {}
            Err(_) => return Step::Done,
        }
        if self.io.wants_write() {
            return Step::Idle;
        }
        if self.closing {
            return Step::Done;
        }
        let mut progressed = false;
        for _ in 0..FRAMES_PER_VISIT {
            match self.io.recv_frame() {
                Ok(Some(payload)) => {
                    progressed = true;
                    let (frame, close) = self.core.handle_payload(&payload);
                    if self.io.send_frame(&frame).is_err() {
                        return Step::Done;
                    }
                    if close {
                        return self.finish();
                    }
                    if self.io.wants_write() {
                        // Backpressure: wait for the peer to drain
                        // before decoding its next request.
                        return Step::Progress;
                    }
                }
                Ok(None) => return Step::Done,
                Err(RecvError::Io(e)) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(RecvError::Oversized { len }) => {
                    let _ = self.io.send_frame(&encode_response(&Response::Error {
                        code: ErrorCode::Oversized,
                        message: format!("frame length {len} exceeds the limit"),
                    }));
                    return self.finish();
                }
                Err(_) => return Step::Done,
            }
        }
        if progressed {
            Step::Progress
        } else {
            Step::Idle
        }
    }

    /// The connection must close, but a final frame may still be
    /// queued: give it a chance to drain before dropping.
    fn finish(&mut self) -> Step {
        let _ = self.io.flush_pending();
        if self.io.wants_write() {
            self.closing = true;
            Step::Progress
        } else {
            Step::Done
        }
    }
}

fn worker_loop(
    intake: &Mutex<Vec<TcpStream>>,
    stop: &AtomicBool,
    registry: &Arc<NetworkRegistry>,
    mut readiness: Readiness,
    gauge: &ConnGauge,
    config: &ServerConfig,
) {
    let deadlines = config.deadlines();
    // A deadline-carrying worker must wake often enough to evict on
    // time even when no socket turns ready.
    let wait_ms = match config.min_deadline() {
        Some(d) => (d.as_millis() / 2).clamp(1, WORKER_WAIT_MS as u128) as i32,
        None => WORKER_WAIT_MS,
    };
    let mut sessions: Vec<PooledSession> = Vec::new();
    loop {
        if stop.load(Ordering::SeqCst) {
            // Dropping a PolledIo closes its socket: every connection —
            // idle or mid-stream — is torn down. A last flush attempt
            // delivers responses already computed.
            for session in &mut sessions {
                let _ = session.io.flush_pending();
                gauge.release();
            }
            return;
        }
        for stream in intake.lock().expect("intake lock").drain(..) {
            let _ = stream.set_nodelay(true);
            match PolledIo::new(stream) {
                Ok(io) => sessions.push(PooledSession {
                    io: io.with_out_cap(config.max_pending_out),
                    core: SessionCore::new(Arc::clone(registry)),
                    closing: false,
                    last_frame: Instant::now(),
                    partial_since: None,
                }),
                Err(_) => gauge.release(),
            }
        }
        let mut progressed = false;
        let now = Instant::now();
        sessions.retain_mut(|session| match session.step() {
            Step::Progress => {
                progressed = true;
                session.last_frame = Instant::now();
                session.partial_since = None;
                true
            }
            Step::Idle => {
                if session.overdue(&deadlines, now) {
                    // Dropping the session closes its socket: the
                    // slow/idle peer sees the connection die.
                    gauge.release();
                    false
                } else {
                    true
                }
            }
            Step::Done => {
                gauge.release();
                false
            }
        });
        if !progressed {
            // Every session is idle: block until a socket turns ready
            // or the accept thread / shutdown writes the wake pipe.
            // Waking spuriously (or on the timeout backstop) just runs
            // one more sweep that finds nothing.
            readiness.wait(&sessions, wait_ms);
        }
    }
}

/// Joins with a deadline; an over-deadline thread is abandoned (better
/// a leaked thread than a shutdown that never returns). Returns whether
/// the join actually happened — `false` is a leak the caller should
/// count.
fn join_bounded(handle: JoinHandle<()>, bound: Duration) -> bool {
    let deadline = Instant::now() + bound;
    while !handle.is_finished() {
        if Instant::now() >= deadline {
            return false;
        }
        std::thread::sleep(Duration::from_millis(1));
    }
    let _ = handle.join();
    true
}

/// A running background server (see [`Server::spawn`] and
/// [`Server::spawn_pooled`]).
///
/// Dropping the handle shuts the server down (same as
/// [`ServerHandle::shutdown`]).
#[derive(Debug)]
pub struct ServerHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    roster: Arc<Roster>,
    registry: Arc<NetworkRegistry>,
    /// Threads shutdown gave up waiting for (see
    /// [`ServerHandle::abandoned_sessions`]).
    abandoned: Arc<AtomicUsize>,
    join_bound: Duration,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    /// One per pooled worker (empty for threaded servers): shutdown
    /// writes them so workers blocked in a readiness wait exit promptly
    /// instead of riding out the timeout backstop.
    wakers: Vec<Waker>,
}

impl ServerHandle {
    /// The address clients connect to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The server-wide registry of named networks (tests use this to
    /// observe snapshot sharing from outside the protocol).
    pub fn registry(&self) -> Arc<NetworkRegistry> {
        Arc::clone(&self.registry)
    }

    /// How many threads shutdown has abandoned after their
    /// [`ServerConfig::shutdown_join_bound`] expired: session threads
    /// in threaded mode, plus one per wedged accept/worker thread.
    /// Nonzero means a leak — bounded-shutdown tests pin this to 0.
    pub fn abandoned_sessions(&self) -> usize {
        self.abandoned.load(Ordering::SeqCst)
    }

    /// Stops accepting, closes every live session's socket (so idle
    /// connected clients cannot wedge the join — their sessions see EOF
    /// and exit), and joins all server threads with a bounded wait.
    /// Returns the total number of threads abandoned over this server's
    /// lifetime (see [`ServerHandle::abandoned_sessions`]); 0 is the
    /// clean case.
    pub fn shutdown(mut self) -> usize {
        self.shutdown_inner();
        self.abandoned.load(Ordering::SeqCst)
    }

    fn shutdown_inner(&mut self) {
        let Some(accept) = self.accept.take() else {
            return;
        };
        self.stop.store(true, Ordering::SeqCst);
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        // Unblock session threads parked in read(2).
        self.roster.close_all();
        // Unblock pooled workers blocked in their readiness wait.
        for waker in &self.wakers {
            waker.wake();
        }
        if !join_bounded(accept, self.join_bound) {
            self.abandoned.fetch_add(1, Ordering::SeqCst);
        }
        for worker in self.workers.drain(..) {
            if !join_bounded(worker, self.join_bound) {
                self.abandoned.fetch_add(1, Ordering::SeqCst);
            }
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn join_bounded_reports_abandonment() {
        let quick = std::thread::spawn(|| {});
        assert!(join_bounded(quick, Duration::from_secs(1)));
        let wedged = std::thread::spawn(|| std::thread::sleep(Duration::from_millis(300)));
        assert!(!join_bounded(wedged, Duration::from_millis(10)));
    }

    #[test]
    fn conn_gauge_admits_to_the_cap_and_recovers() {
        let gauge = ConnGauge::default();
        assert!(gauge.try_admit(Some(2)));
        assert!(gauge.try_admit(Some(2)));
        assert!(!gauge.try_admit(Some(2)));
        gauge.release();
        assert!(gauge.try_admit(Some(2)));
        // Uncapped always admits.
        let open = ConnGauge::default();
        for _ in 0..100 {
            assert!(open.try_admit(None));
        }
    }
}
