//! The TCP face: a std-only, thread-per-connection accept loop.
//!
//! No async runtime exists in this workspace (and none is needed for
//! the target workload: long-lived sessions streaming large batches —
//! throughput-bound, not connection-count-bound), so the server is the
//! simplest thing that scales to that shape: one OS thread per
//! connection, each running [`serve_session`] over a
//! [`TcpTransport`](crate::transport::TcpTransport), sharing nothing.
//!
//! [`Server::spawn`] runs the accept loop in the background and returns
//! a [`ServerHandle`] whose [`shutdown`](ServerHandle::shutdown) stops
//! accepting and joins the remaining sessions (disconnect clients
//! first, or shutdown will wait for them). [`Server::serve_sessions`]
//! is the inline variant for examples and CI: serve exactly `n`
//! connections, then return.

use crate::session::serve_session;
use crate::transport::IoTransport;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// A bound listener, not yet accepting.
#[derive(Debug)]
pub struct Server {
    listener: TcpListener,
}

impl Server {
    /// Binds the listener (use port 0 for an ephemeral port, then read
    /// [`Server::local_addr`]).
    ///
    /// # Errors
    ///
    /// Any [`io::Error`] from [`TcpListener::bind`].
    pub fn bind<A: ToSocketAddrs>(addr: A) -> io::Result<Server> {
        Ok(Server {
            listener: TcpListener::bind(addr)?,
        })
    }

    /// The bound address (the ephemeral port when bound to port 0).
    ///
    /// # Errors
    ///
    /// Any [`io::Error`] from [`TcpListener::local_addr`].
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Accepts and serves exactly `sessions` connections (each on its
    /// own thread), joins them all, then returns — the inline mode the
    /// client/server example pair and CI smoke tests use.
    ///
    /// # Errors
    ///
    /// Any [`io::Error`] from accepting.
    pub fn serve_sessions(&self, sessions: usize) -> io::Result<()> {
        let mut handles = Vec::with_capacity(sessions);
        for _ in 0..sessions {
            let (stream, _) = self.listener.accept()?;
            handles.push(spawn_session(stream));
        }
        for handle in handles {
            let _ = handle.join();
        }
        Ok(())
    }

    /// Starts the accept loop on a background thread.
    ///
    /// # Errors
    ///
    /// Any [`io::Error`] from reading the local address.
    pub fn spawn(self) -> io::Result<ServerHandle> {
        let addr = self.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = Arc::clone(&stop);
        let listener = self.listener;
        let accept = std::thread::Builder::new()
            .name("sinr-server-accept".into())
            .spawn(move || {
                let mut sessions: Vec<JoinHandle<()>> = Vec::new();
                for stream in listener.incoming() {
                    if stop_flag.load(Ordering::SeqCst) {
                        break;
                    }
                    if let Ok(stream) = stream {
                        sessions.push(spawn_session(stream));
                    }
                    // Reap sessions that already finished so the list
                    // stays proportional to *live* connections.
                    sessions.retain(|h| !h.is_finished());
                }
                for handle in sessions {
                    let _ = handle.join();
                }
            })
            .expect("spawn accept thread");
        Ok(ServerHandle {
            addr,
            stop,
            accept: Some(accept),
        })
    }
}

fn spawn_session(stream: TcpStream) -> JoinHandle<()> {
    // Request/response framing with small Mutate frames: Nagle +
    // delayed ACK would serialize every round trip on a timer tick
    // (measured ~100× on the churn_stream bench). Frames are written
    // whole, so there is nothing for Nagle to coalesce anyway.
    let _ = stream.set_nodelay(true);
    std::thread::Builder::new()
        .name("sinr-server-session".into())
        .spawn(move || serve_session(IoTransport::new(stream)))
        .expect("spawn session thread")
}

/// A running background server (see [`Server::spawn`]).
///
/// Dropping the handle shuts the server down (same as
/// [`ServerHandle::shutdown`]).
#[derive(Debug)]
pub struct ServerHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// The address clients connect to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting, then joins the accept loop and every live
    /// session. Sessions end when their client disconnects — close the
    /// clients before calling this, or it will wait for them.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        let Some(accept) = self.accept.take() else {
            return;
        };
        self.stop.store(true, Ordering::SeqCst);
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        let _ = accept.join();
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}
