//! A 2-d kd-tree for nearest-neighbour queries.
//!
//! Used as the `O(log n)` proximity dispatch of the point-location data
//! structure (Theorem 3): given a query point, only the nearest station
//! can possibly be heard (Observation 2.2), and the kd-tree finds it
//! without the naive linear scan.

use sinr_geometry::Point;

/// A static 2-d kd-tree over a set of sites.
///
/// Construction is `O(n log n)` by median splitting; nearest-neighbour
/// queries run in expected `O(log n)` for well-distributed sites (worst
/// case `O(n)`, as for all kd-trees).
///
/// # Examples
///
/// ```
/// use sinr_geometry::Point;
/// use sinr_voronoi::KdTree;
///
/// let tree = KdTree::build(vec![
///     Point::new(0.0, 0.0),
///     Point::new(5.0, 5.0),
///     Point::new(-3.0, 4.0),
/// ]);
/// let (idx, dist) = tree.nearest(Point::new(4.5, 4.5)).unwrap();
/// assert_eq!(idx, 1);
/// assert!(dist < 1.0);
/// ```
#[derive(Debug, Clone)]
pub struct KdTree {
    /// Site positions in original order.
    sites: Vec<Point>,
    /// Tree nodes; `nodes[0]` is the root (when non-empty).
    nodes: Vec<Node>,
}

#[derive(Debug, Clone, Copy)]
struct Node {
    /// Index into `sites`.
    site: usize,
    /// Split axis: 0 = x, 1 = y.
    axis: u8,
    /// Left child index in `nodes`, `usize::MAX` for none.
    left: usize,
    /// Right child index in `nodes`, `usize::MAX` for none.
    right: usize,
}

const NONE: usize = usize::MAX;

impl KdTree {
    /// Builds a kd-tree over the given sites (kept in original index
    /// order for stable identification).
    pub fn build(sites: Vec<Point>) -> Self {
        let mut order: Vec<usize> = (0..sites.len()).collect();
        let mut nodes = Vec::with_capacity(sites.len());
        if !sites.is_empty() {
            build_rec(&sites, &mut order[..], 0, &mut nodes);
        }
        KdTree { sites, nodes }
    }

    /// Number of sites.
    pub fn len(&self) -> usize {
        self.sites.len()
    }

    /// True when the tree holds no sites.
    pub fn is_empty(&self) -> bool {
        self.sites.is_empty()
    }

    /// The site positions.
    pub fn sites(&self) -> &[Point] {
        &self.sites
    }

    /// The nearest site to `q`: returns `(site_index, distance)`, or
    /// `None` for an empty tree.
    pub fn nearest(&self, q: Point) -> Option<(usize, f64)> {
        if self.nodes.is_empty() {
            return None;
        }
        let mut best = (NONE, f64::INFINITY);
        self.search(0, q, &mut best);
        Some((best.0, best.1.sqrt()))
    }

    /// The nearest site under a relabelling: `map` sends each kd-tree
    /// site slot to its *current* label, or `None` for a tombstoned slot
    /// (which is skipped). Ties at equal squared distance break toward
    /// the smallest **label** — matching what [`KdTree::nearest`] over a
    /// freshly built tree of the live sites would report. Returns
    /// `(label, squared_distance)`, or `None` when the tree is empty or
    /// every slot is tombstoned.
    ///
    /// This is the query path of incrementally maintained trees (the
    /// engine-side tombstone + overflow scheme of
    /// `sinr_core::engine::VoronoiAssisted`): the static tree structure
    /// is untouched, dead slots merely stop contributing candidates —
    /// pruning stays conservative, so correctness is unaffected.
    pub fn nearest_mapped<F>(&self, q: Point, map: F) -> Option<(usize, f64)>
    where
        F: Fn(usize) -> Option<usize>,
    {
        if self.nodes.is_empty() {
            return None;
        }
        let mut best: Option<(usize, f64)> = None;
        self.search_mapped(0, q, &map, &mut best);
        best
    }

    fn search_mapped<F>(&self, node_idx: usize, q: Point, map: &F, best: &mut Option<(usize, f64)>)
    where
        F: Fn(usize) -> Option<usize>,
    {
        let node = self.nodes[node_idx];
        let site = self.sites[node.site];
        if let Some(label) = map(node.site) {
            let d2 = site.dist_sq(q);
            let better = match *best {
                None => true,
                Some((bl, bd)) => d2 < bd || (d2 == bd && label < bl),
            };
            if better {
                *best = Some((label, d2));
            }
        }
        let diff = if node.axis == 0 {
            q.x - site.x
        } else {
            q.y - site.y
        };
        let (near, far) = if diff <= 0.0 {
            (node.left, node.right)
        } else {
            (node.right, node.left)
        };
        if near != NONE {
            self.search_mapped(near, q, map, best);
        }
        let radius = best.map_or(f64::INFINITY, |(_, d)| d);
        if far != NONE && diff * diff <= radius {
            self.search_mapped(far, q, map, best);
        }
    }

    fn search(&self, node_idx: usize, q: Point, best: &mut (usize, f64)) {
        let node = self.nodes[node_idx];
        let site = self.sites[node.site];
        let d2 = site.dist_sq(q);
        if d2 < best.1 || (d2 == best.1 && node.site < best.0) {
            *best = (node.site, d2);
        }
        let diff = if node.axis == 0 {
            q.x - site.x
        } else {
            q.y - site.y
        };
        let (near, far) = if diff <= 0.0 {
            (node.left, node.right)
        } else {
            (node.right, node.left)
        };
        if near != NONE {
            self.search(near, q, best);
        }
        if far != NONE && diff * diff <= best.1 {
            self.search(far, q, best);
        }
    }
}

fn build_rec(sites: &[Point], order: &mut [usize], axis: u8, nodes: &mut Vec<Node>) -> usize {
    debug_assert!(!order.is_empty());
    let mid = order.len() / 2;
    order.select_nth_unstable_by(mid, |&a, &b| {
        let (ka, kb) = if axis == 0 {
            (sites[a].x, sites[b].x)
        } else {
            (sites[a].y, sites[b].y)
        };
        ka.partial_cmp(&kb).unwrap_or(std::cmp::Ordering::Equal)
    });
    let site = order[mid];
    let this = nodes.len();
    nodes.push(Node {
        site,
        axis,
        left: NONE,
        right: NONE,
    });
    let next_axis = 1 - axis;
    // Split the order slice around the median without re-borrowing `this`.
    let (left_slice, rest) = order.split_at_mut(mid);
    let right_slice = &mut rest[1..];
    if !left_slice.is_empty() {
        let l = build_rec(sites, left_slice, next_axis, nodes);
        nodes[this].left = l;
    }
    if !right_slice.is_empty() {
        let r = build_rec(sites, right_slice, next_axis, nodes);
        nodes[this].right = r;
    }
    this
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive::naive_nearest;

    fn pseudo_points(n: usize, seed: u64, scale: f64) -> Vec<Point> {
        let mut state = seed;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f64 / (1u64 << 31) as f64) * scale - scale / 2.0
        };
        (0..n).map(|_| Point::new(next(), next())).collect()
    }

    #[test]
    fn empty_and_single() {
        assert!(KdTree::build(vec![]).nearest(Point::ORIGIN).is_none());
        let t = KdTree::build(vec![Point::new(1.0, 2.0)]);
        let (i, d) = t.nearest(Point::ORIGIN).unwrap();
        assert_eq!(i, 0);
        assert!((d - 5f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn agrees_with_naive_on_random_sets() {
        for n in [2usize, 3, 10, 100, 500] {
            let sites = pseudo_points(n, 0xC0FFEE + n as u64, 20.0);
            let tree = KdTree::build(sites.clone());
            let queries = pseudo_points(200, 0xBEEF + n as u64, 30.0);
            for q in queries {
                let naive = naive_nearest(&sites, q).unwrap();
                let (found, dist) = tree.nearest(q).unwrap();
                // Equal distance is fine (ties); otherwise indexes must match.
                let dn = sites[naive].dist(q);
                assert!(
                    (dist - dn).abs() < 1e-9,
                    "n={n}: kd dist {dist} vs naive {dn} at {q}"
                );
                if (sites[found].dist(q) - dn).abs() > 1e-12 {
                    panic!("n={n}: kd-tree returned non-nearest site");
                }
            }
        }
    }

    #[test]
    fn nearest_mapped_skips_tombstones_and_relabels() {
        let sites = pseudo_points(200, 0xABBA, 20.0);
        let tree = KdTree::build(sites.clone());
        // Tombstone every third site; relabel the rest by `+ 1000`.
        let map = |s: usize| (!s.is_multiple_of(3)).then_some(s + 1000);
        let queries = pseudo_points(100, 0x5EED, 25.0);
        for q in queries {
            let got = tree.nearest_mapped(q, map);
            // Brute force over live sites with the same tie rule.
            let mut want: Option<(usize, f64)> = None;
            for (s, p) in sites.iter().enumerate() {
                let Some(label) = map(s) else { continue };
                let d2 = p.dist_sq(q);
                let better = match want {
                    None => true,
                    Some((bl, bd)) => d2 < bd || (d2 == bd && label < bl),
                };
                if better {
                    want = Some((label, d2));
                }
            }
            assert_eq!(got, want, "nearest_mapped mismatch at {q}");
        }
        // Everything tombstoned → no answer.
        assert_eq!(tree.nearest_mapped(Point::ORIGIN, |_| None), None);
    }

    #[test]
    fn duplicate_sites_handled() {
        let sites = vec![Point::new(1.0, 1.0); 8];
        let tree = KdTree::build(sites);
        let (i, d) = tree.nearest(Point::new(1.0, 1.0)).unwrap();
        assert!(i < 8);
        assert_eq!(d, 0.0);
    }

    #[test]
    fn collinear_sites() {
        let sites: Vec<Point> = (0..20).map(|k| Point::new(k as f64, 0.0)).collect();
        let tree = KdTree::build(sites.clone());
        for k in 0..20 {
            let q = Point::new(k as f64 + 0.3, 5.0);
            let (i, _) = tree.nearest(q).unwrap();
            assert_eq!(i, k, "query over site {k}");
        }
    }

    #[test]
    fn query_at_site_positions() {
        let sites = pseudo_points(50, 99, 10.0);
        let tree = KdTree::build(sites.clone());
        for (k, s) in sites.iter().enumerate() {
            let (i, d) = tree.nearest(*s).unwrap();
            assert!(d < 1e-12);
            // Another site could coincide; distances must agree regardless.
            assert!((sites[i].dist(*s)) < 1e-12, "site {k}");
        }
    }
}
