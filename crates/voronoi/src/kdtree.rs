//! A 2-d kd-tree for nearest-neighbour and weighted nearest-dominator
//! queries.
//!
//! Used as the `O(log n)` proximity dispatch of the point-location data
//! structure (Theorem 3): given a query point, only the nearest station
//! can possibly be heard (Observation 2.2), and the kd-tree finds it
//! without the naive linear scan. For *non-uniform* power assignments
//! the analogous dispatch (Kantor–Lotker–Parter–Peleg) is a weighted
//! Voronoi — power-diagram — cell lookup: the only station that can be
//! heard at `p` is the one maximising `Pᵢ · att(d²(p, sᵢ))`.
//! [`KdTree::build_weighted`] + [`KdTree::strongest_mapped`] answer that
//! argmax exactly by best-first branch-and-bound over per-subtree
//! `(bbox, max weight)` aggregates.

use sinr_geometry::Point;

/// A static 2-d kd-tree over a set of sites.
///
/// Construction is `O(n log n)` by median splitting; nearest-neighbour
/// queries run in expected `O(log n)` for well-distributed sites (worst
/// case `O(n)`, as for all kd-trees).
///
/// # Examples
///
/// ```
/// use sinr_geometry::Point;
/// use sinr_voronoi::KdTree;
///
/// let tree = KdTree::build(vec![
///     Point::new(0.0, 0.0),
///     Point::new(5.0, 5.0),
///     Point::new(-3.0, 4.0),
/// ]);
/// let (idx, dist) = tree.nearest(Point::new(4.5, 4.5)).unwrap();
/// assert_eq!(idx, 1);
/// assert!(dist < 1.0);
/// ```
#[derive(Debug, Clone)]
pub struct KdTree {
    /// Site positions in original order.
    sites: Vec<Point>,
    /// Tree nodes; `nodes[0]` is the root (when non-empty).
    nodes: Vec<Node>,
    /// Per-site weights (transmit powers), parallel to `sites`. Empty
    /// for trees built with [`KdTree::build`]; populated by
    /// [`KdTree::build_weighted`].
    weights: Vec<f64>,
    /// Per-node subtree aggregates, parallel to `nodes` (weighted trees
    /// only): the bounding box of every site in the subtree plus the
    /// maximum weight found there — the branch-and-bound data of
    /// [`KdTree::strongest_mapped`]. Aggregates cover *all* slots,
    /// tombstoned or not, so mapped pruning stays conservative.
    agg: Vec<SubtreeAgg>,
}

#[derive(Debug, Clone, Copy)]
struct Node {
    /// Index into `sites`.
    site: usize,
    /// Split axis: 0 = x, 1 = y.
    axis: u8,
    /// Left child index in `nodes`, `usize::MAX` for none.
    left: usize,
    /// Right child index in `nodes`, `usize::MAX` for none.
    right: usize,
}

#[derive(Debug, Clone, Copy)]
struct SubtreeAgg {
    min_x: f64,
    min_y: f64,
    max_x: f64,
    max_y: f64,
    max_w: f64,
}

impl SubtreeAgg {
    /// Squared distance from `q` to this subtree's bounding box (zero
    /// when `q` lies inside it). For non-finite `q` the `max(0.0)`
    /// clamps turn NaN components into zero, so a NaN query is never
    /// pruned — the search degenerates to a full visit, as it must.
    fn min_dist_sq(&self, q: Point) -> f64 {
        let dx = (self.min_x - q.x).max(0.0).max(q.x - self.max_x);
        let dy = (self.min_y - q.y).max(0.0).max(q.y - self.max_y);
        dx * dx + dy * dy
    }
}

const NONE: usize = usize::MAX;

/// Relative slack on the branch-and-bound upper bound of
/// [`KdTree::strongest_mapped`]: `att` is only *mathematically*
/// monotone in `d²`; its floating-point realisation (e.g.
/// `powf(-α/2)`) may wobble by an ulp across nearby arguments. Widening
/// the bound by one part in 10¹² keeps pruning sound against that
/// wobble without costing measurable extra visits.
const STRONGEST_BOUND_SLACK: f64 = 1e-12;

impl KdTree {
    /// Builds a kd-tree over the given sites (kept in original index
    /// order for stable identification).
    pub fn build(sites: Vec<Point>) -> Self {
        let mut order: Vec<usize> = (0..sites.len()).collect();
        let mut nodes = Vec::with_capacity(sites.len());
        if !sites.is_empty() {
            build_rec(&sites, &mut order[..], 0, &mut nodes);
        }
        KdTree {
            sites,
            nodes,
            weights: Vec::new(),
            agg: Vec::new(),
        }
    }

    /// Builds a kd-tree with a positive weight (transmit power) per
    /// site, enabling [`KdTree::strongest_mapped`]. The tree shape is
    /// identical to [`KdTree::build`] over the same sites — weights
    /// only add per-subtree `(bbox, max weight)` aggregates, computed
    /// in one reverse pass (children are pushed after their parent, so
    /// child aggregates are always ready first).
    ///
    /// # Panics
    ///
    /// When `weights.len() != sites.len()`.
    pub fn build_weighted(sites: Vec<Point>, weights: Vec<f64>) -> Self {
        assert_eq!(
            sites.len(),
            weights.len(),
            "one weight per site ({} sites, {} weights)",
            sites.len(),
            weights.len()
        );
        let mut tree = KdTree::build(sites);
        tree.weights = weights;
        tree.agg = vec![
            SubtreeAgg {
                min_x: f64::INFINITY,
                min_y: f64::INFINITY,
                max_x: f64::NEG_INFINITY,
                max_y: f64::NEG_INFINITY,
                max_w: 0.0,
            };
            tree.nodes.len()
        ];
        for i in (0..tree.nodes.len()).rev() {
            let node = tree.nodes[i];
            let site = tree.sites[node.site];
            let mut a = SubtreeAgg {
                min_x: site.x,
                min_y: site.y,
                max_x: site.x,
                max_y: site.y,
                max_w: tree.weights[node.site],
            };
            for child in [node.left, node.right] {
                if child != NONE {
                    let c = tree.agg[child];
                    a.min_x = a.min_x.min(c.min_x);
                    a.min_y = a.min_y.min(c.min_y);
                    a.max_x = a.max_x.max(c.max_x);
                    a.max_y = a.max_y.max(c.max_y);
                    a.max_w = a.max_w.max(c.max_w);
                }
            }
            tree.agg[i] = a;
        }
        tree
    }

    /// Number of sites.
    pub fn len(&self) -> usize {
        self.sites.len()
    }

    /// True when the tree holds no sites.
    pub fn is_empty(&self) -> bool {
        self.sites.is_empty()
    }

    /// The site positions.
    pub fn sites(&self) -> &[Point] {
        &self.sites
    }

    /// The per-site weights, parallel to [`KdTree::sites`] — empty for
    /// trees built with [`KdTree::build`].
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// The nearest site to `q`: returns `(site_index, distance)`, or
    /// `None` for an empty tree.
    pub fn nearest(&self, q: Point) -> Option<(usize, f64)> {
        if self.nodes.is_empty() {
            return None;
        }
        let mut best = (NONE, f64::INFINITY);
        self.search(0, q, &mut best);
        Some((best.0, best.1.sqrt()))
    }

    /// The nearest site under a relabelling: `map` sends each kd-tree
    /// site slot to its *current* label, or `None` for a tombstoned slot
    /// (which is skipped). Ties at equal squared distance break toward
    /// the smallest **label** — matching what [`KdTree::nearest`] over a
    /// freshly built tree of the live sites would report. Returns
    /// `(label, squared_distance)`, or `None` when the tree is empty or
    /// every slot is tombstoned.
    ///
    /// This is the query path of incrementally maintained trees (the
    /// engine-side tombstone + overflow scheme of
    /// `sinr_core::engine::VoronoiAssisted`): the static tree structure
    /// is untouched, dead slots merely stop contributing candidates —
    /// pruning stays conservative, so correctness is unaffected.
    pub fn nearest_mapped<F>(&self, q: Point, map: F) -> Option<(usize, f64)>
    where
        F: Fn(usize) -> Option<usize>,
    {
        if self.nodes.is_empty() {
            return None;
        }
        let mut best: Option<(usize, f64)> = None;
        self.search_mapped(0, q, &map, &mut best);
        best
    }

    /// The site maximising `weight · att(d²(q, site))` under a
    /// relabelling — the power-diagram (weighted Voronoi) cell lookup.
    ///
    /// `att` is the path-loss attenuation, a non-negative and
    /// (mathematically) non-increasing function of squared distance,
    /// e.g. `1/d²` or `d^(-α)`. `map` sends each kd-tree site slot to
    /// its current label, or `None` for a tombstoned slot (skipped).
    /// Ties at equal strength break toward the smallest **label**, so a
    /// linear argmax with the first-index rule over the live sites
    /// reports the same site. Returns `(label, squared_distance,
    /// strength)`, or `None` when the tree was not
    /// [weighted](KdTree::build_weighted), is empty, or every slot is
    /// tombstoned.
    ///
    /// The search is exact best-first branch-and-bound: a subtree is
    /// visited unless `att(d²_min-to-bbox) · max_weight`, widened by
    /// [`STRONGEST_BOUND_SLACK`], is *strictly* below the best strength
    /// so far — visiting on equality is what preserves the
    /// smallest-label tie rule.
    pub fn strongest_mapped<A, F>(&self, q: Point, att: A, map: F) -> Option<(usize, f64, f64)>
    where
        A: Fn(f64) -> f64,
        F: Fn(usize) -> Option<usize>,
    {
        if self.nodes.is_empty() || self.agg.is_empty() {
            return None;
        }
        let mut best: Option<(usize, f64, f64)> = None;
        self.search_strongest(0, q, &att, &map, &mut best);
        best
    }

    fn search_strongest<A, F>(
        &self,
        node_idx: usize,
        q: Point,
        att: &A,
        map: &F,
        best: &mut Option<(usize, f64, f64)>,
    ) where
        A: Fn(f64) -> f64,
        F: Fn(usize) -> Option<usize>,
    {
        let node = self.nodes[node_idx];
        if let Some(label) = map(node.site) {
            let d2 = self.sites[node.site].dist_sq(q);
            let strength = att(d2) * self.weights[node.site];
            let better = match *best {
                None => true,
                Some((bl, _, bs)) => strength > bs || (strength == bs && label < bl),
            };
            if better {
                *best = Some((label, d2, strength));
            }
        }
        // Best-first: descend the child with the larger upper bound
        // first, then re-check the other child against the improved
        // best. Prune only on *strict* inequality.
        let bound = |child: usize| -> f64 {
            if child == NONE {
                return f64::NEG_INFINITY;
            }
            let a = self.agg[child];
            att(a.min_dist_sq(q)) * a.max_w * (1.0 + STRONGEST_BOUND_SLACK)
        };
        let (mut first, mut second) = (node.left, node.right);
        let (mut first_ub, mut second_ub) = (bound(first), bound(second));
        if second_ub > first_ub {
            std::mem::swap(&mut first, &mut second);
            std::mem::swap(&mut first_ub, &mut second_ub);
        }
        // The negated comparison is load-bearing: `ub >= bs` would
        // prune on NaN bounds (NaN query), `!(ub < bs)` never does.
        #[allow(clippy::neg_cmp_op_on_partial_ord)]
        let not_pruned = |ub: f64, best: &Option<(usize, f64, f64)>| match *best {
            None => true,
            Some((_, _, bs)) => !(ub < bs),
        };
        if first != NONE && not_pruned(first_ub, best) {
            self.search_strongest(first, q, att, map, best);
        }
        if second != NONE && not_pruned(second_ub, best) {
            self.search_strongest(second, q, att, map, best);
        }
    }

    fn search_mapped<F>(&self, node_idx: usize, q: Point, map: &F, best: &mut Option<(usize, f64)>)
    where
        F: Fn(usize) -> Option<usize>,
    {
        let node = self.nodes[node_idx];
        let site = self.sites[node.site];
        if let Some(label) = map(node.site) {
            let d2 = site.dist_sq(q);
            let better = match *best {
                None => true,
                Some((bl, bd)) => d2 < bd || (d2 == bd && label < bl),
            };
            if better {
                *best = Some((label, d2));
            }
        }
        let diff = if node.axis == 0 {
            q.x - site.x
        } else {
            q.y - site.y
        };
        let (near, far) = if diff <= 0.0 {
            (node.left, node.right)
        } else {
            (node.right, node.left)
        };
        if near != NONE {
            self.search_mapped(near, q, map, best);
        }
        let radius = best.map_or(f64::INFINITY, |(_, d)| d);
        if far != NONE && diff * diff <= radius {
            self.search_mapped(far, q, map, best);
        }
    }

    fn search(&self, node_idx: usize, q: Point, best: &mut (usize, f64)) {
        let node = self.nodes[node_idx];
        let site = self.sites[node.site];
        let d2 = site.dist_sq(q);
        if d2 < best.1 || (d2 == best.1 && node.site < best.0) {
            *best = (node.site, d2);
        }
        let diff = if node.axis == 0 {
            q.x - site.x
        } else {
            q.y - site.y
        };
        let (near, far) = if diff <= 0.0 {
            (node.left, node.right)
        } else {
            (node.right, node.left)
        };
        if near != NONE {
            self.search(near, q, best);
        }
        if far != NONE && diff * diff <= best.1 {
            self.search(far, q, best);
        }
    }
}

fn build_rec(sites: &[Point], order: &mut [usize], axis: u8, nodes: &mut Vec<Node>) -> usize {
    debug_assert!(!order.is_empty());
    let mid = order.len() / 2;
    order.select_nth_unstable_by(mid, |&a, &b| {
        let (ka, kb) = if axis == 0 {
            (sites[a].x, sites[b].x)
        } else {
            (sites[a].y, sites[b].y)
        };
        ka.partial_cmp(&kb).unwrap_or(std::cmp::Ordering::Equal)
    });
    let site = order[mid];
    let this = nodes.len();
    nodes.push(Node {
        site,
        axis,
        left: NONE,
        right: NONE,
    });
    let next_axis = 1 - axis;
    // Split the order slice around the median without re-borrowing `this`.
    let (left_slice, rest) = order.split_at_mut(mid);
    let right_slice = &mut rest[1..];
    if !left_slice.is_empty() {
        let l = build_rec(sites, left_slice, next_axis, nodes);
        nodes[this].left = l;
    }
    if !right_slice.is_empty() {
        let r = build_rec(sites, right_slice, next_axis, nodes);
        nodes[this].right = r;
    }
    this
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive::naive_nearest;

    fn pseudo_points(n: usize, seed: u64, scale: f64) -> Vec<Point> {
        let mut state = seed;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f64 / (1u64 << 31) as f64) * scale - scale / 2.0
        };
        (0..n).map(|_| Point::new(next(), next())).collect()
    }

    #[test]
    fn empty_and_single() {
        assert!(KdTree::build(vec![]).nearest(Point::ORIGIN).is_none());
        let t = KdTree::build(vec![Point::new(1.0, 2.0)]);
        let (i, d) = t.nearest(Point::ORIGIN).unwrap();
        assert_eq!(i, 0);
        assert!((d - 5f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn agrees_with_naive_on_random_sets() {
        for n in [2usize, 3, 10, 100, 500] {
            let sites = pseudo_points(n, 0xC0FFEE + n as u64, 20.0);
            let tree = KdTree::build(sites.clone());
            let queries = pseudo_points(200, 0xBEEF + n as u64, 30.0);
            for q in queries {
                let naive = naive_nearest(&sites, q).unwrap();
                let (found, dist) = tree.nearest(q).unwrap();
                // Equal distance is fine (ties); otherwise indexes must match.
                let dn = sites[naive].dist(q);
                assert!(
                    (dist - dn).abs() < 1e-9,
                    "n={n}: kd dist {dist} vs naive {dn} at {q}"
                );
                if (sites[found].dist(q) - dn).abs() > 1e-12 {
                    panic!("n={n}: kd-tree returned non-nearest site");
                }
            }
        }
    }

    #[test]
    fn nearest_mapped_skips_tombstones_and_relabels() {
        let sites = pseudo_points(200, 0xABBA, 20.0);
        let tree = KdTree::build(sites.clone());
        // Tombstone every third site; relabel the rest by `+ 1000`.
        let map = |s: usize| (!s.is_multiple_of(3)).then_some(s + 1000);
        let queries = pseudo_points(100, 0x5EED, 25.0);
        for q in queries {
            let got = tree.nearest_mapped(q, map);
            // Brute force over live sites with the same tie rule.
            let mut want: Option<(usize, f64)> = None;
            for (s, p) in sites.iter().enumerate() {
                let Some(label) = map(s) else { continue };
                let d2 = p.dist_sq(q);
                let better = match want {
                    None => true,
                    Some((bl, bd)) => d2 < bd || (d2 == bd && label < bl),
                };
                if better {
                    want = Some((label, d2));
                }
            }
            assert_eq!(got, want, "nearest_mapped mismatch at {q}");
        }
        // Everything tombstoned → no answer.
        assert_eq!(tree.nearest_mapped(Point::ORIGIN, |_| None), None);
    }

    /// Brute-force weighted argmax with the exact tie rule of
    /// `strongest_mapped`: strictly stronger wins, equal strength
    /// breaks toward the smaller label.
    fn naive_strongest(
        sites: &[Point],
        weights: &[f64],
        q: Point,
        att: impl Fn(f64) -> f64,
        map: impl Fn(usize) -> Option<usize>,
    ) -> Option<(usize, f64, f64)> {
        let mut want: Option<(usize, f64, f64)> = None;
        for (s, p) in sites.iter().enumerate() {
            let Some(label) = map(s) else { continue };
            let d2 = p.dist_sq(q);
            let strength = att(d2) * weights[s];
            let better = match want {
                None => true,
                Some((bl, _, bs)) => strength > bs || (strength == bs && label < bl),
            };
            if better {
                want = Some((label, d2, strength));
            }
        }
        want
    }

    fn pseudo_weights(n: usize, seed: u64) -> Vec<f64> {
        let mut state = seed;
        (0..n)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                0.25 + ((state >> 33) as f64 / (1u64 << 32) as f64) * 4.0
            })
            .collect()
    }

    #[test]
    fn strongest_mapped_agrees_with_naive_argmax() {
        for n in [2usize, 3, 10, 100, 500] {
            let sites = pseudo_points(n, 0xC0FFEE + n as u64, 20.0);
            let weights = pseudo_weights(n, 0xF1E5 + n as u64);
            let tree = KdTree::build_weighted(sites.clone(), weights.clone());
            let queries = pseudo_points(200, 0xBEEF + n as u64, 30.0);
            // Both supported path-loss shapes: exact-op 1/d² and the
            // powf-based general α (where the bound slack matters).
            type Att = fn(f64) -> f64;
            let atts: [(&str, Att); 2] =
                [("inv_sq", |d2| 1.0 / d2), ("alpha3", |d2| d2.powf(-1.5))];
            for (name, att) in atts {
                for q in &queries {
                    let got = tree.strongest_mapped(*q, att, Some);
                    let want = naive_strongest(&sites, &weights, *q, att, Some);
                    assert_eq!(got, want, "{name} n={n}: strongest mismatch at {q}");
                }
                // Queries at site positions: infinite strength, ties by
                // label.
                for s in &sites {
                    let got = tree.strongest_mapped(*s, att, Some);
                    let want = naive_strongest(&sites, &weights, *s, att, Some);
                    assert_eq!(got, want, "{name} n={n}: site-query mismatch at {s}");
                }
            }
        }
    }

    #[test]
    fn strongest_mapped_skips_tombstones_and_relabels() {
        let sites = pseudo_points(300, 0xABBA, 20.0);
        let weights = pseudo_weights(300, 0x77E1);
        let tree = KdTree::build_weighted(sites.clone(), weights.clone());
        let map = |s: usize| (!s.is_multiple_of(3)).then_some(s + 1000);
        let att = |d2: f64| 1.0 / d2;
        for q in pseudo_points(150, 0x5EED, 25.0) {
            let got = tree.strongest_mapped(q, att, map);
            let want = naive_strongest(&sites, &weights, q, att, map);
            assert_eq!(got, want, "strongest_mapped mismatch at {q}");
        }
        // Everything tombstoned → no answer; unweighted trees have no
        // aggregates and decline rather than guessing.
        assert_eq!(tree.strongest_mapped(Point::ORIGIN, att, |_| None), None);
        let unweighted = KdTree::build(sites);
        assert_eq!(unweighted.strongest_mapped(Point::ORIGIN, att, Some), None);
    }

    #[test]
    fn strongest_mapped_handles_non_finite_queries() {
        let sites = pseudo_points(64, 0x404, 10.0);
        let weights = pseudo_weights(64, 0x405);
        let tree = KdTree::build_weighted(sites.clone(), weights.clone());
        let att = |d2: f64| 1.0 / d2;
        // Infinite queries: every strength is an exact 0.0, so the
        // label tie rule fully determines the answer.
        for q in [
            Point::new(f64::INFINITY, 1.0),
            Point::new(-2.0, f64::NEG_INFINITY),
        ] {
            let got = tree.strongest_mapped(q, att, Some);
            let want = naive_strongest(&sites, &weights, q, att, Some);
            assert_eq!(got, want, "infinite query {q}");
        }
        // NaN queries: all strengths are NaN and no order is defined, so
        // the contract is weaker — the search must still answer (NaN
        // bounds never prune into `None`) with a NaN strength the caller
        // resolves to Silent, and the label must be a live site.
        for q in [Point::new(f64::NAN, 0.0), Point::new(0.0, f64::NAN)] {
            let (label, d2, strength) = tree
                .strongest_mapped(q, att, Some)
                .expect("NaN query still answers");
            assert!(label < sites.len());
            assert!(d2.is_nan() && strength.is_nan(), "NaN query {q}");
        }
    }

    #[test]
    fn duplicate_sites_handled() {
        let sites = vec![Point::new(1.0, 1.0); 8];
        let tree = KdTree::build(sites);
        let (i, d) = tree.nearest(Point::new(1.0, 1.0)).unwrap();
        assert!(i < 8);
        assert_eq!(d, 0.0);
    }

    #[test]
    fn collinear_sites() {
        let sites: Vec<Point> = (0..20).map(|k| Point::new(k as f64, 0.0)).collect();
        let tree = KdTree::build(sites.clone());
        for k in 0..20 {
            let q = Point::new(k as f64 + 0.3, 5.0);
            let (i, _) = tree.nearest(q).unwrap();
            assert_eq!(i, k, "query over site {k}");
        }
    }

    #[test]
    fn query_at_site_positions() {
        let sites = pseudo_points(50, 99, 10.0);
        let tree = KdTree::build(sites.clone());
        for (k, s) in sites.iter().enumerate() {
            let (i, d) = tree.nearest(*s).unwrap();
            assert!(d < 1e-12);
            // Another site could coincide; distances must agree regardless.
            assert!((sites[i].dist(*s)) < 1e-12, "site {k}");
        }
    }
}
