//! # sinr-voronoi
//!
//! Proximity substrate for the `sinr-diagrams` workspace: Voronoi diagrams
//! and nearest-neighbour search.
//!
//! Two results of the paper make proximity structures load-bearing:
//!
//! * **Observation 2.2** — in a non-trivial uniform power network, every
//!   reception zone `Hᵢ` is *strictly contained* in the Voronoi cell of
//!   its station. Consequently only the nearest station can possibly be
//!   heard at a query point.
//! * **Theorem 3 / Section 5.2** — the point-location data structure
//!   dispatches each query to the unique candidate station via a
//!   proximity query in `O(log n)`, then consults that station's
//!   per-zone grid structure.
//!
//! [`VoronoiDiagram`] builds explicit convex polygonal cells (half-plane
//! intersection clipped to a window — `O(n² log n)` total, plenty for the
//! paper's scales and handy for rendering and verification);
//! [`KdTree`] answers nearest-neighbour queries in expected `O(log n)`;
//! [`naive_nearest`] is the linear-scan reference both are tested against.

#![deny(missing_docs)]
#![deny(unsafe_code)]

pub mod diagram;
pub mod kdtree;
pub mod naive;

pub use diagram::{VoronoiCell, VoronoiDiagram};
pub use kdtree::KdTree;
pub use naive::naive_nearest;
