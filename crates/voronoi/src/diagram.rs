//! Explicit Voronoi diagrams by half-plane intersection.
//!
//! The cell of site `sᵢ` is the intersection of the half-planes
//! "closer to `sᵢ` than to `sⱼ`" over all `j ≠ i` — each bounded by the
//! *separation line* (perpendicular bisector) of Section 2.1 of the
//! paper. Cells are clipped to a caller-supplied window, making every
//! cell a bounded convex polygon (or empty for far-away duplicates).
//!
//! `O(n² log n)` construction. For the network sizes of the paper's
//! experiments this is immaterial, and the explicit polygons enable
//! verification (Observation 2.2: zone ⊂ cell) and rendering.

use crate::kdtree::KdTree;
use sinr_geometry::{BBox, ConvexPolygon, Line, Point};

/// One Voronoi cell: the site index and its clipped polygon.
#[derive(Debug, Clone, PartialEq)]
pub struct VoronoiCell {
    /// Index of the owning site.
    pub site: usize,
    /// The cell polygon clipped to the diagram window; `None` when the
    /// intersection with the window is empty or degenerate (e.g. a
    /// duplicated site).
    pub polygon: Option<ConvexPolygon>,
}

/// A Voronoi diagram over a set of sites, with explicit clipped cells and
/// an embedded kd-tree for `O(log n)` nearest-site queries.
///
/// # Examples
///
/// ```
/// use sinr_geometry::{BBox, Point};
/// use sinr_voronoi::VoronoiDiagram;
///
/// let sites = vec![Point::new(-1.0, 0.0), Point::new(1.0, 0.0)];
/// let window = BBox::centered_square(5.0);
/// let vd = VoronoiDiagram::build(sites, window);
/// assert_eq!(vd.nearest_site(Point::new(-0.5, 2.0)), Some(0));
/// // The two half-window cells share the full window area.
/// let total: f64 = vd.cells().iter()
///     .filter_map(|c| c.polygon.as_ref().map(|p| p.area()))
///     .sum();
/// assert!((total - window.area()).abs() < 1e-6);
/// ```
#[derive(Debug, Clone)]
pub struct VoronoiDiagram {
    sites: Vec<Point>,
    window: BBox,
    cells: Vec<VoronoiCell>,
    tree: KdTree,
}

impl VoronoiDiagram {
    /// Builds the diagram of `sites` clipped to `window`.
    pub fn build(sites: Vec<Point>, window: BBox) -> Self {
        let cells = (0..sites.len())
            .map(|i| VoronoiCell {
                site: i,
                polygon: cell_polygon(&sites, i, &window),
            })
            .collect();
        let tree = KdTree::build(sites.clone());
        VoronoiDiagram {
            sites,
            window,
            cells,
            tree,
        }
    }

    /// The sites.
    pub fn sites(&self) -> &[Point] {
        &self.sites
    }

    /// The clipping window.
    pub fn window(&self) -> &BBox {
        &self.window
    }

    /// All cells, indexed by site.
    pub fn cells(&self) -> &[VoronoiCell] {
        &self.cells
    }

    /// The cell of site `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn cell(&self, i: usize) -> &VoronoiCell {
        &self.cells[i]
    }

    /// Nearest site to `q` (kd-tree, expected `O(log n)`), or `None` for
    /// an empty diagram.
    pub fn nearest_site(&self, q: Point) -> Option<usize> {
        self.tree.nearest(q).map(|(i, _)| i)
    }

    /// Whether point `q` lies in the (closed, clipped) cell of site `i`.
    pub fn cell_contains(&self, i: usize, q: Point) -> bool {
        self.cells[i]
            .polygon
            .as_ref()
            .is_some_and(|poly| poly.contains(q))
    }
}

/// The clipped cell polygon of site `i`.
fn cell_polygon(sites: &[Point], i: usize, window: &BBox) -> Option<ConvexPolygon> {
    let mut lines: Vec<Line> = Vec::with_capacity(sites.len().saturating_sub(1));
    for (j, s) in sites.iter().enumerate() {
        if j == i {
            continue;
        }
        // Half-plane "closer to sites[i] than to s": negative side of the
        // bisector with the normal pointing from sites[i] to s.
        match Line::bisector(sites[i], *s) {
            Some(line) => lines.push(line),
            None => return None, // duplicate site ⇒ empty cell (measure zero)
        }
    }
    ConvexPolygon::from_halfplanes(window, &lines)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pseudo_points(n: usize, seed: u64) -> Vec<Point> {
        let mut state = seed;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f64 / (1u64 << 31) as f64) * 8.0 - 4.0
        };
        (0..n).map(|_| Point::new(next(), next())).collect()
    }

    #[test]
    fn two_sites_split_the_window() {
        let vd = VoronoiDiagram::build(
            vec![Point::new(-1.0, 0.0), Point::new(1.0, 0.0)],
            BBox::centered_square(4.0),
        );
        // Window [−4,4]² has area 64; the bisector splits it in half.
        let a0 = vd.cell(0).polygon.as_ref().unwrap().area();
        let a1 = vd.cell(1).polygon.as_ref().unwrap().area();
        assert!((a0 - 32.0).abs() < 1e-9, "{a0}");
        assert!((a1 - 32.0).abs() < 1e-9, "{a1}");
        assert!(vd.cell_contains(0, Point::new(-2.0, 1.0)));
        assert!(!vd.cell_contains(0, Point::new(2.0, 1.0)));
    }

    #[test]
    fn cells_partition_window_area() {
        let sites = pseudo_points(12, 7);
        let window = BBox::centered_square(6.0);
        let vd = VoronoiDiagram::build(sites, window);
        let total: f64 = vd
            .cells()
            .iter()
            .filter_map(|c| c.polygon.as_ref().map(|p| p.area()))
            .sum();
        assert!((total - window.area()).abs() < 1e-6, "total {total}");
    }

    #[test]
    fn membership_matches_nearest() {
        let sites = pseudo_points(20, 11);
        let window = BBox::centered_square(6.0);
        let vd = VoronoiDiagram::build(sites.clone(), window);
        // Sample interior points: the containing cell must be the nearest
        // site's cell (up to boundary ties).
        let queries = pseudo_points(300, 5);
        for q in queries {
            if !window.contains(q) {
                continue;
            }
            let nearest = vd.nearest_site(q).unwrap();
            assert!(
                vd.cell_contains(nearest, q),
                "nearest cell must contain its point {q}"
            );
            // And no *strictly closer* other cell contains it.
            for i in 0..sites.len() {
                if i != nearest && vd.cell_contains(i, q) {
                    // Only allowed on boundaries: distances must tie.
                    let dn = sites[nearest].dist(q);
                    let di = sites[i].dist(q);
                    assert!((dn - di).abs() < 1e-7, "cells overlap at {q}");
                }
            }
        }
    }

    #[test]
    fn duplicate_sites_yield_empty_cell() {
        let vd = VoronoiDiagram::build(
            vec![Point::ORIGIN, Point::ORIGIN, Point::new(2.0, 0.0)],
            BBox::centered_square(4.0),
        );
        assert!(vd.cell(0).polygon.is_none());
        assert!(vd.cell(1).polygon.is_none());
        assert!(vd.cell(2).polygon.is_some());
    }

    #[test]
    fn sites_inside_their_own_cells() {
        let sites = pseudo_points(15, 23);
        let window = BBox::centered_square(8.0);
        let vd = VoronoiDiagram::build(sites.clone(), window);
        for (i, s) in sites.iter().enumerate() {
            assert!(vd.cell_contains(i, *s), "site {i} outside its own cell");
        }
    }

    #[test]
    fn far_site_clipped_out() {
        // A site far outside the window may still own window area or not;
        // in this configuration the close sites shadow it completely.
        let vd = VoronoiDiagram::build(
            vec![
                Point::new(0.0, 0.0),
                Point::new(1.0, 0.0),
                Point::new(0.5, 1.0),
                Point::new(1000.0, 0.0),
            ],
            BBox::new(Point::new(-2.0, -2.0), Point::new(3.0, 3.0)),
        );
        assert!(
            vd.cell(3).polygon.is_none(),
            "distant site's cell should be clipped away"
        );
    }
}
