//! Linear-scan nearest neighbour — the reference implementation.

use sinr_geometry::Point;

/// Returns the index of the site nearest to `q` (ties broken by lowest
/// index), or `None` for an empty site set.
///
/// `O(n)` per query; the paper cites this as the baseline the `O(log n)`
/// point-location dispatch improves upon.
///
/// # Examples
///
/// ```
/// use sinr_geometry::Point;
/// use sinr_voronoi::naive_nearest;
///
/// let sites = [Point::new(0.0, 0.0), Point::new(4.0, 0.0)];
/// assert_eq!(naive_nearest(&sites, Point::new(1.0, 0.0)), Some(0));
/// assert_eq!(naive_nearest(&sites, Point::new(3.0, 0.0)), Some(1));
/// // Equidistant: the lower index wins.
/// assert_eq!(naive_nearest(&sites, Point::new(2.0, 0.0)), Some(0));
/// ```
pub fn naive_nearest(sites: &[Point], q: Point) -> Option<usize> {
    let mut best: Option<(usize, f64)> = None;
    for (i, s) in sites.iter().enumerate() {
        let d = s.dist_sq(q);
        match best {
            Some((_, bd)) if bd <= d => {}
            _ => best = Some((i, d)),
        }
    }
    best.map(|(i, _)| i)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_set() {
        assert_eq!(naive_nearest(&[], Point::ORIGIN), None);
    }

    #[test]
    fn single_site() {
        assert_eq!(
            naive_nearest(&[Point::new(5.0, 5.0)], Point::ORIGIN),
            Some(0)
        );
    }

    #[test]
    fn tie_breaking_is_stable() {
        let sites = [
            Point::new(-1.0, 0.0),
            Point::new(1.0, 0.0),
            Point::new(0.0, 1.0),
        ];
        // The origin is equidistant from the first two; index 0 wins.
        assert_eq!(naive_nearest(&sites, Point::ORIGIN), Some(0));
    }
}
