//! Property-based tests for the proximity substrate.

use proptest::prelude::*;
use sinr_geometry::{BBox, Point};
use sinr_voronoi::{naive_nearest, KdTree, VoronoiDiagram};

fn pts(n: std::ops::Range<usize>) -> impl Strategy<Value = Vec<Point>> {
    prop::collection::vec(
        ((-80i32..80), (-80i32..80)).prop_map(|(x, y)| Point::new(x as f64 / 8.0, y as f64 / 8.0)),
        n,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// kd-tree nearest equals the naive scan (in distance; ties may pick
    /// different witnesses).
    #[test]
    fn kdtree_matches_naive(sites in pts(1..60), q in (-200i32..200, -200i32..200)) {
        let q = Point::new(q.0 as f64 / 10.0, q.1 as f64 / 10.0);
        let tree = KdTree::build(sites.clone());
        let (kd_idx, kd_dist) = tree.nearest(q).unwrap();
        let naive_idx = naive_nearest(&sites, q).unwrap();
        let naive_dist = sites[naive_idx].dist(q);
        prop_assert!((kd_dist - naive_dist).abs() < 1e-9,
            "kd {} vs naive {}", kd_dist, naive_dist);
        prop_assert!((sites[kd_idx].dist(q) - naive_dist).abs() < 1e-9);
    }

    /// Voronoi cells tile the window: areas sum to the window area, and
    /// the nearest site's cell contains each sample point.
    #[test]
    fn cells_tile_window(sites in pts(2..15)) {
        // Deduplicate: duplicated sites legitimately lose their cell.
        let mut unique = sites.clone();
        unique.sort_by(|a, b| (a.x, a.y).partial_cmp(&(b.x, b.y)).unwrap());
        unique.dedup_by(|a, b| a.dist(*b) < 1e-9);
        prop_assume!(unique.len() >= 2);
        let window = BBox::centered_square(12.0);
        let vd = VoronoiDiagram::build(unique.clone(), window);
        let total: f64 = vd.cells().iter()
            .filter_map(|c| c.polygon.as_ref().map(|p| p.area()))
            .sum();
        prop_assert!((total - window.area()).abs() < 1e-5,
            "areas {} vs window {}", total, window.area());
        // membership check on a coarse grid
        for gx in -3..=3 {
            for gy in -3..=3 {
                let q = Point::new(gx as f64 * 3.3, gy as f64 * 3.3);
                let n = vd.nearest_site(q).unwrap();
                prop_assert!(vd.cell_contains(n, q), "nearest cell must contain {q}");
            }
        }
    }

    /// Each site lies in its own cell.
    #[test]
    fn sites_in_own_cells(sites in pts(2..20)) {
        let mut unique = sites.clone();
        unique.sort_by(|a, b| (a.x, a.y).partial_cmp(&(b.x, b.y)).unwrap());
        unique.dedup_by(|a, b| a.dist(*b) < 1e-9);
        prop_assume!(unique.len() >= 2);
        let window = BBox::centered_square(15.0);
        let vd = VoronoiDiagram::build(unique.clone(), window);
        for (i, s) in unique.iter().enumerate() {
            prop_assert!(vd.cell_contains(i, *s), "site {i} at {s} outside its cell");
        }
    }
}
