//! Server throughput bench: the streaming protocol end-to-end.
//!
//! Measures `LocateBatch` round trips through a live session — encode,
//! frame, (socket), decode, engine batch, encode runs, frame, decode —
//! for each exact backend over both transports:
//!
//! * `pipe` — the in-process [`PipeTransport`]: pure protocol + engine
//!   cost, no kernel sockets (the floor the TCP numbers are read
//!   against);
//! * `tcp` — a real ephemeral-port loopback connection, thread per
//!   session, exactly what `examples/query_server.rs` serves.
//!
//! A second scenario (`churn_stream`) interleaves a `Mutate` frame (the
//! mobile-station timestep) between bursts, measuring the full
//! mutate+query round trip that PR 3's incremental engines make
//! rebuild-free. A third (`pipelined_stream`, PR 5) re-runs the locate
//! stream with `frames_in_flight ∈ {1, 4, 8}` request frames kept
//! outstanding through `Client::locate_batches_pipelined` — the
//! `frames_in_flight > 1` lines show what hiding the per-burst round
//! trip behind engine compute buys end-to-end. A fourth
//! (`multiplexed`, PR 7) drives many concurrently-connected light
//! clients attached to one registered network, once on the
//! thread-per-connection server and once on the fixed worker pool —
//! the pair of lines quantifies what multiplexing costs (or saves)
//! at the many-light-clients extreme.
//!
//! One JSON line per configuration via `sinr_bench::report::JsonLine`
//! (`"bench":"server_throughput"`); the trend file is
//! `perf/server_throughput.jsonl` and CI archives each run's lines as
//! the `server-throughput-json` artifact.

use rand::{Rng, SeedableRng};
use sinr_bench::report::JsonLine;
use sinr_core::{gen, Network, StationId, SurgeryOp};
use sinr_geometry::Point;
use sinr_server::{serve_in_process, BackendId, Client, Server, Transport};
use std::time::Instant;

const STATIONS: usize = 1024;
const BURST_POINTS: usize = 16_384;
const ROUNDS: usize = 6;
const CHURN_STEPS: usize = 32;
const CHURN_MOVES: usize = 4;
const CHURN_BURST: usize = 1024;
const MUX_CLIENTS: usize = 64;
const MUX_WORKERS: usize = 4;
const MUX_BURSTS: usize = 16;
const MUX_BURST_POINTS: usize = 256;

fn setup() -> (Network, Vec<Point>, Vec<Point>) {
    let half = 2.0 * (STATIONS as f64).sqrt();
    let net = gen::random_uniform_network(0x5EC, STATIONS, half, 0.01, 2.0).unwrap();
    let mut rng = rand::rngs::StdRng::seed_from_u64(0x5EC + 1);
    let burst = gen::uniform_in_box(&mut rng, BURST_POINTS, half * 1.1);
    let churn_burst = gen::uniform_in_box(&mut rng, CHURN_BURST, half * 1.1);
    (net, burst, churn_burst)
}

/// `ROUNDS` bursts streamed with `in_flight` request frames kept
/// outstanding (the PR-5 pipelined client): the engine computes one
/// burst while later bursts are already in the transport, so the tiled
/// batch executor is never starved between bursts. Returns ns/point
/// end-to-end; answers are length-checked here and pinned bit-identical
/// to the request/response mode by the e2e suite.
fn pipelined_scenario<T: Transport>(
    client: &mut Client<T>,
    burst: &[Point],
    in_flight: usize,
) -> f64 {
    let bursts: Vec<&[Point]> = (0..ROUNDS).map(|_| burst).collect();
    // Warm-up round.
    let (_, first) = client.locate_batch(burst).expect("warm-up burst");
    assert_eq!(first.len(), burst.len());
    let start = Instant::now();
    let results = client
        .locate_batches_pipelined(&bursts, in_flight)
        .expect("pipelined stream");
    let ns = start.elapsed().as_nanos() as f64 / (ROUNDS * burst.len()) as f64;
    assert_eq!(results.len(), ROUNDS);
    for (_, answers) in &results {
        assert_eq!(answers.len(), burst.len());
    }
    ns
}

/// `ROUNDS` locate bursts through an established session; returns
/// ns/point end-to-end.
fn stream_scenario<T: Transport>(client: &mut Client<T>, burst: &[Point]) -> f64 {
    // Warm-up round (first batch pays engine-side cache warming).
    let (_, first) = client.locate_batch(burst).expect("warm-up burst");
    assert_eq!(first.len(), burst.len());
    let start = Instant::now();
    for _ in 0..ROUNDS {
        let (_, answers) = client.locate_batch(burst).expect("burst");
        assert_eq!(answers.len(), burst.len());
    }
    start.elapsed().as_nanos() as f64 / (ROUNDS * burst.len()) as f64
}

/// `CHURN_STEPS` timesteps of `Mutate` (moves) + a burst; returns
/// (ns/step, ns/point-within-step).
fn churn_scenario<T: Transport>(
    client: &mut Client<T>,
    net: &Network,
    revision0: u64,
    burst: &[Point],
) -> (f64, f64) {
    let mut rng = rand::rngs::StdRng::seed_from_u64(0xC0DE);
    let half = 2.0 * (STATIONS as f64).sqrt();
    let mut revision = revision0;
    let start = Instant::now();
    for _ in 0..CHURN_STEPS {
        let ops: Vec<SurgeryOp> = (0..CHURN_MOVES)
            .map(|_| SurgeryOp::Move {
                id: StationId(rng.gen_range(0..net.len())),
                to: Point::new(rng.gen_range(-half..half), rng.gen_range(-half..half)),
            })
            .collect();
        revision = client.mutate(revision, &ops).expect("timestep mutate");
        let (rev, answers) = client.locate_batch(burst).expect("timestep burst");
        assert_eq!(rev, revision);
        assert_eq!(answers.len(), burst.len());
    }
    let ns = start.elapsed().as_nanos() as f64;
    (
        ns / CHURN_STEPS as f64,
        ns / (CHURN_STEPS * burst.len()) as f64,
    )
}

fn emit_stream(transport: &str, backend: BackendId, ns_per_point: f64) {
    let line = JsonLine::new("server_throughput")
        .str("scenario", "stream")
        .str("transport", transport)
        .str("backend", backend.name())
        .int("stations", STATIONS as u64)
        .int("burst_points", BURST_POINTS as u64)
        .int("rounds", ROUNDS as u64)
        .num("ns_per_point", ns_per_point)
        .num("points_per_sec", 1e9 / ns_per_point);
    println!("{}", line.render());
}

fn emit_pipelined(transport: &str, backend: BackendId, in_flight: usize, ns_per_point: f64) {
    let line = JsonLine::new("server_throughput")
        .str("scenario", "pipelined_stream")
        .str("transport", transport)
        .str("backend", backend.name())
        .int("stations", STATIONS as u64)
        .int("burst_points", BURST_POINTS as u64)
        .int("rounds", ROUNDS as u64)
        .int("frames_in_flight", in_flight as u64)
        .num("ns_per_point", ns_per_point)
        .num("points_per_sec", 1e9 / ns_per_point);
    println!("{}", line.render());
}

/// `MUX_CLIENTS` concurrently-connected light clients, all attached to
/// one registered network, each streaming `MUX_BURSTS` small bursts —
/// the many-light-clients shape the worker pool exists for. Returns
/// aggregate ns/point across all clients (wall time / total points).
fn multiplexed_scenario(addr: std::net::SocketAddr) -> f64 {
    let mut rng = rand::rngs::StdRng::seed_from_u64(0x30B);
    let half = 2.0 * (STATIONS as f64).sqrt();
    let burst = gen::uniform_in_box(&mut rng, MUX_BURST_POINTS, half * 1.1);

    // Connect + attach everyone before the clock starts; the bench
    // measures steady-state serving, not connection setup.
    let mut clients: Vec<Client<_>> = (0..MUX_CLIENTS)
        .map(|_| {
            let mut c = Client::connect(addr).expect("connect");
            c.attach("mux", BackendId::SimdScan, 0.0).expect("attach");
            c
        })
        .collect();
    let start = Instant::now();
    std::thread::scope(|s| {
        for client in &mut clients {
            let burst = &burst;
            s.spawn(move || {
                for _ in 0..MUX_BURSTS {
                    let (_, answers) = client.locate_batch(burst).expect("mux burst");
                    assert_eq!(answers.len(), burst.len());
                }
            });
        }
    });
    let total_points = (MUX_CLIENTS * MUX_BURSTS * MUX_BURST_POINTS) as f64;
    start.elapsed().as_nanos() as f64 / total_points
}

fn emit_multiplexed(serving: &str, workers: usize, ns_per_point: f64) {
    let line = JsonLine::new("server_throughput")
        .str("scenario", "multiplexed")
        .str("transport", "tcp")
        .str("serving", serving)
        .str("backend", BackendId::SimdScan.name())
        .int("stations", STATIONS as u64)
        .int("clients", MUX_CLIENTS as u64)
        .int("workers", workers as u64)
        .int("bursts_per_client", MUX_BURSTS as u64)
        .int("burst_points", MUX_BURST_POINTS as u64)
        .num("ns_per_point", ns_per_point)
        .num("points_per_sec", 1e9 / ns_per_point);
    println!("{}", line.render());
}

fn emit_churn(transport: &str, backend: BackendId, (ns_per_step, ns_per_point): (f64, f64)) {
    let line = JsonLine::new("server_throughput")
        .str("scenario", "churn_stream")
        .str("transport", transport)
        .str("backend", backend.name())
        .int("stations", STATIONS as u64)
        .int("steps", CHURN_STEPS as u64)
        .int("moves_per_step", CHURN_MOVES as u64)
        .int("burst_points", CHURN_BURST as u64)
        .num("ns_per_step", ns_per_step)
        .num("ns_per_point", ns_per_point);
    println!("{}", line.render());
}

fn main() {
    let (net, burst, churn_burst) = setup();
    let backends = [
        BackendId::ExactScan,
        BackendId::SimdScan,
        BackendId::VoronoiAssisted,
    ];

    // In-process pipe: protocol + engine cost, no sockets.
    for backend in backends {
        let mut client = serve_in_process();
        client.bind_network(backend, 0.0, &net).expect("pipe bind");
        let ns = stream_scenario(&mut client, &burst);
        emit_stream("pipe", backend, ns);
    }

    // Real TCP loopback, one server for all sessions.
    let server = Server::bind("127.0.0.1:0").expect("bind ephemeral");
    let handle = server.spawn().expect("spawn server");
    for backend in backends {
        let mut client = Client::connect(handle.addr()).expect("connect");
        client.bind_network(backend, 0.0, &net).expect("tcp bind");
        let ns = stream_scenario(&mut client, &burst);
        emit_stream("tcp", backend, ns);
    }

    // Pipelined stream: the same bursts with multiple request frames
    // kept in flight, both transports, on the throughput backend.
    // `frames_in_flight = 1` degenerates to the request/response loop
    // (the baseline the >1 windows are read against).
    for in_flight in [1usize, 4, 8] {
        let mut client = serve_in_process();
        client
            .bind_network(BackendId::SimdScan, 0.0, &net)
            .expect("pipe bind");
        let ns = pipelined_scenario(&mut client, &burst, in_flight);
        emit_pipelined("pipe", BackendId::SimdScan, in_flight, ns);
    }
    for in_flight in [1usize, 4, 8] {
        let mut client = Client::connect(handle.addr()).expect("connect");
        client
            .bind_network(BackendId::SimdScan, 0.0, &net)
            .expect("tcp bind");
        let ns = pipelined_scenario(&mut client, &burst, in_flight);
        emit_pipelined("tcp", BackendId::SimdScan, in_flight, ns);
    }

    // Churn stream: mutate + burst per timestep, both transports, on
    // the backend the dynamic path optimizes hardest (voronoi).
    {
        let mut client = serve_in_process();
        let rev = client
            .bind_network(BackendId::VoronoiAssisted, 0.0, &net)
            .expect("pipe bind");
        let churn = churn_scenario(&mut client, &net, rev, &churn_burst);
        emit_churn("pipe", BackendId::VoronoiAssisted, churn);
    }
    {
        let mut client = Client::connect(handle.addr()).expect("connect");
        let rev = client
            .bind_network(BackendId::VoronoiAssisted, 0.0, &net)
            .expect("tcp bind");
        let churn = churn_scenario(&mut client, &net, rev, &churn_burst);
        emit_churn("tcp", BackendId::VoronoiAssisted, churn);
    }
    handle.shutdown();

    // Multiplexed: many light clients on one shared named network,
    // thread-per-connection vs the fixed worker pool (PR 7). Same
    // protocol, same engine snapshots — the lines differ only in how
    // sessions are scheduled onto OS threads.
    {
        let server = Server::bind("127.0.0.1:0").expect("bind ephemeral");
        let handle = server.spawn().expect("spawn threaded");
        let mut registrar = Client::connect(handle.addr()).expect("connect");
        registrar.register_network("mux", &net).expect("register");
        let ns = multiplexed_scenario(handle.addr());
        emit_multiplexed("thread_per_conn", MUX_CLIENTS, ns);
        drop(registrar);
        handle.shutdown();
    }
    {
        let server = Server::bind("127.0.0.1:0").expect("bind ephemeral");
        let handle = server.spawn_pooled(MUX_WORKERS).expect("spawn pooled");
        let mut registrar = Client::connect(handle.addr()).expect("connect");
        registrar.register_network("mux", &net).expect("register");
        let ns = multiplexed_scenario(handle.addr());
        emit_multiplexed("worker_pool", MUX_WORKERS, ns);
        drop(registrar);
        handle.shutdown();
    }
}
