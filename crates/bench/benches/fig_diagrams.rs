//! Bench: rasterising the paper's figure diagrams.

use criterion::{criterion_group, criterion_main, Criterion};
use sinr_diagram::{figures, ReceptionMap};
use sinr_geometry::BBox;
use sinr_graphs::compare::compare_on_grid;
use std::hint::black_box;

fn bench_figures(c: &mut Criterion) {
    let mut group = c.benchmark_group("figure_rasters_128x128");
    group.sample_size(20);
    let fig1 = figures::figure1();
    group.bench_function("fig1_panel_a", |b| {
        b.iter(|| black_box(ReceptionMap::compute(&fig1.panel_a, fig1.window, 128, 128)))
    });
    let fig5 = figures::figure5();
    group.bench_function("fig5_beta_0.3", |b| {
        b.iter(|| black_box(ReceptionMap::compute(&fig5.network, fig5.window, 128, 128)))
    });
    let fig2 = figures::figure2();
    group.bench_function("fig2_udg_diagram", |b| {
        b.iter(|| {
            black_box(ReceptionMap::compute_protocol(
                &fig2.udg,
                &[true; 4],
                fig2.window,
                128,
                128,
            ))
        })
    });
    group.bench_function("fig2_model_comparison_61x61", |b| {
        b.iter(|| {
            black_box(compare_on_grid(
                &fig2.network,
                &fig2.udg,
                &[true; 4],
                &BBox::centered_square(3.0),
                61,
            ))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_figures);
criterion_main!(benches);
