//! Kernel bench: SINR evaluation (Eq. (1)) — the primitive everything
//! else multiplies. The naive point-location query of the paper is one
//! `heard_at` (`O(n)`); Theorem 3's structure replaces it with `O(log n)`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sinr_core::{gen, StationId};
use sinr_geometry::Point;
use std::hint::black_box;

fn bench_sinr_eval(c: &mut Criterion) {
    let mut group = c.benchmark_group("sinr_eval");
    for n in [4usize, 16, 64, 256] {
        let net = gen::random_uniform_network(42, n, 10.0, 0.01, 2.0).unwrap();
        let p = Point::new(0.37, -0.91);
        group.bench_with_input(BenchmarkId::new("sinr_single", n), &n, |b, _| {
            b.iter(|| black_box(net.sinr(StationId(0), black_box(p))))
        });
        group.bench_with_input(BenchmarkId::new("heard_at_naive", n), &n, |b, _| {
            b.iter(|| black_box(net.heard_at(black_box(p))))
        });
        group.bench_with_input(BenchmarkId::new("interference", n), &n, |b, _| {
            b.iter(|| black_box(net.interference(StationId(0), black_box(p))))
        });
    }
    group.finish();
}

fn bench_zone_ray(c: &mut Criterion) {
    let mut group = c.benchmark_group("zone_boundary_radius");
    for n in [4usize, 16, 64] {
        let net =
            gen::random_separated_network(7, n, 3.0 * (n as f64).sqrt(), 1.2, 0.01, 2.0).unwrap();
        let zone = net.reception_zone(StationId(0));
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| black_box(zone.boundary_radius(black_box(1.1))))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_sinr_eval, bench_zone_ray);
criterion_main!(benches);
