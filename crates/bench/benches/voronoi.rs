//! Bench: the proximity substrate (Observation 2.2 dispatch).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::{Rng, SeedableRng};
use sinr_geometry::{BBox, Point};
use sinr_voronoi::{naive_nearest, KdTree, VoronoiDiagram};
use std::hint::black_box;

fn sites(n: usize) -> Vec<Point> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(17);
    (0..n)
        .map(|_| Point::new(rng.gen_range(-10.0..10.0), rng.gen_range(-10.0..10.0)))
        .collect()
}

fn bench_nearest(c: &mut Criterion) {
    let mut group = c.benchmark_group("nearest_site");
    for n in [16usize, 64, 256, 1024] {
        let pts = sites(n);
        let tree = KdTree::build(pts.clone());
        let q = Point::new(0.123, -4.56);
        group.bench_with_input(BenchmarkId::new("kdtree", n), &n, |b, _| {
            b.iter(|| black_box(tree.nearest(black_box(q))))
        });
        group.bench_with_input(BenchmarkId::new("naive", n), &n, |b, _| {
            b.iter(|| black_box(naive_nearest(&pts, black_box(q))))
        });
    }
    group.finish();
}

fn bench_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("proximity_build");
    group.sample_size(20);
    for n in [16usize, 64, 256] {
        let pts = sites(n);
        group.bench_with_input(BenchmarkId::new("kdtree", n), &n, |b, _| {
            b.iter(|| black_box(KdTree::build(pts.clone())))
        });
        group.bench_with_input(BenchmarkId::new("voronoi_cells", n), &n, |b, _| {
            b.iter(|| {
                black_box(VoronoiDiagram::build(
                    pts.clone(),
                    BBox::centered_square(12.0),
                ))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_nearest, bench_build);
criterion_main!(benches);
