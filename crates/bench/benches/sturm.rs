//! Kernel bench: the Sturm segment test of Section 5.1.
//!
//! The paper's cost model: the restricted characteristic polynomial has
//! degree `m ≤ 2n` and the segment test runs in `O(m²)`. The
//! `restricted_poly` rows isolate the polynomial construction; the
//! `segment_test` rows measure construction + chain + counting — the full
//! per-edge cost inside the BRP, whose `O(n·ε⁻¹)` invocations give
//! Theorem 3's `O(n³·ε⁻¹)` preprocessing bound.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sinr_algebra::SturmChain;
use sinr_core::{charpoly, gen, StationId};
use sinr_geometry::{Point, Segment};
use sinr_pointloc::segment_test;
use std::hint::black_box;

fn bench_restricted_poly(c: &mut Criterion) {
    let mut group = c.benchmark_group("restricted_charpoly");
    for n in [2usize, 8, 32, 128] {
        let net = gen::random_uniform_network(11, n, 10.0, 0.02, 2.0).unwrap();
        let seg = Segment::new(Point::new(-3.0, -1.0), Point::new(4.0, 2.0));
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| black_box(charpoly::restricted_to_segment(&net, StationId(0), &seg)))
        });
    }
    group.finish();
}

fn bench_sturm_chain(c: &mut Criterion) {
    let mut group = c.benchmark_group("sturm_chain_build");
    for n in [2usize, 8, 32, 128] {
        let net = gen::random_uniform_network(11, n, 10.0, 0.02, 2.0).unwrap();
        let seg = Segment::new(Point::new(-3.0, -1.0), Point::new(4.0, 2.0));
        let h = charpoly::restricted_to_segment(&net, StationId(0), &seg);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| black_box(SturmChain::new(&h)))
        });
    }
    group.finish();
}

fn bench_segment_test(c: &mut Criterion) {
    let mut group = c.benchmark_group("segment_test");
    for n in [2usize, 8, 32, 128] {
        let net = gen::random_uniform_network(11, n, 10.0, 0.02, 2.0).unwrap();
        let seg = Segment::new(Point::new(-3.0, -1.0), Point::new(4.0, 2.0));
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| black_box(segment_test(&net, StationId(0), &seg)))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_restricted_poly,
    bench_sturm_chain,
    bench_segment_test
);
criterion_main!(benches);
