//! Bench: convexity verification (Theorem 1 / Figure 5 machinery).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sinr_core::{convexity, gen, StationId};
use sinr_diagram::figures;
use sinr_geometry::{Point, Vector};
use std::hint::black_box;

fn bench_segment_sampling(c: &mut Criterion) {
    let mut group = c.benchmark_group("convexity_segment_check");
    group.sample_size(20);
    for n in [3usize, 6, 12] {
        let net = gen::random_separated_network(3, n, 6.0, 1.2, 0.02, 2.0).unwrap();
        let zone = net.reception_zone(StationId(0));
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| black_box(convexity::check_zone_convexity(&zone, 12, 6, 1e-7)))
        });
    }
    group.finish();
}

fn bench_line_crossings(c: &mut Criterion) {
    let mut group = c.benchmark_group("convexity_line_crossings");
    for n in [3usize, 6, 12, 24] {
        let net = gen::random_separated_network(3, n, 6.0, 1.2, 0.02, 2.0).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                black_box(convexity::boundary_crossings_on_line(
                    &net,
                    StationId(0),
                    Point::new(0.3, -0.2),
                    Vector::new(1.0, 0.7),
                    -40.0,
                    40.0,
                ))
            })
        });
    }
    group.finish();
}

fn bench_figure5(c: &mut Criterion) {
    let fig = figures::figure5();
    let mut group = c.benchmark_group("figure5_nonconvexity_detection");
    group.sample_size(10);
    group.bench_function("segment_check_beta_0.3", |b| {
        b.iter(|| {
            let zone = fig.network.reception_zone(StationId(0));
            black_box(convexity::check_zone_convexity(&zone, 24, 12, 1e-7))
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_segment_sampling,
    bench_line_crossings,
    bench_figure5
);
criterion_main!(benches);
