//! Engine bench: the batched query surface vs the scalar baseline.
//!
//! Measures `heard_at` (the scalar `O(n²)`-per-point loop) against
//! `ExactScan::locate_batch`, `SimdScan::locate_batch` (the explicitly
//! vectorized scan — the JSON lines record which kernel the runtime
//! detection picked) and `VoronoiAssisted::locate_batch` (amortized
//! `O(n)` per point, work-stolen across cores) at
//! `n ∈ {16, 256, 4096}` stations × 100k query points, then emits one
//! JSON line per configuration through `sinr_bench::report::JsonLine` so
//! the perf trajectory is grep-able from run logs (CI archives these
//! lines as the `engine-batch-json` artifact).

use criterion::{criterion_group, BenchmarkId, Criterion};
use rand::SeedableRng;
use sinr_bench::report::JsonLine;
use sinr_core::engine::{ExactScan, Located, QueryEngine, VoronoiAssisted};
use sinr_core::simd::SimdScan;
use sinr_core::{gen, Network};
use sinr_geometry::Point;
use std::hint::black_box;
use std::time::Instant;

const STATION_COUNTS: [usize; 3] = [16, 256, 4096];
const QUERY_POINTS: usize = 100_000;

/// Constant station density: the window half-width grows with `√n`.
fn window_half(n: usize) -> f64 {
    2.0 * (n as f64).sqrt()
}

fn setup(n: usize) -> (Network, Vec<Point>) {
    let half = window_half(n);
    let net = gen::random_uniform_network(42 + n as u64, n, half, 0.01, 2.0).unwrap();
    let mut rng = rand::rngs::StdRng::seed_from_u64(7 + n as u64);
    let queries = gen::uniform_in_box(&mut rng, QUERY_POINTS, half * 1.1);
    (net, queries)
}

/// Points per scalar iteration — the scalar loop is `O(n²)` per point, so
/// the full 100k batch would take minutes at `n = 4096`; per-point costs
/// are what the comparison normalizes on.
fn scalar_sample(n: usize) -> usize {
    (QUERY_POINTS / n).clamp(64, 8192)
}

fn bench_locate(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_locate_batch");
    group.sample_size(10);
    for n in STATION_COUNTS {
        let (net, queries) = setup(n);
        let scalar_points = scalar_sample(n);
        group.bench_with_input(BenchmarkId::new("scalar_heard_at", n), &n, |b, _| {
            b.iter(|| {
                let mut heard = 0usize;
                for q in &queries[..scalar_points] {
                    heard += usize::from(net.heard_at(black_box(*q)).is_some());
                }
                black_box(heard)
            })
        });
        let exact = ExactScan::new(&net);
        let mut out = vec![Located::Silent; queries.len()];
        group.bench_with_input(BenchmarkId::new("exact_scan_batch", n), &n, |b, _| {
            b.iter(|| {
                exact.locate_batch(black_box(&queries), &mut out);
                black_box(out.last().copied())
            })
        });
        let simd = SimdScan::new(&net);
        group.bench_with_input(BenchmarkId::new("simd_scan_batch", n), &n, |b, _| {
            b.iter(|| {
                simd.locate_batch(black_box(&queries), &mut out);
                black_box(out.last().copied())
            })
        });
        let voronoi = VoronoiAssisted::new(&net);
        group.bench_with_input(BenchmarkId::new("voronoi_assisted_batch", n), &n, |b, _| {
            b.iter(|| {
                voronoi.locate_batch(black_box(&queries), &mut out);
                black_box(out.last().copied())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_locate);

/// One timed pass, reported as ns/point.
fn time_ns_per_point(points: usize, mut f: impl FnMut()) -> f64 {
    let start = Instant::now();
    f();
    start.elapsed().as_nanos() as f64 / points as f64
}

/// The JSON perf record: per-point costs and engine speedups, one line
/// per station count.
fn emit_json_lines() {
    for n in STATION_COUNTS {
        let (net, queries) = setup(n);
        let scalar_points = scalar_sample(n);
        let exact = ExactScan::new(&net);
        let simd = SimdScan::new(&net);
        let voronoi = VoronoiAssisted::new(&net);
        let mut out = vec![Located::Silent; queries.len()];

        // Correctness guard: the backends must agree with the ground
        // truth before their timings mean anything.
        voronoi.locate_batch(&queries, &mut out);
        for (q, got) in queries.iter().zip(&out).take(512) {
            assert_eq!(got.station(), net.heard_at(*q), "engine mismatch at {q}");
        }
        simd.locate_batch(&queries, &mut out);
        for (q, got) in queries.iter().zip(&out).take(512) {
            assert_eq!(got.station(), net.heard_at(*q), "SimdScan mismatch at {q}");
        }

        let scalar_ns = time_ns_per_point(scalar_points, || {
            for q in &queries[..scalar_points] {
                black_box(net.heard_at(black_box(*q)));
            }
        });
        let exact_ns = time_ns_per_point(queries.len(), || {
            exact.locate_batch(black_box(&queries), &mut out);
        });
        let simd_ns = time_ns_per_point(queries.len(), || {
            simd.locate_batch(black_box(&queries), &mut out);
        });
        let voronoi_ns = time_ns_per_point(queries.len(), || {
            voronoi.locate_batch(black_box(&queries), &mut out);
        });

        let line = JsonLine::new("engine_batch")
            .int("stations", n as u64)
            .int("query_points", queries.len() as u64)
            .int("scalar_sample_points", scalar_points as u64)
            .str("simd_kernel", simd.kernel().name())
            .num("scalar_heard_at_ns_per_point", scalar_ns)
            .num("exact_scan_ns_per_point", exact_ns)
            .num("simd_scan_ns_per_point", simd_ns)
            .num("voronoi_assisted_ns_per_point", voronoi_ns)
            .num("speedup_exact_vs_scalar", scalar_ns / exact_ns)
            .num("speedup_simd_vs_scalar", scalar_ns / simd_ns)
            .num("speedup_simd_vs_exact", exact_ns / simd_ns)
            .num("speedup_voronoi_vs_scalar", scalar_ns / voronoi_ns);
        println!("{}", line.render());
    }
}

fn main() {
    benches();
    emit_json_lines();
}
