//! Engine bench: the batched query surface vs the scalar baseline, and
//! the dynamic-churn scenario.
//!
//! Measures `heard_at` (the scalar `O(n²)`-per-point loop) against
//! `ExactScan::locate_batch`, `SimdScan::locate_batch` (the explicitly
//! vectorized scan — the JSON lines record which kernel the runtime
//! detection picked) and `VoronoiAssisted::locate_batch` (amortized
//! `O(n)` per point, work-stolen across cores) at
//! `n ∈ {16, 256, 4096}` stations × 100k query points, then emits one
//! JSON line per configuration through `sinr_bench::report::JsonLine` so
//! the perf trajectory is grep-able from run logs (CI archives these
//! lines as the `engine-batch-json` artifact).
//!
//! The **tiled** scenario (PR 5) compares the spatially-coherent tiled
//! executor — what `locate_batch` runs for ≥ 2048 points × ≥ 128
//! stations — against the per-point path (the same serial kernels
//! driven through `batch_map`), per backend, answers asserted
//! identical; its `"scenario":"tiled"` lines carry the executor's
//! pruning statistics (mean candidate-set size, certified-decision
//! fallback fraction).
//!
//! The **nonuniform** scenario (PR 9) runs `VoronoiAssisted` on a
//! clustered-power network — where dispatch is the weighted
//! (power-diagram) kd-tree walk, not nearest-station — against
//! `ExactScan` on the same network (the engine non-uniform queries
//! fell back to before weighted dispatch), answers asserted
//! bit-identical to a same-kernel `SimdScan`; its
//! `"scenario":"nonuniform"` line must clear a 2× speedup floor.
//!
//! The **churn** scenario measures the epoch-versioned dynamic path: a
//! timestep mixes in-place surgery (moves + an add + a swap-remove) with
//! a `locate_batch` burst, and the same deterministic op/query sequence
//! is run twice per backend — once keeping the engine in sync through
//! incremental `NetworkDelta::apply`, once rebuilding the engine from
//! scratch every step (the pre-dynamic behaviour of
//! `examples/mobile_stations.rs`). Answers are asserted identical; the
//! JSON lines (`"scenario":"churn"`) record ns/step for both and their
//! ratio.
//!
//! The **channel_mc** scenario (PR 6) measures the stochastic-channel
//! Monte-Carlo executor — `reception_probability_batch`, whose SoA
//! columns, Morton tiling and unit-power tile envelopes are built once
//! with only per-trial gains varying — against the rebuild-per-trial
//! baseline (draw the same gain stream, build a scaled `Network` and a
//! fresh engine every trial, run its one-shot `locate_batch`).
//! Probabilities are asserted bit-identical; the `"scenario":
//! "channel_mc"` lines record trials/sec, ns per point-trial on both
//! paths and their ratio, which must stay ≥ 5×.
//!
//! The **scheduling** scenario condenses `examples/link_scheduling.rs`
//! into a timed loop — greedy SINR-threshold link scheduling with
//! per-slot fading gains applied as power surgery — and emits one
//! `"scenario":"scheduling"` line with ns/step and queue outcomes.
//!
//! The **heatmap** scenario (PR 8) rasterises a megapixel reception map
//! over a zoomed window of the `n = 4096` network twice — dense
//! (`ReceptionMap::compute_with_engine`, every pixel centre located)
//! and hierarchical (`compute_hierarchical_with_engine`, quadtree
//! refinement over interval certificates) — asserts the rasters equal,
//! and emits one `"scenario":"heatmap"` line per grid size with
//! `ns_per_point` (hierarchical, the headline), `dense_ns_per_point`,
//! their ratio and `cells_evaluated_fraction` (the share of pixels that
//! actually paid per-point evaluation). The bench itself fails if the
//! hierarchical path falls below its per-grid speedup floor (5× at
//! 1024², 10× at 2048²) or evaluates ≥ 15% of the 2048² grid, so a
//! trend line certifies the pruning, not just the wall clock.

use criterion::{criterion_group, BenchmarkId, Criterion};
use rand::{Rng, SeedableRng};
use sinr_bench::report::JsonLine;
use sinr_core::engine::{
    batch_map, BoxedEngine, ExactScan, Located, QueryEngine, VoronoiAssisted, BATCH_TILE,
};
use sinr_core::simd::{SimdKernel, SimdScan};
use sinr_core::tile::{self, Select, TileConfig, TileStats};
use sinr_core::{gen, ChannelModel, McConfig, Network, StationId, SurgeryOp};
use sinr_diagram::ReceptionMap;
use sinr_geometry::{BBox, Point};
use std::hint::black_box;
use std::time::Instant;

const STATION_COUNTS: [usize; 3] = [16, 256, 4096];
const QUERY_POINTS: usize = 100_000;

/// Constant station density: the window half-width grows with `√n`.
fn window_half(n: usize) -> f64 {
    2.0 * (n as f64).sqrt()
}

fn setup(n: usize) -> (Network, Vec<Point>) {
    let half = window_half(n);
    let net = gen::random_uniform_network(42 + n as u64, n, half, 0.01, 2.0).unwrap();
    let mut rng = rand::rngs::StdRng::seed_from_u64(7 + n as u64);
    let queries = gen::uniform_in_box(&mut rng, QUERY_POINTS, half * 1.1);
    (net, queries)
}

/// Points per scalar iteration — the scalar loop is `O(n²)` per point, so
/// the full 100k batch would take minutes at `n = 4096`; per-point costs
/// are what the comparison normalizes on.
fn scalar_sample(n: usize) -> usize {
    (QUERY_POINTS / n).clamp(64, 8192)
}

fn bench_locate(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_locate_batch");
    group.sample_size(10);
    for n in STATION_COUNTS {
        let (net, queries) = setup(n);
        let scalar_points = scalar_sample(n);
        group.bench_with_input(BenchmarkId::new("scalar_heard_at", n), &n, |b, _| {
            b.iter(|| {
                let mut heard = 0usize;
                for q in &queries[..scalar_points] {
                    heard += usize::from(net.heard_at(black_box(*q)).is_some());
                }
                black_box(heard)
            })
        });
        let exact = ExactScan::new(&net);
        let mut out = vec![Located::Silent; queries.len()];
        group.bench_with_input(BenchmarkId::new("exact_scan_batch", n), &n, |b, _| {
            b.iter(|| {
                exact.locate_batch(black_box(&queries), &mut out);
                black_box(out.last().copied())
            })
        });
        let simd = SimdScan::new(&net);
        group.bench_with_input(BenchmarkId::new("simd_scan_batch", n), &n, |b, _| {
            b.iter(|| {
                simd.locate_batch(black_box(&queries), &mut out);
                black_box(out.last().copied())
            })
        });
        let voronoi = VoronoiAssisted::new(&net);
        group.bench_with_input(BenchmarkId::new("voronoi_assisted_batch", n), &n, |b, _| {
            b.iter(|| {
                voronoi.locate_batch(black_box(&queries), &mut out);
                black_box(out.last().copied())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_locate);

/// One timed pass, reported as ns/point.
fn time_ns_per_point(points: usize, mut f: impl FnMut()) -> f64 {
    let start = Instant::now();
    f();
    start.elapsed().as_nanos() as f64 / points as f64
}

/// The JSON perf record: per-point costs and engine speedups, one line
/// per station count.
fn emit_json_lines() {
    for n in STATION_COUNTS {
        let (net, queries) = setup(n);
        let scalar_points = scalar_sample(n);
        let exact = ExactScan::new(&net);
        let simd = SimdScan::new(&net);
        let voronoi = VoronoiAssisted::new(&net);
        let mut out = vec![Located::Silent; queries.len()];

        // Correctness guard: the backends must agree with the ground
        // truth before their timings mean anything.
        voronoi.locate_batch(&queries, &mut out);
        for (q, got) in queries.iter().zip(&out).take(512) {
            assert_eq!(got.station(), net.heard_at(*q), "engine mismatch at {q}");
        }
        simd.locate_batch(&queries, &mut out);
        for (q, got) in queries.iter().zip(&out).take(512) {
            assert_eq!(got.station(), net.heard_at(*q), "SimdScan mismatch at {q}");
        }

        let scalar_ns = time_ns_per_point(scalar_points, || {
            for q in &queries[..scalar_points] {
                black_box(net.heard_at(black_box(*q)));
            }
        });
        let exact_ns = time_ns_per_point(queries.len(), || {
            exact.locate_batch(black_box(&queries), &mut out);
        });
        let simd_ns = time_ns_per_point(queries.len(), || {
            simd.locate_batch(black_box(&queries), &mut out);
        });
        let voronoi_ns = time_ns_per_point(queries.len(), || {
            voronoi.locate_batch(black_box(&queries), &mut out);
        });

        let line = JsonLine::new("engine_batch")
            .int("stations", n as u64)
            .int("query_points", queries.len() as u64)
            .int("scalar_sample_points", scalar_points as u64)
            .str("simd_kernel", simd.kernel().name())
            .int("avx512_detected", SimdKernel::Avx512.is_supported() as u64)
            .num("scalar_heard_at_ns_per_point", scalar_ns)
            .num("exact_scan_ns_per_point", exact_ns)
            .num("simd_scan_ns_per_point", simd_ns)
            .num("voronoi_assisted_ns_per_point", voronoi_ns)
            .num("speedup_exact_vs_scalar", scalar_ns / exact_ns)
            .num("speedup_simd_vs_scalar", scalar_ns / simd_ns)
            .num("speedup_simd_vs_exact", exact_ns / simd_ns)
            .num("speedup_voronoi_vs_scalar", scalar_ns / voronoi_ns);
        println!("{}", line.render());

        // Tiled-vs-per-point lines only where the tiled executor
        // actually engages — at n = 16 both timed paths are the same
        // per-point scheduler and a "tiled" line would be noise.
        if TileConfig::default().engages(queries.len(), n) {
            emit_tiled_json_lines(n, &net, &queries);
        }
    }
}

/// The tiled-executor record: the spatially-coherent tiled batch path
/// (what `locate_batch` now runs for large batches) against the PR 3/4
/// per-point path (the same serial kernels driven point-by-point
/// through `batch_map`), per backend, answers asserted identical. One
/// `"scenario":"tiled"` line per backend per station count, with the
/// executor's pruning statistics.
fn emit_tiled_json_lines(n: usize, net: &Network, queries: &[Point]) {
    let exact = ExactScan::new(net);
    let simd = SimdScan::new(net);
    let voronoi = VoronoiAssisted::new(net);
    let mut tiled = vec![Located::Silent; queries.len()];
    let mut perpoint = vec![Located::Silent; queries.len()];

    let emit = |backend: &str, kernel: &str, tiled_ns: f64, pp_ns: f64, stats: TileStats| {
        let line = JsonLine::new("engine_batch")
            .str("scenario", "tiled")
            .int("stations", n as u64)
            .str("backend", backend)
            .str("simd_kernel", kernel)
            .int("avx512_detected", SimdKernel::Avx512.is_supported() as u64)
            .int("query_points", queries.len() as u64)
            .int("tile_points", BATCH_TILE as u64)
            .num("tiled_ns_per_point", tiled_ns)
            .num("perpoint_ns_per_point", pp_ns)
            .num("speedup_tiled_vs_perpoint", pp_ns / tiled_ns)
            .int("tiles", stats.tiles)
            .int("pruned_tiles", stats.pruned_tiles)
            .num(
                "mean_candidates",
                stats.mean_candidates().unwrap_or(f64::NAN),
            )
            .num(
                "fallback_fraction",
                stats.fallback_points as f64 / stats.points as f64,
            );
        println!("{}", line.render());
    };

    // ExactScan: tiled locate_batch vs the per-point scalar kernel.
    let tiled_ns = time_ns_per_point(queries.len(), || {
        exact.locate_batch(black_box(queries), &mut tiled);
    });
    let pp_ns = time_ns_per_point(queries.len(), || {
        batch_map(black_box(queries), &mut perpoint, |p| exact.locate(*p));
    });
    assert_eq!(tiled, perpoint, "ExactScan tiled/per-point answers diverge");
    let stats = tile::locate_batch_tiled(
        exact.evaluator(),
        SimdKernel::Portable,
        Select::MaxEnergy,
        queries,
        &mut tiled,
        &TileConfig::default(),
        |p| exact.evaluator().locate(p),
    );
    emit("exact_scan", "portable", tiled_ns, pp_ns, stats);

    // SimdScan: tiled with its detected kernel vs per-point full scans.
    let tiled_ns = time_ns_per_point(queries.len(), || {
        simd.locate_batch(black_box(queries), &mut tiled);
    });
    let pp_ns = time_ns_per_point(queries.len(), || {
        batch_map(black_box(queries), &mut perpoint, |p| simd.locate(*p));
    });
    assert_eq!(tiled, perpoint, "SimdScan tiled/per-point answers diverge");
    let stats = tile::locate_batch_tiled(
        simd.evaluator(),
        simd.kernel(),
        Select::MaxEnergy,
        queries,
        &mut tiled,
        &TileConfig::default(),
        |p| simd.locate(p),
    );
    emit("simd_scan", simd.kernel().name(), tiled_ns, pp_ns, stats);

    // VoronoiAssisted: tiled nearest-mode (valid here — the bench
    // network is uniform-power, matching the backend's own dispatch)
    // vs the per-point kd-tree walk.
    let tiled_ns = time_ns_per_point(queries.len(), || {
        voronoi.locate_batch(black_box(queries), &mut tiled);
    });
    let pp_ns = time_ns_per_point(queries.len(), || {
        batch_map(black_box(queries), &mut perpoint, |p| voronoi.locate(*p));
    });
    assert_eq!(
        tiled, perpoint,
        "VoronoiAssisted tiled/per-point answers diverge"
    );
    let stats = tile::locate_batch_tiled(
        voronoi.evaluator(),
        voronoi.kernel(),
        Select::Nearest,
        queries,
        &mut tiled,
        &TileConfig::default(),
        |p| voronoi.locate(p),
    );
    emit(
        "voronoi_assisted",
        voronoi.kernel().name(),
        tiled_ns,
        pp_ns,
        stats,
    );
}

/// Churn scenario shape: per timestep, `CHURN_MOVES` station moves plus
/// one add and one swap-remove (station count stays constant), followed
/// by a `CHURN_BURST`-point `locate_batch`.
const CHURN_STATIONS: [usize; 2] = [256, 4096];
const CHURN_STEPS: usize = 48;
const CHURN_BURST: usize = 64;
const CHURN_MOVES: usize = 8;

/// Replays the deterministic churn sequence once. `incremental = true`
/// keeps one engine in sync via `apply`; `false` rebuilds the engine
/// from scratch every step. Returns `(ns_per_step, per-step answers)`.
fn churn_run<E: QueryEngine>(
    build: impl Fn(&Network) -> E,
    net0: &Network,
    half: f64,
    queries: &[Point],
    incremental: bool,
) -> (f64, Vec<Vec<Located>>) {
    let mut net = net0.clone();
    let mut rng = rand::rngs::StdRng::seed_from_u64(0xC0DE + net0.len() as u64);
    let mut answers = Vec::with_capacity(CHURN_STEPS);
    let mut out = vec![Located::Silent; queries.len()];
    let mut engine = build(&net);
    let start = Instant::now();
    for _ in 0..CHURN_STEPS {
        for _ in 0..CHURN_MOVES {
            let i = rng.gen_range(0..net.len());
            let p = Point::new(rng.gen_range(-half..half), rng.gen_range(-half..half));
            let delta = net.move_station(StationId(i), p).expect("valid move");
            if incremental {
                engine.apply(&delta).expect("deltas applied in order");
            }
        }
        let p = Point::new(rng.gen_range(-half..half), rng.gen_range(-half..half));
        let delta = net.add_station(p, 1.0).expect("valid add");
        if incremental {
            engine.apply(&delta).expect("deltas applied in order");
        }
        let i = rng.gen_range(0..net.len());
        let delta = net.remove_station(StationId(i)).expect("valid remove");
        if incremental {
            engine.apply(&delta).expect("deltas applied in order");
        } else {
            engine = build(&net);
        }
        engine.locate_batch(black_box(queries), &mut out);
        answers.push(out.clone());
    }
    let ns_per_step = start.elapsed().as_nanos() as f64 / CHURN_STEPS as f64;
    (ns_per_step, answers)
}

/// The churn JSON record: incremental `apply` vs rebuild-from-scratch,
/// per backend, with the answers of both runs asserted identical.
fn emit_churn_json_lines() {
    for n in CHURN_STATIONS {
        let half = window_half(n);
        let net = gen::random_uniform_network(1000 + n as u64, n, half, 0.01, 2.0).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(99 + n as u64);
        let queries = gen::uniform_in_box(&mut rng, CHURN_BURST, half * 1.1);
        let simd_kernel = SimdScan::new(&net).kernel().name().to_string();

        let emit = |backend: &str, inc_ns: f64, reb_ns: f64| {
            let line = JsonLine::new("engine_batch")
                .str("scenario", "churn")
                .int("stations", n as u64)
                .str("backend", backend)
                .str("simd_kernel", &simd_kernel)
                .int("steps", CHURN_STEPS as u64)
                .int("ops_per_step", (CHURN_MOVES + 2) as u64)
                .int("burst_points", CHURN_BURST as u64)
                .num("incremental_ns_per_step", inc_ns)
                .num("rebuild_ns_per_step", reb_ns)
                .num("speedup_incremental_vs_rebuild", reb_ns / inc_ns);
            println!("{}", line.render());
        };

        let (inc_ns, inc_answers) = churn_run(ExactScan::new, &net, half, &queries, true);
        let (reb_ns, reb_answers) = churn_run(ExactScan::new, &net, half, &queries, false);
        assert_eq!(inc_answers, reb_answers, "ExactScan churn answers diverge");
        emit("exact_scan", inc_ns, reb_ns);

        let (inc_ns, inc_answers) = churn_run(SimdScan::new, &net, half, &queries, true);
        let (reb_ns, reb_answers) = churn_run(SimdScan::new, &net, half, &queries, false);
        assert_eq!(inc_answers, reb_answers, "SimdScan churn answers diverge");
        emit("simd_scan", inc_ns, reb_ns);

        let (inc_ns, inc_answers) = churn_run(VoronoiAssisted::new, &net, half, &queries, true);
        let (reb_ns, reb_answers) = churn_run(VoronoiAssisted::new, &net, half, &queries, false);
        assert_eq!(
            inc_answers, reb_answers,
            "VoronoiAssisted churn answers diverge"
        );
        emit("voronoi_assisted", inc_ns, reb_ns);
    }
}

/// Channel Monte-Carlo scenario shape: one big network, a moderate
/// point batch of spatially-coherent receiver patches (coverage
/// heatmaps around hotspots — the workload
/// `reception_probability_batch` exists for), many trials. Each patch
/// is one Morton tile, so the tile envelopes built once up front prune
/// almost the whole network on every trial; the rebuild-per-trial
/// baseline re-pays prep each trial and, at this one-shot batch size,
/// its own `locate_batch` heuristic stays on the full-scan path.
const MC_STATIONS: usize = 4096;
const MC_POINTS: usize = 1024;
const MC_PATCHES: usize = 2;
const MC_PATCH_RADIUS: f64 = 4.0;
const MC_TRIALS: u32 = 256;
const MC_SEED: u64 = 0x5EED_CAFE;

/// The rebuild-per-trial baseline: what Monte-Carlo reception
/// probability costs *without* the channel subsystem — draw the same
/// public gain stream, build a scaled [`Network`] and a fresh engine
/// for every trial, run its `locate_batch`, and count receptions.
fn naive_reception_probs(
    net: &Network,
    channel: &ChannelModel,
    points: &[Point],
    build: impl Fn(&Network) -> BoxedEngine,
) -> (f64, Vec<f64>) {
    let mut counts = vec![0u32; points.len()];
    let mut gains = vec![1.0; net.len()];
    let mut out = vec![Located::Silent; points.len()];
    let start = Instant::now();
    for trial in 0..MC_TRIALS {
        channel.gains_for_trial(MC_SEED, trial, &mut gains);
        let mut b = Network::builder()
            .background_noise(net.noise())
            .threshold(net.beta())
            .path_loss(net.alpha());
        for (s, g) in net.stations().zip(&gains) {
            b = b.station_with_power(s.position, s.power * g);
        }
        let scaled = b.build().expect("scaled network");
        let engine = build(&scaled);
        engine.locate_batch(black_box(points), &mut out);
        for (c, l) in counts.iter_mut().zip(&out) {
            *c += u32::from(l.station().is_some());
        }
    }
    let ns_per_point_trial =
        start.elapsed().as_nanos() as f64 / (points.len() as f64 * MC_TRIALS as f64);
    let probs = counts
        .iter()
        .map(|&c| c as f64 / MC_TRIALS as f64)
        .collect();
    (ns_per_point_trial, probs)
}

/// The channel Monte-Carlo record: `reception_probability_batch` (SoA
/// columns, Morton tiling and envelopes built once; only per-trial
/// gains vary) against the rebuild-per-trial baseline, per backend,
/// probabilities asserted bit-identical. One `"scenario":"channel_mc"`
/// line per backend.
fn emit_channel_mc_json_lines() {
    let half = window_half(MC_STATIONS);
    let net = gen::random_uniform_network(0xC4A7, MC_STATIONS, half, 0.01, 2.0).unwrap();
    let mut rng = rand::rngs::StdRng::seed_from_u64(0xC4A7 ^ 1);
    let stations: Vec<Point> = net.stations().map(|s| s.position).collect();
    let points: Vec<Point> = (0..MC_POINTS)
        .map(|k| {
            let c = stations[(k % MC_PATCHES) * stations.len() / MC_PATCHES];
            Point::new(
                c.x + rng.gen_range(-MC_PATCH_RADIUS..MC_PATCH_RADIUS),
                c.y + rng.gen_range(-MC_PATCH_RADIUS..MC_PATCH_RADIUS),
            )
        })
        .collect();
    // Log-normal only: its gains are strictly positive, which is what
    // lets the baseline realize each trial as a valid scaled Network.
    let channel = ChannelModel::LogNormalShadowing { sigma_db: 4.0 };
    let mc = McConfig::new(MC_TRIALS, MC_SEED);
    let simd_kernel = SimdScan::new(&net).kernel().name().to_string();

    type BuildEngine = Box<dyn Fn(&Network) -> BoxedEngine>;
    let backends: [(&str, BuildEngine); 2] = [
        ("exact_scan", Box::new(BoxedEngine::exact_scan)),
        ("simd_scan", Box::new(BoxedEngine::simd_scan)),
    ];
    for (backend, build) in backends {
        let engine = build(&net);
        let mut mc_probs = vec![0.0; points.len()];
        let start = Instant::now();
        engine
            .reception_probability_batch(&channel, mc, &points, &mut mc_probs)
            .expect("channel Monte-Carlo");
        let mc_ns = start.elapsed().as_nanos() as f64 / (points.len() as f64 * MC_TRIALS as f64);

        let (naive_ns, naive_probs) = naive_reception_probs(&net, &channel, &points, &build);
        for (k, (got, want)) in mc_probs.iter().zip(&naive_probs).enumerate() {
            assert_eq!(
                got.to_bits(),
                want.to_bits(),
                "{backend}: channel-MC diverged from rebuild-per-trial at point {k}"
            );
        }

        let speedup = naive_ns / mc_ns;
        assert!(
            speedup >= 5.0,
            "{backend}: SoA-reuse speedup {speedup:.1}x below the 5x floor"
        );
        let line = JsonLine::new("engine_batch")
            .str("scenario", "channel_mc")
            .str("backend", backend)
            .str("channel", "log_normal_4db")
            .str("query_shape", "clustered_patches")
            .str("simd_kernel", &simd_kernel)
            .int("stations", MC_STATIONS as u64)
            .int("query_points", MC_POINTS as u64)
            .int("trials", MC_TRIALS as u64)
            .num(
                "trials_per_sec",
                1e9 * MC_TRIALS as f64 / (mc_ns * points.len() as f64 * MC_TRIALS as f64),
            )
            .num("mc_ns_per_point_trial", mc_ns)
            .num("naive_ns_per_point_trial", naive_ns)
            .num("speedup_mc_vs_rebuild", speedup);
        println!("{}", line.render());
    }
}

/// Scheduling scenario shape (the condensed `link_scheduling` loop: no
/// server, no probes — just arrivals, the greedy feasible-set search
/// realized as `SetPower` timesteps, and service).
const SCHED_LINKS: usize = 10;
const SCHED_STEPS: usize = 512;
const SCHED_LAMBDA: f64 = 0.3;

/// The scheduling record: ns per queue-stability timestep (each step =
/// Bernoulli arrivals + a greedy SINR-feasible-set search where every
/// candidate transmit pattern is an incremental `SetPower` timestep on
/// the dynamic engine). One `"scenario":"scheduling"` line.
fn emit_scheduling_json_line() {
    let beta = 2.0;
    let mut b = Network::builder().background_noise(0.01).threshold(beta);
    let mut receivers = Vec::with_capacity(SCHED_LINKS);
    for k in 0..SCHED_LINKS {
        let theta = std::f64::consts::TAU * k as f64 / SCHED_LINKS as f64;
        let (sin, cos) = theta.sin_cos();
        b = b.station(Point::new(4.0 * cos, 4.0 * sin));
        receivers.push(Point::new(3.0 * cos, 3.0 * sin));
    }
    let mut net = b.build().expect("ring network");
    let mut engine = BoxedEngine::simd_scan(&net);
    let fading = ChannelModel::LogNormalShadowing { sigma_db: 2.0 };

    let mut rng = rand::rngs::StdRng::seed_from_u64(0x5C4E);
    let mut backlog = [0usize; SCHED_LINKS];
    let mut gains = vec![1.0; SCHED_LINKS];
    let (mut served, mut mutates) = (0u64, 0u64);
    let start = Instant::now();
    for step in 0..SCHED_STEPS {
        for q in backlog.iter_mut() {
            *q += usize::from(rng.gen_range(0.0..1.0) < SCHED_LAMBDA);
        }
        fading.gains_for_trial(0xFAD, step as u32, &mut gains);
        let mut active: Vec<usize> = (0..SCHED_LINKS).filter(|&i| backlog[i] > 0).collect();
        while !active.is_empty() {
            let ops: Vec<SurgeryOp> = (0..SCHED_LINKS)
                .map(|i| SurgeryOp::SetPower {
                    id: StationId(i),
                    power: if active.contains(&i) { gains[i] } else { 1e-9 },
                })
                .collect();
            for delta in net.apply_ops(&ops).expect("powers") {
                engine.apply(&delta).expect("incremental apply");
            }
            mutates += 1;
            let mut worst: Option<(usize, f64)> = None;
            for (slot, &i) in active.iter().enumerate() {
                let mut sinr = [0.0];
                engine.sinr_batch(StationId(i), &receivers[i..i + 1], &mut sinr);
                if sinr[0] < beta && worst.is_none_or(|(_, w)| sinr[0] < w) {
                    worst = Some((slot, sinr[0]));
                }
            }
            match worst {
                None => break,
                Some((slot, _)) => {
                    active.remove(slot);
                }
            }
        }
        for &i in &active {
            backlog[i] -= 1;
            served += 1;
        }
    }
    let ns_per_step = start.elapsed().as_nanos() as f64 / SCHED_STEPS as f64;

    let line = JsonLine::new("engine_batch")
        .str("scenario", "scheduling")
        .str("backend", "simd_scan")
        .int("links", SCHED_LINKS as u64)
        .int("steps", SCHED_STEPS as u64)
        .num("lambda", SCHED_LAMBDA)
        .int("mutate_timesteps", mutates)
        .int("served_packets", served)
        .int("final_backlog", backlog.iter().sum::<usize>() as u64)
        .num("ns_per_step", ns_per_step);
    println!("{}", line.render());
}

/// Non-uniform scenario shape: the `n = 4096` station layout with a
/// **clustered** power assignment — one high-power "macro" station per
/// 64 (8× power), everything else jittered around unit power — the
/// power-diagram regime where nearest-station dispatch would be wrong
/// and the weighted (max `P·att(d²)`) kd-tree walk earns its keep.
const NONUNIFORM_STATIONS: usize = 4096;
const NONUNIFORM_MACRO_EVERY: usize = 64;
const NONUNIFORM_MACRO_POWER: f64 = 8.0;
/// Timing repetitions per path; the recorded value is the minimum.
const NONUNIFORM_REPS: usize = 3;
/// Internal floor: the weighted-dispatch batch path must beat the
/// exact-scan engine — the path every non-uniform `VoronoiAssisted`
/// query fell back to before the power-diagram dispatch landed — by at
/// least this factor, so the trend line certifies the dispatch engages
/// rather than merely existing.
const NONUNIFORM_MIN_SPEEDUP: f64 = 2.0;

/// The non-uniform record: `VoronoiAssisted::locate_batch` on a
/// clustered-power network (weighted kd-tree dispatch + `MaxEnergy`
/// tile envelopes) against `ExactScan::locate_batch` on the same
/// network (what non-uniform queries cost pre-dispatch), answers
/// asserted bit-identical to a same-kernel `SimdScan`. One
/// `"scenario":"nonuniform"` line.
fn emit_nonuniform_json_lines() {
    let n = NONUNIFORM_STATIONS;
    let half = window_half(n);
    let layout = gen::random_uniform_network(42 + n as u64, n, half, 0.01, 2.0).unwrap();
    let mut rng = rand::rngs::StdRng::seed_from_u64(0xD1FF ^ n as u64);
    let mut b = Network::builder()
        .background_noise(0.01)
        .threshold(2.0)
        .path_loss(2.0);
    for (k, s) in layout.stations().enumerate() {
        let power = if k % NONUNIFORM_MACRO_EVERY == 0 {
            NONUNIFORM_MACRO_POWER
        } else {
            rng.gen_range(0.5..1.5)
        };
        b = b.station_with_power(s.position, power);
    }
    let net = b.build().expect("clustered-power network");
    assert!(!net.is_uniform_power(), "scenario needs non-uniform power");
    let queries = gen::uniform_in_box(&mut rng, QUERY_POINTS, half * 1.1);

    let exact = ExactScan::new(&net);
    let voronoi = VoronoiAssisted::new(&net);
    let mut out = vec![Located::Silent; queries.len()];
    let mut want = vec![Located::Silent; queries.len()];

    // Correctness guard: the weighted dispatch must reproduce the
    // same-kernel exhaustive scan bit-for-bit before its timing means
    // anything (the differential suites pin this at small n; this
    // covers the bench's own 4096-station instance).
    let simd = SimdScan::with_kernel(sinr_core::SinrEvaluator::new(&net), voronoi.kernel());
    voronoi.locate_batch(&queries, &mut out);
    simd.locate_batch(&queries, &mut want);
    assert_eq!(out, want, "weighted dispatch diverged from SimdScan");

    let mut voronoi_ns = f64::INFINITY;
    for _ in 0..NONUNIFORM_REPS {
        voronoi_ns = voronoi_ns.min(time_ns_per_point(queries.len(), || {
            voronoi.locate_batch(black_box(&queries), &mut out);
        }));
    }
    let mut exact_ns = f64::INFINITY;
    for _ in 0..NONUNIFORM_REPS {
        exact_ns = exact_ns.min(time_ns_per_point(queries.len(), || {
            exact.locate_batch(black_box(&queries), &mut want);
        }));
    }

    let speedup = exact_ns / voronoi_ns;
    assert!(
        speedup >= NONUNIFORM_MIN_SPEEDUP,
        "nonuniform: weighted dispatch {speedup:.1}x below the {NONUNIFORM_MIN_SPEEDUP}x floor"
    );
    let line = JsonLine::new("engine_batch")
        .str("scenario", "nonuniform")
        .str("backend", "voronoi_assisted")
        .str("power_shape", "clustered")
        .str("simd_kernel", voronoi.kernel().name())
        .int("avx512_detected", SimdKernel::Avx512.is_supported() as u64)
        .int("stations", n as u64)
        .int("query_points", queries.len() as u64)
        .int("macro_every", NONUNIFORM_MACRO_EVERY as u64)
        .num("macro_power", NONUNIFORM_MACRO_POWER)
        .num("ns_per_point", voronoi_ns)
        .num("exact_scan_ns_per_point", exact_ns)
        .num("speedup_weighted_vs_exact", speedup);
    println!("{}", line.render());
}

/// Heatmap scenario shape: the `n = 4096` default network (half-width
/// 128), rasterised over a 12×12-unit zoom window (a few dozen
/// reception zones, each spanning hundreds of pixels — the regime
/// hierarchical refinement exists for: ambiguous pixels hug the zone
/// boundaries, whose length grows with the window's *diameter* while
/// the dense cost grows with its *area*) at megapixel grid sizes.
const HEATMAP_STATIONS: usize = 4096;
const HEATMAP_HALF: f64 = 6.0;
const HEATMAP_GRIDS: [usize; 2] = [1024, 2048];
/// Timing repetitions per path; the recorded value is the minimum (the
/// usual robust estimator on a shared, 1-core CI box, where the dense
/// baseline alone jitters ±15% run to run).
const HEATMAP_REPS: usize = 3;
/// Internal floors: a heatmap trend line certifies both the wall clock
/// and the pruning, so regressions fail the bench rather than merely
/// drifting the numbers. The speedup floor is per grid — boundary
/// pixels are a *diameter* phenomenon, so the hierarchical economy
/// improves with resolution and the megapixel grid must clear 10×.
const HEATMAP_MIN_SPEEDUP: [(usize, f64); 2] = [(1024, 5.0), (2048, 10.0)];
const HEATMAP_MAX_FRACTION: f64 = 0.15;

/// The heatmap record: dense rasterisation (locate every pixel centre
/// through the tiled batch executor) vs hierarchical quadtree
/// refinement (interval certificates resolve certified-uniform cells
/// wholesale; only boundary-straddling cells pay per-point work), the
/// rasters asserted equal. One `"scenario":"heatmap"` line per grid.
fn emit_heatmap_json_lines() {
    let net = gen::random_uniform_network(
        42 + HEATMAP_STATIONS as u64,
        HEATMAP_STATIONS,
        window_half(HEATMAP_STATIONS),
        0.01,
        2.0,
    )
    .unwrap();
    let window = BBox::centered_square(HEATMAP_HALF);
    let engine = SimdScan::new(&net);

    for grid in HEATMAP_GRIDS {
        let pixels = (grid * grid) as u64;

        let mut dense_ns = f64::INFINITY;
        let mut dense = None;
        for _ in 0..HEATMAP_REPS {
            let start = Instant::now();
            let map = ReceptionMap::compute_with_engine(&engine, window, grid, grid);
            dense_ns = dense_ns.min(start.elapsed().as_nanos() as f64 / pixels as f64);
            dense = Some(map);
        }
        let dense = dense.expect("HEATMAP_REPS > 0");

        let mut hier_ns = f64::INFINITY;
        let mut hier = None;
        for _ in 0..HEATMAP_REPS {
            let start = Instant::now();
            let run = ReceptionMap::compute_hierarchical_with_engine(&engine, window, grid, grid);
            hier_ns = hier_ns.min(start.elapsed().as_nanos() as f64 / pixels as f64);
            hier = Some(run);
        }
        let (hier, stats) = hier.expect("HEATMAP_REPS > 0");

        assert_eq!(dense, hier, "{grid}²: hierarchical diverged from dense");
        assert_eq!(stats.pixels, pixels, "{grid}²: pixel accounting");

        let speedup = dense_ns / hier_ns;
        let fraction = stats.fraction();
        let floor = HEATMAP_MIN_SPEEDUP
            .iter()
            .find(|(g, _)| *g == grid)
            .map(|(_, f)| *f)
            .expect("every heatmap grid has a speedup floor");
        assert!(
            speedup >= floor,
            "{grid}²: hierarchical speedup {speedup:.1}x below the {floor}x floor"
        );
        assert!(
            fraction < HEATMAP_MAX_FRACTION,
            "{grid}²: evaluated {:.1}% of pixels (ceiling {:.0}%)",
            fraction * 100.0,
            HEATMAP_MAX_FRACTION * 100.0
        );

        let line = JsonLine::new("engine_batch")
            .str("scenario", "heatmap")
            .str("backend", "simd_scan")
            .str("simd_kernel", engine.kernel().name())
            .int("stations", HEATMAP_STATIONS as u64)
            .int("grid", grid as u64)
            .int("query_points", pixels)
            .num("window_half", HEATMAP_HALF)
            .num("ns_per_point", hier_ns)
            .num("dense_ns_per_point", dense_ns)
            .num("speedup_hier_vs_dense", speedup)
            .int("cells_evaluated", stats.cells_evaluated)
            .int("point_certified", stats.point_certified)
            .int("certificates", stats.certificates)
            .num("cells_evaluated_fraction", fraction);
        println!("{}", line.render());
    }
}

fn main() {
    benches();
    emit_json_lines();
    emit_nonuniform_json_lines();
    emit_churn_json_lines();
    emit_channel_mc_json_lines();
    emit_scheduling_json_line();
    emit_heatmap_json_lines();
}
