//! Bench: Theorem 3 queries — O(log n) DS dispatch vs the naive O(n) scan.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::{Rng, SeedableRng};
use sinr_core::gen;
use sinr_geometry::Point;
use sinr_pointloc::{PointLocator, QdsConfig};
use std::hint::black_box;

fn bench_queries(c: &mut Criterion) {
    let mut group = c.benchmark_group("pointloc_query");
    for n in [4usize, 16, 64] {
        let half = 3.0 * (n as f64).sqrt();
        let net = gen::random_separated_network(2000 + n as u64, n, half, 2.0, 0.005, 2.0).unwrap();
        let ds = PointLocator::build(&net, &QdsConfig::with_epsilon(0.3)).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let queries: Vec<Point> = (0..512)
            .map(|_| Point::new(rng.gen_range(-half..half), rng.gen_range(-half..half)))
            .collect();
        group.bench_with_input(BenchmarkId::new("ds_locate", n), &n, |b, _| {
            let mut k = 0usize;
            b.iter(|| {
                k = (k + 1) % queries.len();
                black_box(ds.locate(queries[k]))
            })
        });
        group.bench_with_input(BenchmarkId::new("naive_scan", n), &n, |b, _| {
            let mut k = 0usize;
            b.iter(|| {
                k = (k + 1) % queries.len();
                black_box(net.heard_at(queries[k]))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_queries);
criterion_main!(benches);
