//! Bench: Theorem 3 preprocessing — BRP + QDS construction.
//!
//! The paper's bound is O(n³·ε⁻¹) for all n stations together, i.e.
//! O(n²·ε⁻¹) per station. The `qds_build_*` groups sweep n at fixed ε and
//! ε at fixed n to expose both factors.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sinr_core::{gen, StationId};
use sinr_pointloc::{PointLocator, Qds, QdsConfig};
use std::hint::black_box;

fn bench_qds_vs_n(c: &mut Criterion) {
    let mut group = c.benchmark_group("qds_build_vs_n");
    group.sample_size(10);
    for n in [4usize, 8, 16, 32] {
        let net = gen::random_separated_network(
            1000 + n as u64,
            n,
            3.0 * (n as f64).sqrt(),
            2.0,
            0.005,
            2.0,
        )
        .unwrap();
        let config = QdsConfig::with_epsilon(0.25);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| black_box(Qds::build(&net, StationId(0), &config).unwrap()))
        });
    }
    group.finish();
}

fn bench_qds_vs_epsilon(c: &mut Criterion) {
    let mut group = c.benchmark_group("qds_build_vs_epsilon");
    group.sample_size(10);
    let net = gen::random_separated_network(1008, 8, 8.0, 2.0, 0.005, 2.0).unwrap();
    for eps in [0.5, 0.25, 0.125] {
        let config = QdsConfig::with_epsilon(eps);
        group.bench_with_input(BenchmarkId::from_parameter(eps), &eps, |b, _| {
            b.iter(|| black_box(Qds::build(&net, StationId(0), &config).unwrap()))
        });
    }
    group.finish();
}

fn bench_full_locator(c: &mut Criterion) {
    let mut group = c.benchmark_group("pointlocator_build");
    group.sample_size(10);
    for n in [4usize, 8, 16] {
        let net = gen::random_separated_network(
            1000 + n as u64,
            n,
            3.0 * (n as f64).sqrt(),
            2.0,
            0.005,
            2.0,
        )
        .unwrap();
        let config = QdsConfig::with_epsilon(0.3);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| black_box(PointLocator::build(&net, &config).unwrap()))
        });
    }
    group.finish();
}

/// Ablation: the corner-filtered boundary predicate vs the paper-literal
/// pure-Sturm predicate (identical output, different cost — the design
/// choice DESIGN.md calls out).
fn bench_predicate_ablation(c: &mut Criterion) {
    use sinr_pointloc::brp::{reconstruct_boundary_with, BoundaryPredicate};
    let mut group = c.benchmark_group("brp_predicate_ablation");
    group.sample_size(10);
    let net = gen::random_separated_network(1008, 8, 8.0, 2.0, 0.005, 2.0).unwrap();
    group.bench_function("corner_filtered", |b| {
        b.iter(|| {
            black_box(
                reconstruct_boundary_with(
                    &net,
                    StationId(0),
                    0.3,
                    4_000_000,
                    BoundaryPredicate::CornerFiltered,
                )
                .unwrap(),
            )
        })
    });
    group.bench_function("segment_tests_only", |b| {
        b.iter(|| {
            black_box(
                reconstruct_boundary_with(
                    &net,
                    StationId(0),
                    0.3,
                    4_000_000,
                    BoundaryPredicate::SegmentTestsOnly,
                )
                .unwrap(),
            )
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_qds_vs_n,
    bench_qds_vs_epsilon,
    bench_full_locator,
    bench_predicate_ablation
);
criterion_main!(benches);
