//! Bench: fatness measurement (Theorems 2 / 4.1 / 4.2 machinery).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sinr_core::{bounds, gen, StationId};
use std::hint::black_box;

fn bench_radial_profile(c: &mut Criterion) {
    let mut group = c.benchmark_group("radial_profile_64");
    group.sample_size(20);
    for n in [2usize, 8, 32] {
        let net =
            gen::random_separated_network(5, n, 3.0 * (n as f64).sqrt(), 1.2, 0.01, 2.0).unwrap();
        let zone = net.reception_zone(StationId(0));
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| black_box(zone.radial_profile(64)))
        });
    }
    group.finish();
}

fn bench_closed_form_bounds(c: &mut Criterion) {
    let net = gen::random_separated_network(5, 32, 18.0, 1.2, 0.01, 2.0).unwrap();
    c.bench_function("zone_bounds_closed_form", |b| {
        b.iter(|| black_box(bounds::zone_bounds(&net, StationId(0))))
    });
}

criterion_group!(benches, bench_radial_profile, bench_closed_form_bounds);
criterion_main!(benches);
