//! # sinr-bench
//!
//! The reproduction harness for *"SINR Diagrams"* (Avin et al., PODC
//! 2009): every numerically generated figure and every theorem-scale
//! claim of the paper maps to
//!
//! * a **report binary** (`cargo run -p sinr-bench --release --bin …`)
//!   that prints the paper-style table or narrative, and
//! * a **Criterion bench** (`cargo bench -p sinr-bench`) that measures
//!   the underlying kernels.
//!
//! | experiment | binary | bench |
//! |---|---|---|
//! | Figure 1 (dynamic reception) | `fig1_dynamics` | `fig_diagrams` |
//! | Figure 2 (cumulative interference) | `fig2_cumulative` | `fig_diagrams` |
//! | Figures 3–4 (UDG vs SINR steps) | `fig34_udg_vs_sinr` | `fig_diagrams` |
//! | Figure 5 (β < 1 non-convexity) | `fig5_nonconvex` | `convexity` |
//! | Theorem 1 (convexity) | `thm1_convexity` | `convexity` |
//! | Theorem 2 / Fig 7 (fatness) | `thm2_fatness` | `fatness` |
//! | Theorem 4.1 (explicit bounds) | `thm41_bounds` | `fatness` |
//! | Theorem 3 / Figs 6, 17 (guarantees) | `thm3_guarantees` | `pointloc_build` |
//! | Theorem 3 (complexity scaling) | `thm3_scaling` | `pointloc_build`, `pointloc_query` |
//! | Sturm machinery (Secs 3.2/5.1) | — | `sturm`, `sinr_eval` |
//! | Observation 2.2 dispatch | — | `voronoi` |
//!
//! `all_experiments` runs every table in one go and emits the
//! `EXPERIMENTS.md` body.

pub mod experiments;
pub mod report;
