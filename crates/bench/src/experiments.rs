//! The experiment runners behind the report binaries.
//!
//! Each function reproduces one figure/theorem-scale artefact of the paper
//! and returns a [`Table`] with the measured values next to the paper's
//! claim. All runs are seeded and deterministic.

use crate::report::{f, opt_f, Table};
use sinr_core::{bounds, convexity, gen, Network, StationId};
use sinr_diagram::figures;
use sinr_diagram::measure;
use sinr_geometry::{BBox, Point};
use sinr_pointloc::qds::verify_qds;
use sinr_pointloc::{Located, PointLocator, Qds, QdsConfig};
use std::time::Instant;

/// Scale knob: `Quick` keeps everything test-suite friendly; `Full` runs
/// the sizes reported in EXPERIMENTS.md.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Effort {
    /// Small sizes for CI and tests.
    Quick,
    /// The full experiment grid.
    Full,
}

// ---------------------------------------------------------------------------
// Figure 1
// ---------------------------------------------------------------------------

/// Figure 1: dynamic reception at a fixed receiver across three panels.
pub fn fig1_table() -> Table {
    let fig = figures::figure1();
    let mut t = Table::new(
        "FIG1 — dynamic reception (paper Fig. 1: A hears s2; B hears nothing; C hears s1)",
        &["panel", "change", "paper says p hears", "measured"],
    );
    let name = |o: Option<StationId>| {
        o.map(|s| format!("s{}", s.index() + 1))
            .unwrap_or_else(|| "nothing".into())
    };
    let rows = [
        (
            "A",
            "initial placement",
            Some(StationId(1)),
            fig.panel_a.heard_at(fig.receiver),
        ),
        (
            "B",
            "s1 moved next to p",
            None,
            fig.panel_b.heard_at(fig.receiver),
        ),
        (
            "C",
            "as B, s3 silent",
            Some(StationId(0)),
            fig.panel_c.heard_at(fig.receiver),
        ),
    ];
    for (panel, change, paper, measured) in rows {
        t.row(vec![
            panel.into(),
            change.into(),
            name(paper),
            name(measured),
        ]);
    }
    t.note(format!(
        "receiver p = {}, β = 1.5, N = 0.02, α = 2, uniform power",
        fig.receiver
    ));
    t
}

// ---------------------------------------------------------------------------
// Figure 2
// ---------------------------------------------------------------------------

/// Figure 2: the UDG false positive from cumulative interference.
pub fn fig2_table() -> Table {
    let fig = figures::figure2();
    let all = vec![true; 4];
    let mut t = Table::new(
        "FIG2 — cumulative interference (paper Fig. 2: UDG hears s1, SINR hears nothing)",
        &["model", "p hears", "matches paper"],
    );
    let udg = fig.udg.heard_at(&all, fig.receiver);
    let sinr = fig.network.heard_at(fig.receiver);
    t.row(vec![
        "UDG (protocol)".into(),
        udg.map(|i| format!("s{}", i + 1))
            .unwrap_or_else(|| "nothing".into()),
        (udg == Some(0)).to_string(),
    ]);
    t.row(vec![
        "SINR".into(),
        sinr.map(|i| format!("s{}", i.index() + 1))
            .unwrap_or_else(|| "nothing".into()),
        (sinr.is_none()).to_string(),
    ]);
    // Per-interferer ablation: no single interferer suffices — it is the sum.
    for silent in 1..4usize {
        let mut pts = fig.network.positions().to_vec();
        pts.remove(silent);
        let reduced = Network::uniform(pts, fig.network.noise(), fig.network.beta()).unwrap();
        t.row(vec![
            format!("SINR − s{}", silent + 1),
            reduced
                .heard_at(fig.receiver)
                .map(|i| format!("s{}", i.index() + 1))
                .unwrap_or_else(|| "nothing".into()),
            (reduced.heard_at(fig.receiver) == Some(StationId(0))).to_string(),
        ]);
    }
    t.note("rows 3–5: removing any single interferer restores reception — cumulative effect");
    t
}

// ---------------------------------------------------------------------------
// Figures 3–4
// ---------------------------------------------------------------------------

/// Figures 3–4: stations join one at a time; the models diverge per step.
pub fn fig34_table() -> Table {
    let fig = figures::figure34();
    let mut t = Table::new(
        "FIG3/4 — UDG vs SINR while adding transmitters (paper Figs. 3–4)",
        &[
            "step",
            "transmitting",
            "UDG hears",
            "SINR hears",
            "classification",
        ],
    );
    let name = |o: Option<StationId>| {
        o.map(|s| format!("s{}", s.index() + 1))
            .unwrap_or_else(|| "—".into())
    };
    for step in &fig.steps {
        let tx: Vec<String> = step
            .transmitting
            .iter()
            .enumerate()
            .filter(|(_, on)| **on)
            .map(|(i, _)| format!("s{}", i + 1))
            .collect();
        let class = match (step.expected_udg, step.expected_sinr) {
            (None, Some(_)) => "false negative (UDG drops a delivered message)",
            (Some(_), None) => "false positive",
            (a, b) if a == b => "agree",
            _ => "different stations",
        };
        t.row(vec![
            step.step.to_string(),
            tx.join("+"),
            name(step.expected_udg),
            name(step.expected_sinr),
            class.into(),
        ]);
    }
    t.note(
        "paper narration: step 2 and 3 are UDG false negatives; step 4 changes only the SINR side",
    );
    t
}

// ---------------------------------------------------------------------------
// Figure 5 + Theorem 1
// ---------------------------------------------------------------------------

/// Figure 5 and Theorem 1 in one sweep: convexity versus β on the Figure 5
/// geometry.
pub fn fig5_table() -> Table {
    let fig = figures::figure5();
    let positions = fig.network.positions().to_vec();
    let mut t = Table::new(
        "FIG5/THM1 — convexity vs β on the Fig. 5 geometry (β<1 non-convex, β≥1 convex)",
        &[
            "β",
            "segment violations",
            "max line crossings",
            "hull defect",
            "verdict",
        ],
    );
    for beta in [0.3, 0.5, 0.8, 1.0, 1.5, 3.0] {
        let net = Network::uniform(positions.clone(), fig.network.noise(), beta).unwrap();
        let mut violations = 0usize;
        let mut crossings = 0usize;
        for i in net.ids() {
            let zone = net.reception_zone(i);
            let Some(report) = convexity::check_zone_convexity(&zone, 32, 16, 1e-7) else {
                continue;
            };
            violations += report.violations.len();
            if let Some(v) = report.violations.first() {
                crossings = crossings.max(convexity::boundary_crossings_on_line(
                    &net,
                    i,
                    v.p1,
                    v.p2 - v.p1,
                    -60.0,
                    61.0,
                ));
            }
        }
        let defect = net
            .ids()
            .filter_map(|i| measure::measure_zone(&net, i, BBox::centered_square(12.0), 161))
            .map(|m| m.convexity_defect)
            .fold(0.0f64, f64::max);
        let verdict = if beta >= 1.0 {
            if violations == 0 {
                "convex (Theorem 1)"
            } else {
                "VIOLATES THEOREM 1"
            }
        } else if violations > 0 {
            "non-convex (as Fig. 5)"
        } else {
            "no violation found"
        };
        t.row(vec![
            f(beta, 1),
            violations.to_string(),
            crossings.to_string(),
            f(defect, 4),
            verdict.into(),
        ]);
    }
    t.note("paper parameters β = 0.3, N = 0.05 sit in the non-convex regime");
    t
}

/// Theorem 1 at scale: random uniform networks, zero violations expected.
pub fn thm1_table(effort: Effort) -> Table {
    let (ns, seeds): (&[usize], u64) = match effort {
        Effort::Quick => (&[2, 4, 8], 2),
        Effort::Full => (&[2, 4, 8, 16, 32], 5),
    };
    let mut t = Table::new(
        "THM1 — convexity of reception zones (uniform power, α = 2, β ≥ 1)",
        &["n", "β", "networks", "zones checked", "violations"],
    );
    for &n in ns {
        for beta in [1.0, 1.5, 2.0, 6.0] {
            let mut zones = 0usize;
            let mut violations = 0usize;
            for seed in 0..seeds {
                let Ok(net) =
                    gen::random_separated_network(seed * 977 + n as u64, n, 6.0, 0.9, 0.02, beta)
                else {
                    continue;
                };
                for i in net.ids() {
                    let zone = net.reception_zone(i);
                    if let Some(report) = convexity::check_zone_convexity(&zone, 16, 8, 1e-7) {
                        zones += 1;
                        violations += report.violations.len();
                    }
                }
            }
            t.row(vec![
                n.to_string(),
                f(beta, 1),
                seeds.to_string(),
                zones.to_string(),
                violations.to_string(),
            ]);
        }
    }
    t.note("paper: Theorem 1 ⇒ the violations column must be identically 0");
    t
}

// ---------------------------------------------------------------------------
// Theorem 2 / Figure 7 (fatness) and Theorem 4.1
// ---------------------------------------------------------------------------

/// Theorem 2: measured fatness versus the constant bound `(√β+1)/(√β−1)`.
pub fn thm2_table(effort: Effort) -> Table {
    let (ns, seeds): (&[usize], u64) = match effort {
        Effort::Quick => (&[2, 8], 2),
        Effort::Full => (&[2, 4, 8, 16, 32], 4),
    };
    let mut t = Table::new(
        "THM2 — fatness φ = Δ/δ vs the constant bound (uniform, α = 2, β > 1)",
        &[
            "β",
            "n",
            "worst measured φ",
            "Thm 4.2 bound",
            "Thm 4.1 O(√n) bound",
            "within bound",
        ],
    );
    for beta in [1.5, 2.0, 3.0, 6.0, 10.0] {
        for &n in ns {
            let mut worst = 0.0f64;
            for seed in 0..seeds {
                let Ok(net) =
                    gen::random_separated_network(seed * 131 + n as u64, n, 6.0, 1.1, 0.01, beta)
                else {
                    continue;
                };
                for i in net.ids() {
                    if let Some(p) = net.reception_zone(i).radial_profile(96) {
                        if let Some(phi) = p.fatness() {
                            worst = worst.max(phi);
                        }
                    }
                }
            }
            let b42 = bounds::fatness_bound(beta).unwrap();
            let b41 = bounds::fatness_bound_sqrt_n(n, beta).unwrap();
            t.row(vec![
                f(beta, 1),
                n.to_string(),
                f(worst, 4),
                f(b42, 4),
                f(b41, 4),
                (worst <= b42 + 1e-6).to_string(),
            ]);
        }
    }
    t.note("the bound is independent of n — the point of Theorem 4.2 over Theorem 4.1");
    t
}

/// Theorem 4.1: measured δ/Δ against the explicit closed forms, including
/// the extreme co-located layout where the δ bound is tight.
pub fn thm41_table() -> Table {
    let mut t = Table::new(
        "THM4.1 — explicit bounds on δ and Δ",
        &[
            "layout",
            "n",
            "κ",
            "measured δ",
            "δ lower bnd",
            "measured Δ",
            "Δ upper bnd",
            "holds",
        ],
    );
    // Extreme layout: all interferers at (κ, 0) — the δ analysis scenario.
    for n in [2usize, 4, 16, 64] {
        let kappa = 2.0;
        let net = Network::uniform(gen::delta_extreme(n, kappa), 0.0, 2.0).unwrap();
        let zone = net.reception_zone(StationId(0));
        let d_measured = zone.boundary_radius(0.0).unwrap();
        let d_bound = bounds::delta_lower_bound(kappa, n, 0.0, 2.0);
        let big_measured = zone.boundary_radius(std::f64::consts::PI).unwrap();
        let big_bound = bounds::delta_upper_bound(kappa, 0.0, 2.0).unwrap();
        let holds = d_measured >= d_bound - 1e-9 && big_measured <= big_bound + 1e-9;
        t.row(vec![
            "extreme".into(),
            n.to_string(),
            f(kappa, 1),
            f(d_measured, 5),
            f(d_bound, 5),
            f(big_measured, 5),
            f(big_bound, 5),
            holds.to_string(),
        ]);
    }
    // Random layouts: bounds hold with slack.
    for (seed, n) in [(5u64, 4usize), (9, 8), (13, 16)] {
        let net = gen::random_separated_network(seed, n, 6.0, 1.2, 0.02, 2.0).unwrap();
        for i in net.ids().take(2) {
            let zb = bounds::zone_bounds(&net, i);
            let Some(profile) = net.reception_zone(i).radial_profile(96) else {
                continue;
            };
            let holds = profile.delta() >= zb.delta_lower - 1e-9
                && zb
                    .delta_upper
                    .is_none_or(|u| profile.big_delta() <= u + 1e-9);
            t.row(vec![
                format!("random#{seed}"),
                n.to_string(),
                f(zb.kappa, 3),
                f(profile.delta(), 5),
                f(zb.delta_lower, 5),
                f(profile.big_delta(), 5),
                opt_f(zb.delta_upper, 5),
                holds.to_string(),
            ]);
        }
    }
    t.note("extreme rows: measured δ within a few % of the bound (the bound's defining scenario)");
    t
}

// ---------------------------------------------------------------------------
// Theorem 3 / Figures 6, 17
// ---------------------------------------------------------------------------

/// Theorem 3's three guarantees plus Figure 17's ring statistics.
pub fn thm3_guarantees_table(effort: Effort) -> Table {
    let (ns, epsilons): (&[usize], &[f64]) = match effort {
        Effort::Quick => (&[3, 6], &[0.4, 0.2]),
        Effort::Full => (&[3, 6, 12, 24], &[0.5, 0.2, 0.1]),
    };
    let mut t = Table::new(
        "THM3 — H⁺⊆H, H⁻∩H=∅, area(H?) ≤ ε·area(H); FIG17 ring statistics",
        &[
            "n",
            "ε",
            "station",
            "ring cells",
            "paper ring bound",
            "T? cells",
            "area(H?)/area(H)",
            "H+⊆H",
            "H−∩H=∅",
        ],
    );
    for &n in ns {
        let net = gen::random_separated_network(71 + n as u64, n, 6.0, 1.5, 0.01, 2.0).unwrap();
        for &eps in epsilons {
            let config = QdsConfig::with_epsilon(eps);
            // Report the first two stations per configuration (all are
            // verified; two keep the table readable).
            for i in net.ids().take(2) {
                let qds = Qds::build(&net, i, &config).unwrap();
                let v = verify_qds(&net, &qds, &config, 81);
                let (ring, bound) = qds
                    .stats()
                    .map(|s| {
                        let b = (2.0 * std::f64::consts::PI * s.big_delta_estimate / s.gamma).ceil()
                            as usize;
                        (s.ring_cells, b)
                    })
                    .unwrap_or((0, 0));
                t.row(vec![
                    n.to_string(),
                    f(eps, 2),
                    format!("s{}", i.index()),
                    ring.to_string(),
                    bound.to_string(),
                    qds.question_cell_count().to_string(),
                    f(v.question_area / v.zone_area.max(1e-12), 4),
                    (v.plus_violations == 0).to_string(),
                    (v.minus_violations == 0).to_string(),
                ]);
            }
        }
    }
    t.note("paper: ring cells ≤ ⌈2πΔ̃/γ⌉ (Section 5.1) and area fraction ≤ ε");
    t
}

/// One row of the Theorem 3 scaling experiment.
#[derive(Debug, Clone, Copy)]
pub struct ScalingRow {
    /// Number of stations.
    pub n: usize,
    /// Build time in seconds.
    pub build_s: f64,
    /// Total `T?` cells (structure size proxy).
    pub cells: usize,
    /// Mean DS query time in nanoseconds.
    pub ds_query_ns: f64,
    /// Mean naive query time in nanoseconds.
    pub naive_query_ns: f64,
}

/// Measures Theorem 3's complexity shape: preprocessing vs `n`, structure
/// size vs `n`, and query time DS-vs-naive.
pub fn thm3_scaling_rows(effort: Effort) -> Vec<ScalingRow> {
    let ns: &[usize] = match effort {
        Effort::Quick => &[4, 8],
        Effort::Full => &[4, 8, 16, 32, 64],
    };
    let eps = 0.25;
    let mut rows = Vec::new();
    for &n in ns {
        // Spread the stations so κ (and so zone size) stays comparable as n
        // grows: area ∝ n.
        let half = 3.0 * (n as f64).sqrt();
        let net = gen::random_separated_network(1000 + n as u64, n, half, 2.0, 0.005, 2.0)
            .expect("layout fits");
        let t0 = Instant::now();
        let ds = PointLocator::build(&net, &QdsConfig::with_epsilon(eps)).unwrap();
        let build_s = t0.elapsed().as_secs_f64();

        // Query workload.
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(5 + n as u64);
        let queries: Vec<Point> = (0..20_000)
            .map(|_| Point::new(rng.gen_range(-half..half), rng.gen_range(-half..half)))
            .collect();
        let t0 = Instant::now();
        let mut acc = 0usize;
        for q in &queries {
            if !matches!(ds.locate(*q), Located::Silent) {
                acc += 1;
            }
        }
        let ds_query_ns = t0.elapsed().as_nanos() as f64 / queries.len() as f64;
        let t0 = Instant::now();
        for q in &queries {
            if net.heard_at(*q).is_some() {
                acc += 1;
            }
        }
        let naive_query_ns = t0.elapsed().as_nanos() as f64 / queries.len() as f64;
        std::hint::black_box(acc);

        rows.push(ScalingRow {
            n,
            build_s,
            cells: ds.total_question_cells(),
            ds_query_ns,
            naive_query_ns,
        });
    }
    rows
}

/// Formats the scaling rows as a table.
pub fn thm3_scaling_table(effort: Effort) -> Table {
    let rows = thm3_scaling_rows(effort);
    let mut t = Table::new(
        "THM3 — complexity shape: build O(n³ε⁻¹), size O(nε⁻¹), query O(log n) vs naive O(n)",
        &[
            "n",
            "build (s)",
            "T? cells",
            "cells/n",
            "DS query (ns)",
            "naive query (ns)",
            "speedup",
        ],
    );
    for r in &rows {
        t.row(vec![
            r.n.to_string(),
            f(r.build_s, 3),
            r.cells.to_string(),
            f(r.cells as f64 / r.n as f64, 0),
            f(r.ds_query_ns, 0),
            f(r.naive_query_ns, 0),
            f(r.naive_query_ns / r.ds_query_ns, 2),
        ]);
    }
    t.note("shape expectations: cells/n ≈ const (size O(n·ε⁻¹)); DS query grows ~log n, naive ~n");
    t
}

// ---------------------------------------------------------------------------
// Section 1.4 extensions (the paper's open problems)
// ---------------------------------------------------------------------------

/// Open problem "α > 2": how do the zones behave beyond the paper's
/// `α = 2` theorems? Measured by raster convexity defect (the ray-based
/// machinery assumes `α = 2`'s monotonicity, so the raster detector is
/// the honest instrument here).
pub fn ext_alpha_table() -> Table {
    let mut t = Table::new(
        "EXT-α — zones beyond α = 2 (paper §1.4 open problem)",
        &[
            "α",
            "β",
            "worst hull defect",
            "max Sturm line crossings",
            "observation",
        ],
    );
    let positions = [
        Point::new(-2.0, 0.0),
        Point::new(2.5, 0.7),
        Point::new(0.3, -2.4),
        Point::new(1.0, 2.8),
    ];
    for alpha in [2.0, 2.5, 3.0, 4.0] {
        for beta in [1.5, 3.0] {
            let net = Network::builder()
                .stations(positions.iter().copied())
                .background_noise(0.01)
                .threshold(beta)
                .path_loss(alpha)
                .build()
                .unwrap();
            let defect = net
                .ids()
                .filter_map(|i| measure::measure_zone(&net, i, BBox::centered_square(10.0), 201))
                .map(|m| m.convexity_defect)
                .fold(0.0f64, f64::max);
            // For even α the characteristic-polynomial machinery extends:
            // count boundary crossings of a line fan via Sturm (≤ 2 ⟺ the
            // zones look convex along every tested line).
            let crossings = if alpha.fract() == 0.0 && (alpha as u32).is_multiple_of(2) {
                let mut worst = 0usize;
                for k in 0..40 {
                    let a1 = 2.399963229728653 * k as f64;
                    let origin = Point::new(1.5 * a1.cos(), 1.5 * a1.sin());
                    let dir = sinr_geometry::Vector::from_angle(a1 * 0.61 + 0.37);
                    for i in net.ids() {
                        worst = worst.max(convexity::boundary_crossings_on_line(
                            &net, i, origin, dir, -40.0, 40.0,
                        ));
                    }
                }
                worst.to_string()
            } else {
                "n/a (α not even)".into()
            };
            let obs = if defect < 0.01 {
                "convex within raster noise"
            } else {
                "visible defect"
            };
            t.row(vec![
                f(alpha, 1),
                f(beta, 1),
                f(defect, 4),
                crossings,
                obs.into(),
            ]);
        }
    }
    t.note("Theorem 1 is proven for α = 2; empirically the zones stay convex-looking for α ∈ [2, 4] at β > 1");
    t
}

/// Open problem "non-uniform power": convexity under per-station powers.
/// For two stations the zones are Apollonius-like discs; with three or
/// more, strong power imbalance dents the weak stations' zones.
pub fn ext_power_table() -> Table {
    let mut t = Table::new(
        "EXT-ψ — non-uniform transmit powers (paper §1.4 open problem)",
        &["power ratio", "n", "worst hull defect", "observation"],
    );
    for ratio in [1.0, 2.0, 5.0, 20.0] {
        for n in [2usize, 3, 4] {
            let mut b = Network::builder().background_noise(0.01).threshold(1.6);
            // Station 0 is the strong one at the centre; the rest sit on a
            // ring around it.
            b = b.station_with_power(Point::new(0.0, 0.0), ratio);
            for k in 0..(n - 1) {
                let theta = std::f64::consts::TAU * k as f64 / (n - 1).max(1) as f64;
                b = b.station(Point::new(3.0 * theta.cos(), 3.0 * theta.sin()));
            }
            let net = b.build().unwrap();
            let defect = net
                .ids()
                .filter_map(|i| measure::measure_zone(&net, i, BBox::centered_square(10.0), 201))
                .map(|m| m.convexity_defect)
                .fold(0.0f64, f64::max);
            let obs = if defect < 0.01 {
                "convex within raster noise"
            } else {
                "non-convex zone observed"
            };
            t.row(vec![f(ratio, 1), n.to_string(), f(defect, 4), obs.into()]);
        }
    }
    t.note("ratio 1 recovers the uniform case (Theorem 1 applies); moderate imbalance dents the weak \
zones (noise makes even n = 2 non-convex); extreme imbalance shrinks the weak zones below raster resolution");
    t
}

/// Emits the full EXPERIMENTS.md body (all tables, Markdown).
pub fn all_markdown(effort: Effort) -> String {
    let mut out = String::new();
    for table in [
        fig1_table(),
        fig2_table(),
        fig34_table(),
        fig5_table(),
        thm1_table(effort),
        thm2_table(effort),
        thm41_table(),
        thm3_guarantees_table(effort),
        thm3_scaling_table(effort),
        ext_alpha_table(),
        ext_power_table(),
    ] {
        out.push_str(&table.to_markdown());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig_tables_reproduce_paper_claims() {
        let t = fig1_table();
        assert_eq!(t.len(), 3);
        let text = t.to_text();
        // measured column equals the paper column on all rows
        assert!(text.contains("s2") && text.contains("nothing") && text.contains("s1"));

        let t2 = fig2_table();
        assert!(t2.to_text().contains("true"));
        assert!(!t2.to_text().contains("false\n"));

        let t34 = fig34_table();
        assert!(t34.to_text().contains("false negative"));
    }

    #[test]
    fn fig5_shows_regime_change() {
        let t = fig5_table();
        let text = t.to_text();
        assert!(text.contains("non-convex (as Fig. 5)"));
        assert!(text.contains("convex (Theorem 1)"));
        assert!(!text.contains("VIOLATES"));
    }

    #[test]
    fn thm1_zero_violations_quick() {
        let t = thm1_table(Effort::Quick);
        for line in t.to_text().lines().skip(2) {
            if line.trim().starts_with(char::is_numeric) {
                let last = line.rsplit('|').next().unwrap().trim();
                assert_eq!(last, "0", "violation row: {line}");
            }
        }
    }

    #[test]
    fn thm2_within_bounds_quick() {
        let t = thm2_table(Effort::Quick);
        assert!(!t.to_text().contains("false"));
    }

    #[test]
    fn thm41_all_hold() {
        let t = thm41_table();
        assert!(!t.to_text().contains("false"));
    }

    #[test]
    fn thm3_guarantees_quick() {
        let t = thm3_guarantees_table(Effort::Quick);
        assert!(!t.to_text().contains("false"));
    }

    #[test]
    fn markdown_bundle_contains_all_sections() {
        // Only the cheap tables; scaling is exercised in release binaries.
        let md = fig1_table().to_markdown();
        assert!(md.contains("### FIG1"));
    }
}
