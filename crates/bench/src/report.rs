//! Minimal table formatting for the experiment reports.

/// A simple column-aligned table with a title, printable as plain text or
/// Markdown.
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
    notes: Vec<String>,
}

impl Table {
    /// Creates a table with a title and column headers.
    pub fn new<S: Into<String>>(title: S, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|h| h.to_string()).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Appends a data row (must match the header arity).
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells);
        self
    }

    /// Appends a free-text note shown under the table.
    pub fn note<S: Into<String>>(&mut self, note: S) -> &mut Self {
        self.notes.push(note.into());
        self
    }

    /// The table title.
    pub fn title(&self) -> &str {
        &self.title
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders as column-aligned plain text.
    pub fn to_text(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.chars().count());
            }
        }
        let mut out = format!("== {} ==\n", self.title);
        let fmt_row = |cells: &[String]| -> String {
            let mut line = String::from(" ");
            for (w, cell) in widths.iter().zip(cells) {
                line.push_str(&format!(" {cell:<w$} |", w = w));
            }
            line.pop();
            line.pop();
            line.push('\n');
            line
        };
        out.push_str(&fmt_row(&self.headers));
        out.push_str(&format!(
            " {}\n",
            widths
                .iter()
                .map(|w| "-".repeat(w + 2))
                .collect::<Vec<_>>()
                .join("+")
        ));
        for row in &self.rows {
            out.push_str(&fmt_row(row));
        }
        for note in &self.notes {
            out.push_str(&format!("  note: {note}\n"));
        }
        out
    }

    /// Renders as a Markdown table (for EXPERIMENTS.md).
    pub fn to_markdown(&self) -> String {
        let mut out = format!("### {}\n\n", self.title);
        out.push_str(&format!("| {} |\n", self.headers.join(" | ")));
        out.push_str(&format!(
            "|{}|\n",
            self.headers
                .iter()
                .map(|_| "---")
                .collect::<Vec<_>>()
                .join("|")
        ));
        for row in &self.rows {
            out.push_str(&format!("| {} |\n", row.join(" | ")));
        }
        for note in &self.notes {
            out.push_str(&format!("\n*{note}*\n"));
        }
        out.push('\n');
        out
    }
}

/// A single machine-readable measurement record, rendered as one JSON
/// line (`{"bench":"...","field":value,...}`) so perf trajectories can be
/// tracked by grepping run logs across commits.
#[derive(Debug, Clone)]
pub struct JsonLine {
    fields: Vec<(String, String)>,
}

impl JsonLine {
    /// Starts a record for the named benchmark.
    pub fn new(bench: &str) -> Self {
        let mut line = JsonLine { fields: Vec::new() };
        line.fields
            .push(("bench".into(), format!("\"{}\"", escape_json(bench))));
        line
    }

    /// Appends a numeric field (non-finite values are emitted as JSON
    /// `null`).
    pub fn num(mut self, key: &str, value: f64) -> Self {
        let rendered = if value.is_finite() {
            format!("{value}")
        } else {
            "null".into()
        };
        self.fields.push((key.into(), rendered));
        self
    }

    /// Appends an integer field.
    pub fn int(mut self, key: &str, value: u64) -> Self {
        self.fields.push((key.into(), format!("{value}")));
        self
    }

    /// Appends a string field.
    pub fn str(mut self, key: &str, value: &str) -> Self {
        self.fields
            .push((key.into(), format!("\"{}\"", escape_json(value))));
        self
    }

    /// Renders the record as one JSON object on a single line.
    pub fn render(&self) -> String {
        let body: Vec<String> = self
            .fields
            .iter()
            .map(|(k, v)| format!("\"{}\":{}", escape_json(k), v))
            .collect();
        format!("{{{}}}", body.join(","))
    }
}

fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            // RFC 8259 forbids raw control characters in strings.
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Formats an `Option<f64>` with fixed precision, `∞`/`—` for absences.
pub fn opt_f(v: Option<f64>, prec: usize) -> String {
    match v {
        Some(x) if x.is_finite() => format!("{x:.prec$}"),
        Some(_) => "∞".into(),
        None => "—".into(),
    }
}

/// Formats a float with fixed precision.
pub fn f(v: f64, prec: usize) -> String {
    format!("{v:.prec$}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn text_rendering_aligns() {
        let mut t = Table::new("demo", &["a", "long header", "c"]);
        t.row(vec!["1".into(), "2".into(), "3".into()]);
        t.row(vec!["400".into(), "5".into(), "6".into()]);
        t.note("a note");
        let text = t.to_text();
        assert!(text.contains("== demo =="));
        assert!(text.contains("long header"));
        assert!(text.contains("note: a note"));
        let lines: Vec<&str> = text.lines().collect();
        // title + header + separator + 2 rows + note = 6 lines
        assert_eq!(lines.len(), 6);
    }

    #[test]
    fn markdown_rendering() {
        let mut t = Table::new("md", &["x", "y"]);
        t.row(vec!["1".into(), "2".into()]);
        let md = t.to_markdown();
        assert!(md.starts_with("### md"));
        assert!(md.contains("| x | y |"));
        assert!(md.contains("|---|---|"));
        assert!(md.contains("| 1 | 2 |"));
    }

    #[test]
    #[should_panic]
    fn arity_mismatch_panics() {
        let mut t = Table::new("bad", &["only one"]);
        t.row(vec!["1".into(), "2".into()]);
    }

    #[test]
    fn json_escapes_control_characters() {
        let line = JsonLine::new("a\tb\r\nc\u{1}").render();
        assert_eq!(line, "{\"bench\":\"a\\tb\\r\\nc\\u0001\"}");
    }

    #[test]
    fn json_line_renders() {
        let line = JsonLine::new("engine_batch")
            .int("stations", 4096)
            .num("ns_per_point", 12.5)
            .num("missing", f64::NAN)
            .str("backend", "voronoi \"assisted\"")
            .render();
        assert_eq!(
            line,
            "{\"bench\":\"engine_batch\",\"stations\":4096,\
             \"ns_per_point\":12.5,\"missing\":null,\
             \"backend\":\"voronoi \\\"assisted\\\"\"}"
        );
    }

    #[test]
    fn formatters() {
        assert_eq!(f(1.23456, 2), "1.23");
        assert_eq!(opt_f(Some(2.5), 1), "2.5");
        assert_eq!(opt_f(Some(f64::INFINITY), 1), "∞");
        assert_eq!(opt_f(None, 1), "—");
    }
}
