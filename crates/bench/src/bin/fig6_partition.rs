//! FIG6: render the Theorem 3 partition H⁺ / H? / H⁻ (the paper's
//! Figure 6) as ASCII, and verify it against direct SINR evaluation.
use sinr_core::Network;
use sinr_diagram::partition;
use sinr_geometry::{BBox, Point};
use sinr_pointloc::{PointLocator, QdsConfig};

fn main() {
    let net = Network::uniform(
        vec![
            Point::new(-2.5, -0.5),
            Point::new(2.5, -1.0),
            Point::new(0.0, 2.5),
        ],
        0.02,
        2.0,
    )
    .unwrap();
    let eps = 0.25;
    let ds = PointLocator::build(&net, &QdsConfig::with_epsilon(eps)).unwrap();
    let window = BBox::centered_square(6.0);
    let map = partition::compute(&ds, window, 96, 48);
    println!("FIG6 — the Theorem 3 partition (ε = {eps}): digits = H+, '?' = H?, '.' = H−\n");
    print!("{}", partition::ascii(&map));
    let c = partition::counts(&map);
    let violations = partition::verify_against(&map, &net);
    println!(
        "\npixels: {} reception / {} uncertain / {} silent (uncertain fraction {:.3})",
        c.reception,
        c.uncertain,
        c.silent,
        c.uncertain_fraction()
    );
    println!("definite answers wrong: {violations} (Theorem 3 ⇒ must be 0)");
}
