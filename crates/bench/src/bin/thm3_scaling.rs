//! THM3: complexity shape — build time, structure size, query speedup.
use sinr_bench::experiments::{thm3_scaling_table, Effort};
fn main() {
    let effort = if std::env::args().any(|a| a == "--quick") {
        Effort::Quick
    } else {
        Effort::Full
    };
    print!("{}", thm3_scaling_table(effort).to_text());
}
