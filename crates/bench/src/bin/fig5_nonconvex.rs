//! FIG5: reproduce the β < 1 non-convexity counterexample.
fn main() {
    print!("{}", sinr_bench::experiments::fig5_table().to_text());
}
