//! Runs every experiment and prints the EXPERIMENTS.md body (Markdown).
//!
//! `--quick` shrinks the grids for smoke testing; `--text` prints aligned
//! tables instead of Markdown.
use sinr_bench::experiments::{self, Effort};
fn main() {
    let effort = if std::env::args().any(|a| a == "--quick") {
        Effort::Quick
    } else {
        Effort::Full
    };
    if std::env::args().any(|a| a == "--text") {
        for t in [
            experiments::fig1_table(),
            experiments::fig2_table(),
            experiments::fig34_table(),
            experiments::fig5_table(),
            experiments::thm1_table(effort),
            experiments::thm2_table(effort),
            experiments::thm41_table(),
            experiments::thm3_guarantees_table(effort),
            experiments::thm3_scaling_table(effort),
        ] {
            println!("{}", t.to_text());
        }
    } else {
        print!("{}", experiments::all_markdown(effort));
    }
}
