//! FIG3/4: reproduce the stepwise UDG-vs-SINR divergence.
fn main() {
    print!("{}", sinr_bench::experiments::fig34_table().to_text());
}
