//! FIG2: reproduce the cumulative-interference false positive.
fn main() {
    print!("{}", sinr_bench::experiments::fig2_table().to_text());
}
