//! THM4.1: explicit δ and Δ bounds, including the tight extreme layout.
fn main() {
    print!("{}", sinr_bench::experiments::thm41_table().to_text());
}
