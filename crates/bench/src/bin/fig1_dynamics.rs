//! FIG1: reproduce the paper's Figure 1 reception narrative.
fn main() {
    print!("{}", sinr_bench::experiments::fig1_table().to_text());
}
