//! Section 1.4 extensions: zones for α > 2 and non-uniform power.
fn main() {
    print!("{}", sinr_bench::experiments::ext_alpha_table().to_text());
    println!();
    print!("{}", sinr_bench::experiments::ext_power_table().to_text());
}
