//! THM2: fatness of reception zones vs the (√β+1)/(√β−1) bound.
use sinr_bench::experiments::{thm2_table, Effort};
fn main() {
    let effort = if std::env::args().any(|a| a == "--quick") {
        Effort::Quick
    } else {
        Effort::Full
    };
    print!("{}", thm2_table(effort).to_text());
}
