//! THM1: convexity of reception zones across random networks.
use sinr_bench::experiments::{thm1_table, Effort};
fn main() {
    let effort = effort_from_args();
    print!("{}", thm1_table(effort).to_text());
}
fn effort_from_args() -> Effort {
    if std::env::args().any(|a| a == "--quick") {
        Effort::Quick
    } else {
        Effort::Full
    }
}
