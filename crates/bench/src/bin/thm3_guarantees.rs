//! THM3: verify the point-location guarantees and FIG17 ring statistics.
use sinr_bench::experiments::{thm3_guarantees_table, Effort};
fn main() {
    let effort = if std::env::args().any(|a| a == "--quick") {
        Effort::Quick
    } else {
        Effort::Full
    };
    print!("{}", thm3_guarantees_table(effort).to_text());
}
