//! Figure 5 and Theorem 1 side by side: the same station geometry is
//! convex for β ≥ 1 and visibly non-convex for β < 1.
//!
//! Also demonstrates the algebraic convexity test of Lemma 2.1: Sturm
//! counting of line/boundary crossings (≤ 2 ⟺ convex).
//!
//! Run with: `cargo run --release --example nonconvex_gallery`

use sinr_diagrams::core::{convexity, Network};
use sinr_diagrams::diagram::figures::figure5;
use sinr_diagrams::diagram::{measure, render};
use sinr_diagrams::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let fig = figure5();
    let positions = fig.network.positions().to_vec();

    println!("station geometry: {positions:?}");
    println!(
        "noise N = {}, path loss α = 2, uniform power\n",
        fig.network.noise()
    );

    for beta in [0.3, 0.7, 1.0, 1.5, 3.0] {
        let net = Network::uniform(positions.clone(), fig.network.noise(), beta)?;
        let window = BBox::centered_square(12.0);

        // Segment-sampling convexity check per zone.
        let mut total_violations = 0usize;
        for i in net.ids() {
            let zone = net.reception_zone(i);
            if let Some(report) = convexity::check_zone_convexity(&zone, 32, 16, 1e-7) {
                total_violations += report.violations.len();
            }
        }
        // Raster-level convexity defect.
        let defect = net
            .ids()
            .filter_map(|i| measure::measure_zone(&net, i, window, 201))
            .map(|m| m.convexity_defect)
            .fold(0.0f64, f64::max);

        println!(
            "β = {beta:3.1}  | segment violations: {total_violations:5} | hull defect: {defect:.4} | {}",
            if beta >= 1.0 { "Theorem 1: must be convex" } else { "below 1: convexity not guaranteed" }
        );
    }

    // Show the non-convex diagram itself.
    let map = ReceptionMap::compute(&fig.network, BBox::centered_square(6.0), 72, 36);
    println!("\nβ = 0.3 diagram (strongest station per pixel; note the dents):");
    print!("{}", render::ascii(&map));

    // Lemma 2.1 in action: aim a line through a violation and count
    // boundary crossings algebraically.
    for i in fig.network.ids() {
        let zone = fig.network.reception_zone(i);
        if let Some(report) = convexity::check_zone_convexity(&zone, 48, 24, 1e-7) {
            if let Some(v) = report.violations.first() {
                let crossings = convexity::boundary_crossings_on_line(
                    &fig.network,
                    i,
                    v.p1,
                    v.p2 - v.p1,
                    -50.0,
                    51.0,
                );
                println!(
                    "\nLemma 2.1 witness for {i}: the line through ({:.2},{:.2})→({:.2},{:.2})",
                    v.p1.x, v.p1.y, v.p2.x, v.p2.y
                );
                println!(
                    "  crosses ∂H_{} {} times (convex would allow at most 2)",
                    i.index(),
                    crossings
                );
                break;
            }
        }
    }
    Ok(())
}
