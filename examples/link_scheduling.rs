//! A higher-layer application of the library: SINR-feasible link
//! scheduling — one of the protocol-design tasks the paper's introduction
//! motivates ("transmission scheduling, frequency allocation, topology
//! control, …").
//!
//! Given a set of sender→receiver links, partition them into the fewest
//! rounds such that in each round every receiver hears its sender under
//! the SINR model (all senders of the round transmit simultaneously).
//! We use a first-fit greedy and compare against the UDG/protocol-model
//! schedule, illustrating the paper's point that graph-model schedules
//! can be both wasteful (false collisions) and invalid (ignored
//! cumulative interference).
//!
//! Run with: `cargo run --release --example link_scheduling`

use rand::{Rng, SeedableRng};
use sinr_diagrams::core::Network;
use sinr_diagrams::graphs::ProtocolModel;
use sinr_diagrams::prelude::*;

#[derive(Debug, Clone, Copy)]
struct Link {
    sender: Point,
    receiver: Point,
}

/// Is every link of `round` simultaneously feasible under SINR?
fn sinr_round_feasible(round: &[Link], noise: f64, beta: f64) -> bool {
    if round.is_empty() {
        return true;
    }
    if round.len() == 1 {
        // Single transmitter: signal over noise only.
        let l = round[0];
        let d2 = l.sender.dist_sq(l.receiver);
        return noise == 0.0 || (1.0 / d2) / noise >= beta;
    }
    let net = Network::uniform(round.iter().map(|l| l.sender).collect(), noise, beta)
        .expect("valid round network");
    round
        .iter()
        .enumerate()
        .all(|(k, l)| net.is_heard(StationId(k), l.receiver))
}

/// Is every link of `round` simultaneously feasible under the protocol
/// model with the given radius?
fn udg_round_feasible(round: &[Link], radius: f64) -> bool {
    if round.is_empty() {
        return true;
    }
    let model = ProtocolModel::new(round.iter().map(|l| l.sender).collect(), radius);
    let all = vec![true; round.len()];
    round
        .iter()
        .enumerate()
        .all(|(k, l)| model.is_heard(&all, k, l.receiver))
}

/// First-fit greedy scheduling with an arbitrary feasibility oracle.
fn greedy_schedule(links: &[Link], feasible: impl Fn(&[Link]) -> bool) -> Vec<Vec<Link>> {
    let mut rounds: Vec<Vec<Link>> = Vec::new();
    for &link in links {
        let mut placed = false;
        for round in rounds.iter_mut() {
            round.push(link);
            if feasible(round) {
                placed = true;
                break;
            }
            round.pop();
        }
        if !placed {
            rounds.push(vec![link]);
        }
    }
    rounds
}

fn main() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(2025);
    let noise = 0.01;
    let beta = 2.0;
    let udg_radius = 1.0;

    // Random short links in a 20×20 field.
    let links: Vec<Link> = (0..40)
        .map(|_| {
            let sender = Point::new(rng.gen_range(-10.0..10.0), rng.gen_range(-10.0..10.0));
            let angle = rng.gen_range(0.0..std::f64::consts::TAU);
            let dist = rng.gen_range(0.2..0.8);
            Link {
                sender,
                receiver: sender + sinr_diagrams::geometry::Vector::from_angle(angle) * dist,
            }
        })
        .collect();

    let sinr_rounds = greedy_schedule(&links, |r| sinr_round_feasible(r, noise, beta));
    let udg_rounds = greedy_schedule(&links, |r| udg_round_feasible(r, udg_radius));

    println!(
        "{} links, β = {beta}, N = {noise}, UDG radius = {udg_radius}\n",
        links.len()
    );
    println!("greedy SINR schedule : {} rounds", sinr_rounds.len());
    println!("greedy UDG  schedule : {} rounds", udg_rounds.len());

    // The paper's warning in action: how many UDG rounds are actually
    // *invalid* under the physical model (cumulative interference)?
    let invalid = udg_rounds
        .iter()
        .filter(|r| !sinr_round_feasible(r, noise, beta))
        .count();
    println!(
        "UDG rounds that violate the SINR model when executed: {invalid}/{}",
        udg_rounds.len()
    );

    println!(
        "\nSINR rounds (links per round): {:?}",
        sinr_rounds.iter().map(|r| r.len()).collect::<Vec<_>>()
    );
    println!(
        "UDG  rounds (links per round): {:?}",
        udg_rounds.iter().map(|r| r.len()).collect::<Vec<_>>()
    );

    // Every SINR round is feasible by construction — verify.
    assert!(sinr_rounds
        .iter()
        .all(|r| sinr_round_feasible(r, noise, beta)));
    println!("\nall SINR rounds re-verified feasible ✓");
}
