//! Queue-stability link scheduling under the SINR model — the
//! protocol-design task the paper's introduction motivates
//! ("transmission scheduling, frequency allocation, topology control,
//! …"), run as a *simulation* rather than a one-shot schedule.
//!
//! The setup is the classic queue-stability experiment: `N_LINKS`
//! sender→receiver pairs, Bernoulli(λ) packet arrivals per link per
//! slot, and a greedy max-feasible scheduler that each slot activates a
//! SINR-feasible subset of the backlogged links (all active senders
//! transmit simultaneously; a served link drains one packet). Below the
//! service capacity the backlog stays bounded; above it the queues grow
//! without bound — both regimes are asserted at the end.
//!
//! What makes this an end-to-end exercise of the library rather than a
//! toy loop:
//!
//! * the transmit pattern of every scheduling iteration is realized as
//!   `SetPower` surgery on one epoch-versioned [`Network`], kept in
//!   sync with a [`BoxedEngine`] through incremental delta application
//!   (the dynamic-engine path) — thousands of mutate+schedule
//!   timesteps, no rebuilds;
//! * every mutation is simultaneously streamed to an in-process
//!   [`sinr_diagrams::server`] session as revision-fenced `Mutate`
//!   frames, so the same churn also drives the wire path;
//! * per-slot channel randomness comes from the stochastic channel
//!   subsystem's public seeded gain stream
//!   ([`ChannelModel::gains_for_trial`]), folded into the network as
//!   per-station power multipliers;
//! * periodically the simulation probes outage: seeded Monte-Carlo
//!   [`QueryEngine::reception_probability_batch`] locally **and**
//!   `ReceptionProbBatch` through the server — asserted bit-identical
//!   (the seeding contract across the wire);
//! * SINR-distribution quantiles under Rayleigh fading close each
//!   regime ([`QueryEngine::sinr_quantiles_batch`]).
//!
//! Run with: `cargo run --release --example link_scheduling`
//! (no arguments; finishes in seconds — the CI example-smoke loop runs
//! exactly this).

use rand::{Rng, SeedableRng};
use sinr_diagrams::prelude::*;
use sinr_diagrams::server::serve_in_process;

/// Links around a ring: senders on the outer circle, receivers pulled
/// one unit inward — every transmission interferes with every other,
/// so the service capacity is interference-limited, not trivial.
const N_LINKS: usize = 10;
const SENDER_RADIUS: f64 = 4.0;
const RECEIVER_RADIUS: f64 = 3.0;
const NOISE: f64 = 0.01;
const BETA: f64 = 2.0;

/// A silenced sender keeps its station slot (station count is fixed;
/// only powers churn) at a power that contributes no interference.
const SILENT_POWER: f64 = 1e-9;

/// Slots per regime, and the cadence of jitter and outage probes.
const STEPS: usize = 1200;
const JITTER_EVERY: usize = 97;
const PROBE_EVERY: usize = 256;
const MC_TRIALS: u32 = 32;

fn link_positions() -> (Vec<Point>, Vec<Point>) {
    let mut senders = Vec::with_capacity(N_LINKS);
    let mut receivers = Vec::with_capacity(N_LINKS);
    for k in 0..N_LINKS {
        let theta = std::f64::consts::TAU * k as f64 / N_LINKS as f64;
        let (sin, cos) = theta.sin_cos();
        senders.push(Point::new(SENDER_RADIUS * cos, SENDER_RADIUS * sin));
        receivers.push(Point::new(RECEIVER_RADIUS * cos, RECEIVER_RADIUS * sin));
    }
    (senders, receivers)
}

/// What one regime run reports back for the stability assertions.
struct RegimeReport {
    lambda: f64,
    arrivals: usize,
    served: usize,
    max_backlog: usize,
    final_backlog: usize,
    probes: usize,
}

/// Applies one `SetPower` pattern to the local network + engine (the
/// incremental dynamic path) and mirrors it to the server session as a
/// revision-fenced `Mutate` frame. Returns the advanced revision.
fn apply_powers(
    net: &mut Network,
    engine: &mut BoxedEngine,
    client: &mut Client<sinr_diagrams::server::PipeTransport>,
    revision: u64,
    powers: &[f64],
) -> u64 {
    let ops: Vec<SurgeryOp> = powers
        .iter()
        .enumerate()
        .map(|(i, &power)| SurgeryOp::SetPower {
            id: StationId(i),
            power,
        })
        .collect();
    let deltas = net.apply_ops(&ops).expect("valid power pattern");
    for delta in &deltas {
        engine.apply(delta).expect("incremental apply");
    }
    let rev = client.mutate(revision, &ops).expect("server mutate");
    assert_eq!(rev, net.revision(), "server and mirror revisions agree");
    rev
}

/// One slot of the greedy scheduler: start from every backlogged link,
/// and while any active link misses β at its receiver, drop the one
/// with the smallest SINR margin. Each iteration's transmit pattern is
/// a real `SetPower` timestep through the engine and the server.
/// Returns the served link set (the final feasible active set).
#[allow(clippy::too_many_arguments)]
fn schedule_slot(
    net: &mut Network,
    engine: &mut BoxedEngine,
    client: &mut Client<sinr_diagrams::server::PipeTransport>,
    revision: &mut u64,
    receivers: &[Point],
    backlog: &[usize],
    slot_gains: &[f64],
) -> Vec<usize> {
    let mut active: Vec<usize> = (0..N_LINKS).filter(|&i| backlog[i] > 0).collect();
    while !active.is_empty() {
        // Realize the transmit pattern: active senders at their faded
        // gain, silent ones effectively off.
        let powers: Vec<f64> = (0..N_LINKS)
            .map(|i| {
                if active.contains(&i) {
                    slot_gains[i].max(SILENT_POWER)
                } else {
                    SILENT_POWER
                }
            })
            .collect();
        *revision = apply_powers(net, engine, client, *revision, &powers);

        // Feasibility of each active link at its own receiver.
        let mut worst: Option<(usize, f64)> = None;
        for (slot, &i) in active.iter().enumerate() {
            let mut sinr = [0.0];
            engine.sinr_batch(StationId(i), &receivers[i..i + 1], &mut sinr);
            if sinr[0] < BETA && worst.is_none_or(|(_, w)| sinr[0] < w) {
                worst = Some((slot, sinr[0]));
            }
        }
        match worst {
            // Everyone active clears β: this is the served set.
            None => return active,
            Some((slot, _)) => {
                active.remove(slot);
            }
        }
    }
    active
}

/// Runs one arrival-rate regime end to end; all cross-checks inside.
fn run_regime(lambda: f64, seed: u64) -> RegimeReport {
    let (senders, receivers) = link_positions();
    let mut b = Network::builder().background_noise(NOISE).threshold(BETA);
    for s in &senders {
        b = b.station(*s);
    }
    let mut net = b.build().expect("valid ring network");
    let mut engine = BoxedEngine::simd_scan(&net);

    let mut client = serve_in_process();
    let mut revision = client
        .bind_network(BackendId::SimdScan, 0.0, &net)
        .expect("bind server session");

    // Per-slot fading: the channel subsystem's public seeded gain
    // stream, one trial per slot — the same stream any replay would
    // draw.
    let fading = ChannelModel::LogNormalShadowing { sigma_db: 2.0 };
    let probe_channel = ChannelModel::Composed(vec![
        ChannelModel::LogNormalShadowing { sigma_db: 3.0 },
        ChannelModel::RayleighFading,
    ]);

    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut backlog = vec![0usize; N_LINKS];
    let mut gains = vec![1.0f64; N_LINKS];
    let mut report = RegimeReport {
        lambda,
        arrivals: 0,
        served: 0,
        max_backlog: 0,
        final_backlog: 0,
        probes: 0,
    };

    for step in 0..STEPS {
        // Bernoulli(λ) arrivals.
        for q in backlog.iter_mut() {
            if rng.gen_range(0.0..1.0) < lambda {
                *q += 1;
                report.arrivals += 1;
            }
        }

        // Occasional mobility: jitter one sender through the same
        // dynamic path (a `Move` timestep, mirrored to the server).
        if step % JITTER_EVERY == JITTER_EVERY - 1 {
            let i = rng.gen_range(0..N_LINKS);
            let to = Point::new(
                senders[i].x + rng.gen_range(-0.05..0.05),
                senders[i].y + rng.gen_range(-0.05..0.05),
            );
            let op = SurgeryOp::Move {
                id: StationId(i),
                to,
            };
            let deltas = net.apply_ops(std::slice::from_ref(&op)).expect("jitter");
            for delta in &deltas {
                engine.apply(delta).expect("incremental apply");
            }
            revision = client.mutate(revision, &[op]).expect("server jitter");
        }

        // This slot's realized channel state, then the scheduler.
        fading.gains_for_trial(seed ^ 0xFAD, step as u32, &mut gains);
        let served = schedule_slot(
            &mut net,
            &mut engine,
            &mut client,
            &mut revision,
            &receivers,
            &backlog,
            &gains,
        );
        for &i in &served {
            backlog[i] -= 1;
            report.served += 1;
        }
        let total: usize = backlog.iter().sum();
        report.max_backlog = report.max_backlog.max(total);

        // Outage probe: all senders back at unit power, then the same
        // seeded Monte-Carlo question asked locally (dynamic engine)
        // and through the server — bit-identical by the seeding
        // contract, even after all this churn.
        if step % PROBE_EVERY == PROBE_EVERY - 1 {
            revision = apply_powers(
                &mut net,
                &mut engine,
                &mut client,
                revision,
                &[1.0; N_LINKS],
            );
            let mc_seed = seed ^ 0xCAFE ^ step as u64;
            let mut local = vec![0.0; N_LINKS];
            engine
                .reception_probability_batch(
                    &probe_channel,
                    McConfig::new(MC_TRIALS, mc_seed),
                    &receivers,
                    &mut local,
                )
                .expect("local Monte-Carlo probe");
            let (rev, remote) = client
                .reception_prob_batch(MC_TRIALS, mc_seed, &probe_channel, &receivers)
                .expect("server Monte-Carlo probe");
            assert_eq!(rev, net.revision());
            for (k, (l, r)) in local.iter().zip(&remote).enumerate() {
                assert_eq!(
                    l.to_bits(),
                    r.to_bits(),
                    "server probe diverged from local engine at receiver {k}"
                );
            }
            report.probes += 1;
        }
    }

    // Close the regime with the engine-local distribution view: SINR
    // quantiles of link 0 at its receiver under Rayleigh fading.
    revision = apply_powers(
        &mut net,
        &mut engine,
        &mut client,
        revision,
        &[1.0; N_LINKS],
    );
    let _ = revision;
    let quantiles = [0.1, 0.5, 0.9];
    let mut q_out = vec![0.0; quantiles.len()];
    engine
        .sinr_quantiles_batch(
            &ChannelModel::RayleighFading,
            McConfig::new(256, seed ^ 0x0123),
            StationId(0),
            &receivers[0..1],
            &quantiles,
            &mut q_out,
        )
        .expect("quantiles");
    println!(
        "  λ = {lambda:.2}: link-0 SINR under Rayleigh — p10 {:.2}, median {:.2}, p90 {:.2} (β = {BETA})",
        q_out[0], q_out[1], q_out[2]
    );
    assert!(
        q_out[0] <= q_out[1] && q_out[1] <= q_out[2],
        "quantiles must be monotone"
    );

    report.final_backlog = backlog.iter().sum();
    report
}

fn main() {
    println!(
        "{N_LINKS} ring links, β = {BETA}, N = {NOISE}, {STEPS} slots per regime; \
         every transmit pattern is a SetPower timestep through the dynamic \
         engine AND a Mutate frame to an in-process server session"
    );

    let stable = run_regime(0.30, 0x11);
    let unstable = run_regime(0.90, 0x22);

    for r in [&stable, &unstable] {
        println!(
            "  λ = {:.2}: {} arrivals, {} served, max backlog {}, final backlog {}, {} \
             bit-identical server probes",
            r.lambda, r.arrivals, r.served, r.max_backlog, r.final_backlog, r.probes
        );
    }

    // The stability dichotomy the experiment is named for.
    assert!(
        stable.max_backlog < 40 && stable.final_backlog < 20,
        "sub-capacity regime must keep queues bounded: max {}, final {}",
        stable.max_backlog,
        stable.final_backlog
    );
    assert!(
        unstable.final_backlog > 10 * stable.max_backlog.max(1)
            && unstable.final_backlog > STEPS / 2,
        "super-capacity regime must grow without bound: final {}",
        unstable.final_backlog
    );
    assert!(stable.probes >= 4 && unstable.probes >= 4);
    println!(
        "\nstable regime bounded, unstable regime diverged — queue-stability dichotomy verified ✓"
    );
}
