//! Server-side reception heatmaps: the `HeatmapBatch` frame.
//!
//! A publisher session `Register`s a network under a name on a pooled
//! server; a viewer session `Attach`es and asks the server to rasterise
//! a window (`HeatmapBatch`), so one frame replaces shipping every
//! pixel centre as a `LocateBatch` — and server-side the raster runs
//! through the hierarchical quadtree refinement, paying per-point
//! evaluation only near zone boundaries (`cells_evaluated` reports the
//! exact count). The viewer verifies the decoded pixels bit-for-bit
//! against a local dense raster at the same revision, renders a small
//! ASCII view, then walks the `Unregister` lifecycle: refused with
//! `StillAttached` while the viewer holds its engine, permitted once
//! the viewer disconnects.
//!
//! Run with: `cargo run --release --example heatmap_service`

use sinr_diagrams::core::gen;
use sinr_diagrams::diagram::PixelLabel;
use sinr_diagrams::prelude::*;
use sinr_diagrams::server::{ClientError, ErrorCode};
use std::time::Instant;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A mid-sized random network and the window we will rasterise.
    let net = gen::random_uniform_network(0x8EA7, 48, 12.0, 0.02, 2.0)?;
    let window = BBox::new(Point::new(-9.0, -6.0), Point::new(9.0, 6.0));
    let (width, height) = (384u32, 256u32);

    let server = Server::bind("127.0.0.1:0")?;
    let handle = server.spawn_pooled(2)?;
    let addr = handle.addr().to_string();

    // Publisher: registers the network server-wide and keeps its session
    // open (registration outlives the session either way — only
    // `Unregister` removes the name).
    let mut publisher = Client::connect(&addr)?;
    publisher.register_network("coverage", &net)?;

    // Viewer: attaches to the shared engine and asks for the heatmap.
    let mut viewer = Client::connect(&addr)?;
    let revision = viewer.attach("coverage", BackendId::SimdScan, 0.0)?;
    let start = Instant::now();
    let (rev, cells, cells_evaluated) =
        viewer.heatmap_batch(window.min, window.max, width, height)?;
    let elapsed = start.elapsed();
    assert_eq!(rev, revision, "heatmap fenced at the attach revision");

    // Differential check: the wire pixels must equal a local dense
    // raster (every pixel centre located) bit-for-bit.
    let local = SimdScan::new(&net);
    let dense = ReceptionMap::compute_with_engine(&local, window, width as usize, height as usize);
    let pixels = (width as u64) * (height as u64);
    assert_eq!(cells.len() as u64, pixels);
    for row in 0..height as usize {
        for col in 0..width as usize {
            let want = match dense.at(col, row) {
                PixelLabel::Heard(id) => Located::Reception(id),
                PixelLabel::Silent => Located::Silent,
            };
            assert_eq!(
                cells[row * width as usize + col],
                want,
                "pixel ({col},{row}) diverged from the local dense raster"
            );
        }
    }
    println!(
        "{width}×{height} heatmap over [{}, {}]: {pixels} pixels served+verified in {:.1} ms",
        window.min,
        window.max,
        elapsed.as_secs_f64() * 1e3
    );
    println!(
        "server evaluated {cells_evaluated} pixels per-point ({:.1}%); the rest were resolved \
         wholesale by interval certificates",
        100.0 * cells_evaluated as f64 / pixels as f64
    );

    // A coarse ASCII view (top row first): station digit for reception,
    // '·' for silence.
    let (cols, rows) = (72usize, 24usize);
    for r in (0..rows).rev() {
        let mut line = String::with_capacity(cols);
        for c in 0..cols {
            let col = (c * width as usize) / cols;
            let row = (r * height as usize) / rows;
            line.push(match cells[row * width as usize + col] {
                Located::Reception(id) => char::from_digit((id.0 % 10) as u32, 10).unwrap(),
                _ => '·',
            });
        }
        println!("{line}");
    }

    // Unregister lifecycle: refused while the viewer is attached…
    match publisher.unregister_network("coverage") {
        Err(ClientError::Server { code, message }) => {
            assert_eq!(code, ErrorCode::StillAttached);
            println!("unregister while attached refused as expected: {message}");
        }
        other => panic!("expected StillAttached, got {other:?}"),
    }
    // …and permitted once the attachment is gone. The viewer's drop
    // releases the refcount when the server reaps the connection, so
    // poll briefly.
    drop(viewer);
    let deadline = Instant::now() + std::time::Duration::from_secs(10);
    loop {
        match publisher.unregister_network("coverage") {
            Ok(()) => break,
            Err(ClientError::Server {
                code: ErrorCode::StillAttached,
                ..
            }) if Instant::now() < deadline => {
                std::thread::sleep(std::time::Duration::from_millis(5));
            }
            Err(e) => return Err(e.into()),
        }
    }
    println!("'coverage' unregistered after the viewer detached");

    drop(publisher);
    handle.shutdown();
    println!("pooled server shut down cleanly");
    Ok(())
}
