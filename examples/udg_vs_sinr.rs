//! Figures 2–4 of the paper: where the unit-disk-graph (protocol) model
//! and the SINR model disagree.
//!
//! * Figure 2 — *false positive*: UDG says the receiver hears s1; the
//!   cumulative interference of three stations just outside the UDG
//!   radius silences it in the SINR model.
//! * Figures 3–4 — stations join one at a time; the models' answers
//!   diverge step by step (including the *false negative* where the UDG
//!   collision rule drops a message the SINR model delivers).
//!
//! Run with: `cargo run --example udg_vs_sinr`

use sinr_diagrams::diagram::figures::{figure2, figure34};
use sinr_diagrams::diagram::render;
use sinr_diagrams::graphs::compare::compare_on_grid;
use sinr_diagrams::prelude::*;

fn main() {
    // ---------------- Figure 2: cumulative interference -----------------
    let fig2 = figure2();
    let all = vec![true; 4];
    println!(
        "=== Figure 2: cumulative interference (β = {}) ===",
        fig2.network.beta()
    );
    println!("receiver p = {}", fig2.receiver);
    println!(
        "  UDG model : p hears {:?}",
        fig2.udg.heard_at(&all, fig2.receiver)
    );
    println!(
        "  SINR model: p hears {:?}",
        fig2.network.heard_at(fig2.receiver)
    );
    let counts = compare_on_grid(
        &fig2.network,
        &fig2.udg,
        &all,
        &BBox::centered_square(3.0),
        61,
    );
    println!("  disagreement over a 3×3 window: {counts}");

    let udg_map =
        ReceptionMap::compute_protocol(&fig2.udg, &all, BBox::centered_square(3.0), 64, 32);
    let sinr_map = ReceptionMap::compute(&fig2.network, BBox::centered_square(3.0), 64, 32);
    println!("\n  UDG diagram:");
    print!("{}", indent(&render::ascii(&udg_map)));
    println!("  SINR diagram:");
    print!("{}", indent(&render::ascii(&sinr_map)));

    // ---------------- Figures 3–4: stepwise divergence ------------------
    let fig34 = figure34();
    println!("\n=== Figures 3–4: adding transmitters one at a time ===");
    println!("receiver p = {}\n", fig34.receiver);
    println!("  step | transmitting        | UDG hears | SINR hears | note");
    println!("  -----+---------------------+-----------+------------+---------------------");
    for step in &fig34.steps {
        let tx: Vec<String> = step
            .transmitting
            .iter()
            .enumerate()
            .filter(|(_, t)| **t)
            .map(|(i, _)| format!("s{}", i + 1))
            .collect();
        let note = match (step.expected_udg, step.expected_sinr) {
            (None, Some(_)) => "UDG false negative",
            (Some(_), None) => "UDG false positive",
            (a, b) if a == b => "models agree",
            _ => "models differ",
        };
        // Display with the paper's 1-based station names (s1..s4).
        let name = |s: Option<sinr_diagrams::core::StationId>| {
            s.map(|s| format!("s{}", s.index() + 1))
                .unwrap_or_else(|| "—".into())
        };
        println!(
            "  {:4} | {:19} | {:9} | {:10} | {}",
            step.step,
            tx.join(", "),
            name(step.expected_udg),
            name(step.expected_sinr),
            note,
        );
    }
}

fn indent(s: &str) -> String {
    s.lines().map(|l| format!("    {l}\n")).collect()
}
