//! Theorems 2 / 4.1 / 4.2 empirically: sweep the reception threshold β
//! and the network size n, measure δ, Δ and the fatness parameter
//! φ = Δ/δ, and compare against the paper's closed-form bounds.
//!
//! Run with: `cargo run --release --example fatness_survey`

use sinr_diagrams::core::{bounds, gen, StationId};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("Theorem 4.2: φ ≤ (√β+1)/(√β−1), independent of n.\n");
    println!("   β   |  n  | measured φ (worst) | Thm 4.2 bound | Thm 4.1 O(√n) bound");
    println!("  -----+-----+--------------------+---------------+--------------------");

    for beta in [1.5, 2.0, 3.0, 6.0, 10.0] {
        for n in [2usize, 4, 8, 16] {
            let mut worst = 0.0f64;
            for seed in 0..5u64 {
                let net =
                    gen::random_separated_network(1000 * seed + n as u64, n, 6.0, 1.2, 0.01, beta)?;
                for i in net.ids() {
                    if let Some(profile) = net.reception_zone(i).radial_profile(128) {
                        if let Some(phi) = profile.fatness() {
                            worst = worst.max(phi);
                        }
                    }
                }
            }
            let b42 = bounds::fatness_bound(beta).unwrap();
            let b41 = bounds::fatness_bound_sqrt_n(n, beta).unwrap();
            println!(
                "  {beta:4.1} | {n:3} | {worst:18.4} | {b42:13.4} | {b41:18.4}{}",
                if worst <= b42 {
                    ""
                } else {
                    "  *** VIOLATION ***"
                }
            );
        }
    }

    println!("\nTheorem 4.1 explicit bounds on δ and Δ (worst stations over seeds):");
    println!("   n  | measured δ | δ lower bnd | measured Δ | Δ upper bnd");
    println!("  ----+------------+-------------+------------+------------");
    for n in [2usize, 4, 8, 16, 32] {
        let net = gen::random_separated_network(4242 + n as u64, n, 8.0, 1.5, 0.02, 2.0)?;
        let mut rows: Vec<(f64, f64, f64, f64)> = Vec::new();
        for i in net.ids() {
            let zb = bounds::zone_bounds(&net, i);
            if let Some(profile) = net.reception_zone(i).radial_profile(128) {
                rows.push((
                    profile.delta(),
                    zb.delta_lower,
                    profile.big_delta(),
                    zb.delta_upper.unwrap_or(f64::INFINITY),
                ));
            }
        }
        // Report the tightest case (smallest margin) per network.
        if let Some(row) = rows
            .iter()
            .min_by(|a, b| (a.0 - a.1).partial_cmp(&(b.0 - b.1)).unwrap())
        {
            println!(
                "  {n:3} | {:10.4} | {:11.4} | {:10.4} | {:10.4}",
                row.0, row.1, row.2, row.3
            );
        }
    }

    println!("\nThe extreme layout of Theorem 4.1's δ analysis (all interferers");
    println!("co-located at distance κ): measured δ approaches the bound.");
    println!("   n  |   κ  | measured δ | δ lower bound | ratio");
    for n in [2usize, 4, 8, 16, 64] {
        let kappa = 2.0;
        let net = sinr_diagrams::core::Network::uniform(gen::delta_extreme(n, kappa), 0.0, 2.0)?;
        let zone = net.reception_zone(StationId(0));
        let measured = zone.boundary_radius(0.0).unwrap();
        let bound = bounds::delta_lower_bound(kappa, n, 0.0, 2.0);
        println!(
            "  {n:3} | {kappa:4.1} | {measured:10.6} | {bound:13.6} | {:5.3}",
            measured / bound
        );
    }
    Ok(())
}
