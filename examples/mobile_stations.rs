//! The paper's dynamic/mobile open problem (Section 1.4) explored with
//! the library: stations move, and "the diagram changes dynamically with
//! time" (Section 1.1). A fixed receiver experiences reception handovers
//! and outages as an interferer orbits the field.
//!
//! Since the epoch-versioned dynamic path landed, this example runs the
//! way a mobile workload should: **one** network mutated in place
//! ([`Network::move_station`]) and **one** query engine kept in sync
//! through [`QueryEngine::apply`] — no per-timestep rebuilds anywhere.
//! Each timestep answers a whole batch of probe receivers through
//! `locate_batch`, plus the zone-geometry time series (δ, Δ, fatness) of
//! Theorem 4.2, which holds at every instant of the motion.
//!
//! Run with: `cargo run --release --example mobile_stations`

use sinr_diagrams::core::engine::VoronoiAssisted;
use sinr_diagrams::core::{bounds, Network, StationId};
use sinr_diagrams::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Two fixed stations and one mobile interferer orbiting the origin.
    let fixed_a = Point::new(-3.0, 0.0);
    let fixed_b = Point::new(3.0, 0.0);
    let receiver = Point::new(-1.2, 0.6);
    let beta = 1.8;
    let noise = 0.02;
    let orbit_radius = 2.2;
    let steps = 24;
    let mobile = StationId(2);
    let orbit = |k: usize| {
        let theta = std::f64::consts::TAU * k as f64 / steps as f64;
        Point::new(orbit_radius * theta.cos(), orbit_radius * theta.sin())
    };

    // A probe array around the receiver: the batched queries each
    // timestep answers in one `locate_batch` pass.
    let probes: Vec<Point> = (-2..=2)
        .flat_map(|a| (-2..=2).map(move |b| receiver + Vector::new(a as f64 * 0.3, b as f64 * 0.3)))
        .collect();
    let mut located = vec![Located::Silent; probes.len()];

    // ONE network, mutated in place; ONE engine, patched per delta.
    let mut net = Network::uniform(vec![fixed_a, fixed_b, orbit(0)], noise, beta)?;
    let mut engine = VoronoiAssisted::new(&net);

    println!("receiver at {receiver}; β = {beta}, N = {noise}");
    println!("s0 = {fixed_a}, s1 = {fixed_b}, s2 orbits at radius {orbit_radius}");
    println!(
        "engine: VoronoiAssisted (kernel {}), kept in sync by NetworkDelta::apply\n",
        engine.kernel().name()
    );
    println!("  t   | s2 position        | receiver hears | probes hearing s0 | SINR(s0,p) | δ(H0)  | Δ(H0)  | φ(H0) (bound {:.3})",
        bounds::fatness_bound(beta).unwrap());

    let mut heard_sequence = Vec::with_capacity(steps);
    for k in 0..steps {
        if k > 0 {
            // The dynamic path: move the interferer in place and patch
            // the engine with the emitted delta. Without the `apply`,
            // the next query would panic with a revision mismatch — a
            // stale engine never answers.
            let delta = net.move_station(mobile, orbit(k))?;
            assert!(engine.is_stale(), "mutation must stale the engine");
            engine.apply(&delta)?;
        }
        assert!(!engine.is_stale());
        assert_eq!(engine.revision(), net.revision());

        let heard = engine.locate(receiver).station();
        heard_sequence.push(heard);
        engine.locate_batch(&probes, &mut located);
        let probes_s0 = located
            .iter()
            .filter(|l| l.station() == Some(StationId(0)))
            .count();

        let zone = net.reception_zone(StationId(0));
        let profile = zone.radial_profile(90).expect("bounded zone");
        let pos = net.position(mobile);
        println!(
            "  {k:3} | ({:6.2}, {:6.2})   | {:14} | {:9}/{:2}      | {:10.4} | {:6.4} | {:6.4} | {:.4}",
            pos.x,
            pos.y,
            heard.map(|i| i.to_string()).unwrap_or_else(|| "—".into()),
            probes_s0,
            probes.len(),
            net.sinr(StationId(0), receiver),
            profile.delta(),
            profile.big_delta(),
            profile.fatness().unwrap(),
        );
        // Theorem 4.2 holds at every instant of the motion.
        assert!(profile.fatness().unwrap() <= bounds::fatness_bound(beta).unwrap() + 1e-6);
    }

    // Summarise the dynamics: handovers and outages along the orbit.
    let mut handovers = 0usize;
    let mut outages = 0usize;
    for w in heard_sequence.windows(2) {
        if w[0] != w[1] {
            handovers += 1;
        }
        if w[1].is_none() {
            outages += 1;
        }
    }
    println!(
        "\nacross one orbit: {handovers} reception changes, {outages} outage steps — \
         the \"dynamic diagram\" of Section 1.1 in action"
    );
    println!(
        "network finished at revision {} after {} in-place moves; \
         the engine followed via incremental apply, zero rebuilds",
        net.revision(),
        steps - 1
    );
    Ok(())
}
