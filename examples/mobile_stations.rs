//! The paper's dynamic/mobile open problem (Section 1.4) explored with
//! the library: stations move, and "the diagram changes dynamically with
//! time" (Section 1.1). A fixed receiver experiences reception handovers
//! and outages as an interferer orbits the field.
//!
//! Also shows the zone-geometry time series: δ, Δ and fatness of a zone
//! as the interference configuration changes — always respecting the
//! Theorem 4.2 bound at every instant.
//!
//! Run with: `cargo run --release --example mobile_stations`

use sinr_diagrams::core::{bounds, Network, StationId};
use sinr_diagrams::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Two fixed stations and one mobile interferer orbiting the origin.
    let fixed_a = Point::new(-3.0, 0.0);
    let fixed_b = Point::new(3.0, 0.0);
    let receiver = Point::new(-1.2, 0.6);
    let beta = 1.8;
    let noise = 0.02;
    let orbit_radius = 2.2;

    println!("receiver at {receiver}; β = {beta}, N = {noise}");
    println!("s0 = {fixed_a}, s1 = {fixed_b}, s2 orbits at radius {orbit_radius}\n");
    println!("  t   | s2 position        | receiver hears | SINR(s0,p) | δ(H0)  | Δ(H0)  | φ(H0) (bound {:.3})",
        bounds::fatness_bound(beta).unwrap());

    let steps = 24;
    let mut heard_sequence = Vec::with_capacity(steps);
    for k in 0..steps {
        let theta = std::f64::consts::TAU * k as f64 / steps as f64;
        let mobile = Point::new(orbit_radius * theta.cos(), orbit_radius * theta.sin());
        let net = Network::uniform(vec![fixed_a, fixed_b, mobile], noise, beta)?;

        let heard = net.heard_at(receiver);
        heard_sequence.push(heard);
        let zone = net.reception_zone(StationId(0));
        let profile = zone.radial_profile(90).expect("bounded zone");
        println!(
            "  {k:3} | ({:6.2}, {:6.2})   | {:14} | {:10.4} | {:6.4} | {:6.4} | {:.4}",
            mobile.x,
            mobile.y,
            heard.map(|i| i.to_string()).unwrap_or_else(|| "—".into()),
            net.sinr(StationId(0), receiver),
            profile.delta(),
            profile.big_delta(),
            profile.fatness().unwrap(),
        );
        // Theorem 4.2 holds at every instant of the motion.
        assert!(profile.fatness().unwrap() <= bounds::fatness_bound(beta).unwrap() + 1e-6);
    }

    // Summarise the dynamics: handovers and outages along the orbit.
    let mut handovers = 0usize;
    let mut outages = 0usize;
    for w in heard_sequence.windows(2) {
        if w[0] != w[1] {
            handovers += 1;
        }
        if w[1].is_none() {
            outages += 1;
        }
    }
    println!(
        "\nacross one orbit: {handovers} reception changes, {outages} outage steps — \
         the \"dynamic diagram\" of Section 1.1 in action"
    );
    Ok(())
}
