//! Theorem 3 end-to-end: build the approximate point-location structure,
//! verify its three guarantees, and race it against the naive O(n) query.
//!
//! Run with: `cargo run --release --example point_location`

use sinr_diagrams::core::gen;
use sinr_diagrams::pointloc::qds::verify_qds;
use sinr_diagrams::pointloc::{Located, PointLocator, Qds, QdsConfig};
use sinr_diagrams::prelude::*;
use std::time::Instant;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let net = gen::random_separated_network(7, 12, 8.0, 2.0, 0.01, 2.0)?;
    println!("network: {net}");

    let config = QdsConfig::with_epsilon(0.2);
    let t0 = Instant::now();
    let locator = PointLocator::build(&net, &config)?;
    println!(
        "built DS for n={} in {:.1?}: {} uncertainty cells total",
        net.len(),
        t0.elapsed(),
        locator.total_question_cells()
    );

    // --- Verify the Theorem 3 guarantees per station ---------------------
    println!("\nper-station guarantees (ε = {}):", config.epsilon);
    println!("  station | T? cells | area(H?) | ε·area(H) | H+⊆H | H−∩H=∅");
    for i in net.ids() {
        let qds = Qds::build(&net, i, &config)?;
        let v = verify_qds(&net, &qds, &config, 81);
        println!(
            "  {:7} | {:8} | {:8.4} | {:9.4} | {:4} | {}",
            i.to_string(),
            qds.question_cell_count(),
            v.question_area,
            v.epsilon * v.zone_area,
            v.plus_violations == 0,
            v.minus_violations == 0,
        );
    }

    // --- Query showdown: DS (O(log n)) vs naive (O(n)) -------------------
    let queries: Vec<Point> = {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(99);
        (0..100_000)
            .map(|_| Point::new(rng.gen_range(-10.0..10.0), rng.gen_range(-10.0..10.0)))
            .collect()
    };

    let t0 = Instant::now();
    let mut located = [0usize; 3];
    for q in &queries {
        match locator.locate(*q) {
            Located::Reception(_) => located[0] += 1,
            Located::Uncertain(_) => located[1] += 1,
            Located::Silent => located[2] += 1,
        }
    }
    let ds_time = t0.elapsed();

    let t0 = Instant::now();
    let mut naive_heard = 0usize;
    for q in &queries {
        if net.heard_at(*q).is_some() {
            naive_heard += 1;
        }
    }
    let naive_time = t0.elapsed();

    println!("\n{} queries:", queries.len());
    println!(
        "  DS    : {:.1?} ({:.0} ns/query) → reception {} / uncertain {} / silent {}",
        ds_time,
        ds_time.as_nanos() as f64 / queries.len() as f64,
        located[0],
        located[1],
        located[2]
    );
    println!(
        "  naive : {:.1?} ({:.0} ns/query) → heard {}",
        naive_time,
        naive_time.as_nanos() as f64 / queries.len() as f64,
        naive_heard
    );
    println!(
        "  agreement: DS definite answers are consistent (reception ≤ naive ≤ reception+uncertain): {}",
        located[0] <= naive_heard && naive_heard <= located[0] + located[1]
    );
    Ok(())
}
