//! A mobile-station client streaming against the query server: the
//! workload the streaming protocol exists for.
//!
//! One session, one engine server-side: each timestep ships a `Mutate`
//! frame (the interferer moves in place — the server patches its
//! engine from the emitted deltas, no rebuilds) followed by a
//! `LocateBatch` burst of probe receivers. The client mirrors the
//! network locally and verifies every burst bit-for-bit against a
//! fresh `ExactScan` at the same revision.
//!
//! Modes:
//!
//! * no arguments — spawn an in-process server on an ephemeral port and
//!   stream against it (what CI's example smoke loop runs);
//! * `--connect ADDR` — stream against an external `query_server`
//!   (the client half of the CI client/server pair smoke).
//!
//! Run with: `cargo run --release --example query_client -- --connect 127.0.0.1:7878`

use sinr_diagrams::prelude::*;
use sinr_diagrams::server::{
    BackendId, Client, NetworkSpec, ResilientClient, RetryPolicy, Server, ServerConfig,
};
use std::time::{Duration, Instant};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let connect = args
        .iter()
        .position(|a| a == "--connect")
        .map(|i| args.get(i + 1).cloned().ok_or("--connect needs an address"))
        .transpose()?;

    let (addr, handle) = match connect {
        Some(addr) => (addr, None),
        None => {
            let server = Server::bind("127.0.0.1:0")?;
            let handle = server.spawn()?;
            println!(
                "no --connect given; spawned an in-process server on {}",
                handle.addr()
            );
            (handle.addr().to_string(), Some(handle))
        }
    };

    // Two fixed stations, one orbiting interferer (the dynamic workload
    // of examples/mobile_stations.rs, now over the wire).
    let orbit_radius = 2.2;
    let steps = 24usize;
    let orbit = |k: usize| {
        let theta = std::f64::consts::TAU * k as f64 / steps as f64;
        Point::new(orbit_radius * theta.cos(), orbit_radius * theta.sin())
    };
    let mut mirror = Network::uniform(
        vec![Point::new(-3.0, 0.0), Point::new(3.0, 0.0), orbit(0)],
        0.02,
        1.8,
    )?;

    let probes: Vec<Point> = (0..2048)
        .map(|k| Point::new((k % 64) as f64 * 0.125 - 4.0, (k / 64) as f64 * 0.25 - 4.0))
        .collect();

    // Brief connect retry: when the pair is launched together (the CI
    // smoke step backgrounds the server), the server may not be
    // listening yet on the first attempt.
    let mut client = {
        let mut attempt = 0;
        loop {
            match Client::connect(&addr) {
                Ok(client) => break client,
                Err(e) if attempt < 20 => {
                    attempt += 1;
                    eprintln!("connect attempt {attempt} to {addr} failed ({e}); retrying");
                    std::thread::sleep(std::time::Duration::from_millis(250));
                }
                Err(e) => return Err(e.into()),
            }
        }
    };
    let mut revision = client.bind_network(BackendId::SimdScan, 0.0, &mirror)?;
    println!(
        "bound simd_scan on {} ({} stations); streaming {steps} timesteps × {} probes",
        addr,
        mirror.len(),
        probes.len()
    );

    let start = Instant::now();
    let mut handovers = 0usize;
    let mut last: Option<Vec<Located>> = None;
    for k in 1..=steps {
        // Timestep: move the interferer in place, server-side and in the
        // local mirror, fenced at the current revision.
        let op = SurgeryOp::Move {
            id: StationId(2),
            to: orbit(k % steps),
        };
        mirror.apply_op(&op)?;
        revision = client.mutate(revision, &[op])?;
        assert_eq!(revision, mirror.revision(), "revision fence");

        let (rev, answers) = client.locate_batch(&probes)?;
        assert_eq!(rev, revision, "answers fenced at the mutated revision");

        // Differential check: bit-for-bit against a fresh local engine
        // at the same revision.
        let local = ExactScan::new(&mirror);
        let mut expected = vec![Located::Silent; probes.len()];
        local.locate_batch(&probes, &mut expected);
        // SimdScan vs ExactScan may only differ within rounding of a
        // SINR = β boundary; on this probe grid they agree exactly —
        // assert it so drift gets caught.
        assert_eq!(
            answers, expected,
            "timestep {k}: server diverged from local ExactScan"
        );

        if let Some(prev) = &last {
            handovers += prev.iter().zip(&answers).filter(|(a, b)| a != b).count();
        }
        last = Some(answers);
    }
    let elapsed = start.elapsed();
    let total_points = steps * probes.len();
    println!(
        "{} timesteps, {} points answered+verified in {:.1} ms ({:.0} points/s end-to-end, incl. mutate frames)",
        steps,
        total_points,
        elapsed.as_secs_f64() * 1e3,
        total_points as f64 / elapsed.as_secs_f64()
    );
    println!("{handovers} probe handovers observed across the orbit; every batch bit-identical to the local mirror");

    // Pipelined phase (PR 5): the same session now keeps several
    // `LocateBatch` frames in flight. The session loop answers strictly
    // in request order, so the answers must be bit-identical to the
    // request/response loop above — only the idle gap between bursts
    // changes.
    let (_, reference) = client.locate_batch(&probes)?;
    let bursts: Vec<&[Point]> = (0..6).map(|_| probes.as_slice()).collect();
    let start = Instant::now();
    let piped = client.locate_batches_pipelined(&bursts, 4)?;
    let elapsed = start.elapsed();
    for (rev, answers) in &piped {
        assert_eq!(
            *rev, revision,
            "pipelined answers fenced at the final revision"
        );
        assert_eq!(
            answers, &reference,
            "pipelined answers diverged from request/response"
        );
    }
    println!(
        "pipelined: {} bursts × {} probes, window 4 (byte-budgeted), {:.1} ms ({:.0} points/s) — answers identical to request/response",
        bursts.len(),
        probes.len(),
        elapsed.as_secs_f64() * 1e3,
        (bursts.len() * probes.len()) as f64 / elapsed.as_secs_f64()
    );

    // Shared phase (PR 7, in-process mode only — the external pair
    // partner serves exactly one connection): publish the final network
    // under a name and attach a second session to it. Both sessions now
    // answer from the same shared engine snapshot, and the attached one
    // is verified against the same local mirror.
    if handle.is_some() {
        client.register_network("orbit", &mirror)?;
        let mut observer = Client::connect(&addr)?;
        let rev = observer.attach("orbit", BackendId::VoronoiAssisted, 0.0)?;
        let (r, answers) = observer.locate_batch(&probes)?;
        assert_eq!(r, rev);
        let local = ExactScan::new(&mirror);
        let mut expected = vec![Located::Silent; probes.len()];
        local.locate_batch(&probes, &mut expected);
        assert_eq!(
            answers, expected,
            "attached observer diverged from the mirror"
        );
        println!(
            "attached observer on shared network 'orbit': {} probes verified against the mirror",
            probes.len()
        );
        drop(observer);
    }

    drop(client);
    if let Some(handle) = handle {
        handle.shutdown();
        println!("in-process server shut down cleanly");
        resilient_demo(&mirror)?;
    }
    Ok(())
}

/// Resilience phase (PR 10, in-process mode only): stream the same
/// fenced mutate/locate workload through a [`ResilientClient`] against
/// a server that *evicts* idle sessions every 100 ms — every nap
/// between timesteps costs the connection, and the client silently
/// reconnects, re-binds its private network from the mirror, and
/// carries on. The differential check proves the restored sessions
/// answer for exactly the mutated network: no timestep is lost or
/// applied twice across any reconnect.
fn resilient_demo(start_net: &Network) -> Result<(), Box<dyn std::error::Error>> {
    let server = Server::bind("127.0.0.1:0")?.with_config(ServerConfig {
        idle_deadline: Some(Duration::from_millis(100)),
        ..ServerConfig::default()
    });
    let handle = server.spawn()?;
    println!(
        "resilience demo: server on {} evicting sessions idle > 100 ms",
        handle.addr()
    );

    let mut mirror = NetworkSpec::of(start_net).build()?;
    let mut client = ResilientClient::connect(handle.addr(), RetryPolicy::default())?;
    client.bind_network(BackendId::SimdScan, 0.0, &mirror)?;

    let probes: Vec<Point> = (0..512)
        .map(|k| Point::new((k % 32) as f64 * 0.25 - 4.0, (k / 32) as f64 * 0.5 - 4.0))
        .collect();
    for k in 1..=4u32 {
        // Nap past the idle deadline: the server kills this session.
        std::thread::sleep(Duration::from_millis(300));
        let op = SurgeryOp::SetPower {
            id: StationId(0),
            power: 1.0 + f64::from(k) * 0.2,
        };
        mirror.apply_op(&op)?;
        client.mutate(&[op])?;
        let (_, answers) = client.locate_batch(&probes)?;
        let local = ExactScan::new(&mirror);
        let mut expected = vec![Located::Silent; probes.len()];
        local.locate_batch(&probes, &mut expected);
        assert_eq!(answers, expected, "timestep {k} diverged after reconnect");
    }
    println!(
        "4 timesteps verified across {} transparent reconnects; every mutation applied exactly once",
        client.reconnects()
    );
    drop(client);
    handle.shutdown();
    println!("resilience-demo server shut down cleanly");
    Ok(())
}
