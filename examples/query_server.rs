//! The streaming query server as a runnable binary.
//!
//! Modes:
//!
//! * no arguments — **self-demo**: bind an ephemeral port, drive a short
//!   TCP client session against it in-process (private `Bind` first,
//!   then a shared `Register`/`Attach` round with concurrent sessions
//!   on one named network), shut down (what CI's example smoke loop
//!   runs);
//! * `--serve-one [--listen ADDR]` — accept exactly one connection,
//!   serve it to completion, exit (the server half of the CI
//!   client/server pair smoke);
//! * `--listen ADDR` — serve forever, thread per connection;
//! * `--listen ADDR --pool N` — serve forever on a fixed pool of N
//!   worker threads multiplexing every connection (the
//!   many-light-clients mode).
//!
//! Run with: `cargo run --release --example query_server -- --listen 127.0.0.1:7878 --pool 4`

use sinr_diagrams::prelude::*;
use sinr_diagrams::server::{BackendId, Client, ClientError, ErrorCode, Server, ServerConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let listen = args
        .iter()
        .position(|a| a == "--listen")
        .map(|i| args.get(i + 1).cloned().ok_or("--listen needs an address"))
        .transpose()?;
    let serve_one = args.iter().any(|a| a == "--serve-one");
    let pool: Option<usize> = args
        .iter()
        .position(|a| a == "--pool")
        .map(|i| {
            args.get(i + 1)
                .ok_or("--pool needs a worker count")?
                .parse()
                .map_err(|e| format!("--pool: {e}"))
        })
        .transpose()?;

    match (listen, serve_one) {
        (addr, true) => {
            let server = Server::bind(addr.as_deref().unwrap_or("127.0.0.1:0"))?;
            println!("serving one session on {}", server.local_addr()?);
            server.serve_sessions(1)?;
            println!("session complete; exiting");
        }
        (Some(addr), false) => {
            let server = Server::bind(addr.as_str())?;
            let local = server.local_addr()?;
            // The background accept loop serves sessions concurrently
            // (serve_sessions(1) would serialize clients); this thread
            // only has to stay alive.
            let _handle = match pool {
                Some(workers) => {
                    println!("serving on {local} ({workers}-worker pool; ctrl-c to stop)");
                    server.spawn_pooled(workers)?
                }
                None => {
                    println!("serving on {local} (thread per connection; ctrl-c to stop)");
                    server.spawn()?
                }
            };
            loop {
                std::thread::park();
            }
        }
        (None, false) => self_demo()?,
    }
    Ok(())
}

/// Everything over one ephemeral TCP port: bind a network, stream a
/// batch, mutate in place, stream again — the round trip CI smokes.
fn self_demo() -> Result<(), Box<dyn std::error::Error>> {
    let server = Server::bind("127.0.0.1:0")?;
    let handle = server.spawn()?;
    println!("self-demo server on {}", handle.addr());

    let net = Network::builder()
        .station(Point::new(-2.0, 0.0))
        .station(Point::new(2.0, 0.0))
        .station(Point::new(0.0, 3.0))
        .background_noise(0.01)
        .threshold(1.5)
        .build()?;

    let mut client = Client::connect(handle.addr())?;
    let revision = client.bind_network(BackendId::VoronoiAssisted, 0.0, &net)?;
    println!("bound voronoi_assisted at revision {revision}");

    let probes: Vec<Point> = (0..1000)
        .map(|k| Point::new((k % 40) as f64 * 0.2 - 4.0, (k / 40) as f64 * 0.3 - 3.0))
        .collect();
    let (rev, answers) = client.locate_batch(&probes)?;
    let heard = answers.iter().filter(|a| a.station().is_some()).count();
    println!(
        "locate_batch: {heard}/{} probes in some reception zone (revision {rev})",
        probes.len()
    );

    // Differential check against the local ground truth.
    let local = ExactScan::new(&net);
    for (p, a) in probes.iter().zip(&answers) {
        assert_eq!(*a, local.locate(*p), "server answer diverged at {p}");
    }
    println!(
        "all {} answers bit-identical to a local ExactScan",
        probes.len()
    );

    let rev = client.mutate(
        rev,
        &[SurgeryOp::Move {
            id: StationId(2),
            to: Point::new(1.0, -2.0),
        }],
    )?;
    let (rev2, after) = client.locate_batch(&probes)?;
    assert_eq!(rev2, rev);
    let moved = net.with_station_moved(StationId(2), Point::new(1.0, -2.0))?;
    let local = ExactScan::new(&moved);
    for (p, a) in probes.iter().zip(&after) {
        assert_eq!(*a, local.locate(*p), "post-mutate answer diverged at {p}");
    }
    let changed = answers.iter().zip(&after).filter(|(a, b)| a != b).count();
    println!(
        "after moving s2 in place: {changed} probes changed zone (revision {rev}); verified again"
    );

    // Shared phase (PR 7): publish the mutated network under a name and
    // let several sessions answer from ONE shared engine snapshot —
    // versus the private engine each `Bind` above built for itself.
    let rev = client.register_network("demo", &moved)?;
    println!("registered the current network as 'demo' (revision {rev})");
    let mut attached: Vec<Client<_>> = (0..3)
        .map(|_| {
            let mut c = Client::connect(handle.addr())?;
            c.attach("demo", BackendId::SimdScan, 0.0)?;
            Ok::<_, Box<dyn std::error::Error>>(c)
        })
        .collect::<Result<_, _>>()?;
    for (i, c) in attached.iter_mut().enumerate() {
        let (rev, answers) = c.locate_batch(&probes)?;
        assert_eq!(rev, 0, "fresh name starts at revision 0");
        let heard = answers.iter().filter(|a| a.station().is_some()).count();
        println!(
            "attached session {i}: {heard}/{} probes heard",
            probes.len()
        );
    }
    let shared = handle
        .registry()
        .get("demo")
        .expect("the registered network");
    println!(
        "{} attached sessions share {} engine store(s): memory scales with (network, backend), not sessions",
        attached.len(),
        shared.store_count()
    );
    // One session mutates the named network; everyone observes the new
    // revision on their next request (RCU snapshot publication).
    let rev = attached[0].mutate(
        0,
        &[SurgeryOp::SetPower {
            id: StationId(0),
            power: 1.5,
        }],
    )?;
    for c in &mut attached {
        let (r, _) = c.locate_batch(&probes)?;
        assert_eq!(r, rev, "every attached session observes the mutation");
    }
    println!("one Mutate on 'demo' published revision {rev} to all attached sessions");

    drop(attached);
    drop(client);
    handle.shutdown();
    println!("server shut down cleanly");

    // Hardened phase (PR 10): the same server with a `ServerConfig` —
    // a connection cap plus session deadlines. Past the cap, a new
    // connection is shed with ONE typed `Overloaded` frame before any
    // request byte is read, which is what makes retrying it
    // unconditionally safe.
    let capped = Server::bind("127.0.0.1:0")?.with_config(ServerConfig {
        max_connections: Some(2),
        idle_deadline: Some(std::time::Duration::from_secs(30)),
        frame_deadline: Some(std::time::Duration::from_secs(5)),
        ..ServerConfig::default()
    });
    let capped = capped.spawn()?;
    println!(
        "hardened server on {} (cap 2, idle 30s, frame 5s)",
        capped.addr()
    );
    let holders: Vec<Client<_>> = (0..2)
        .map(|_| {
            let mut c = Client::connect(capped.addr())?;
            c.bind_network(BackendId::ExactScan, 0.0, &moved)?;
            Ok::<_, Box<dyn std::error::Error>>(c)
        })
        .collect::<Result<_, _>>()?;
    let mut third = Client::connect(capped.addr())?;
    match third.bind_network(BackendId::ExactScan, 0.0, &moved) {
        Err(ClientError::Server {
            code: ErrorCode::Overloaded,
            ..
        }) => {
            println!("third connection shed with typed Overloaded: nothing processed, retry-safe")
        }
        other => return Err(format!("expected an Overloaded shed, got {other:?}").into()),
    }
    drop(third);
    drop(holders);
    let abandoned = capped.shutdown();
    assert_eq!(abandoned, 0, "bounded shutdown leaked a session");
    println!("hardened server shut down cleanly (0 sessions abandoned)");
    Ok(())
}
