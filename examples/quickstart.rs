//! Quickstart: build a network, inspect reception, answer a batch of
//! queries through the engine, draw the diagram, and run approximate
//! point location.
//!
//! Run with: `cargo run --example quickstart`

use sinr_diagrams::prelude::*;
use sinr_diagrams::{core::bounds, diagram::render};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- 1. A uniform power network (the paper's setting) ---------------
    // Three stations, background noise N = 0.02, reception threshold β = 2,
    // path loss α = 2.
    let net = Network::builder()
        .station(Point::new(-2.0, 0.0))
        .station(Point::new(2.5, 0.5))
        .station(Point::new(0.0, 3.0))
        .background_noise(0.02)
        .threshold(2.0)
        .build()?;
    println!("network: {net}");

    // --- 2. Pointwise reception -----------------------------------------
    let p = Point::new(-1.2, 0.3);
    for i in net.ids() {
        println!(
            "  SINR({i}, {p}) = {:8.4}  heard: {}",
            net.sinr(i, p),
            net.is_heard(i, p)
        );
    }
    println!("  heard_at({p}) = {:?}", net.heard_at(p));

    // --- 2b. Batched queries through the engine --------------------------
    // Build once (SoA layout + weighted kd-tree dispatch: nearest
    // station under uniform power per Observation 2.2, the
    // power-diagram cell otherwise), then answer many points in one
    // work-stolen parallel pass: O(n) per point instead of the scalar
    // O(n²).
    let engine = net.query_engine();
    let receivers: Vec<Point> = (-20..=20)
        .flat_map(|a| (-20..=20).map(move |b| Point::new(a as f64 * 0.25, b as f64 * 0.25)))
        .collect();
    let mut answers = vec![Located::Silent; receivers.len()];
    engine.locate_batch(&receivers, &mut answers);
    let mut heard = vec![0usize; net.len()];
    let mut silent = 0usize;
    for a in &answers {
        match a.station() {
            Some(i) => heard[i.index()] += 1,
            None => silent += 1,
        }
    }
    // The tree serves every power assignment — no exact-scan fallback.
    assert!(engine.uses_proximity_dispatch());
    println!(
        "\nbatched {} receivers through kd-tree dispatch: per-station {:?}, silent {}",
        receivers.len(),
        heard,
        silent,
    );

    // --- 2c. The vectorized backend --------------------------------------
    // SimdScan runs the same exact scan several stations per instruction
    // (8-lane AVX-512 or 4-lane AVX2 when the CPU has them, detected
    // once at build; portable fallback otherwise). Same trait, same
    // answers. Batches of ≥ 2048 points against ≥ 128 stations
    // additionally run through the spatially-coherent tiled executor
    // (Morton tiles + certified candidate pruning — see the
    // `sinr_core::engine` "execution model" docs); answers stay
    // bit-identical to the serial path either way.
    let simd = SimdScan::new(&net);
    let mut simd_answers = vec![Located::Silent; receivers.len()];
    simd.locate_batch(&receivers, &mut simd_answers);
    assert_eq!(simd_answers, answers, "backends agree through QueryEngine");
    println!(
        "SimdScan ({} kernel, {} lanes) agrees on all {} receivers",
        simd.kernel().name(),
        simd.kernel().lanes(),
        receivers.len(),
    );

    // --- 3. Zone geometry: δ, Δ, fatness (Theorems 2, 4.1, 4.2) ---------
    for i in net.ids() {
        let zone = net.reception_zone(i);
        let profile = zone.radial_profile(180).expect("bounded zones");
        let zb = bounds::zone_bounds(&net, i);
        println!(
            "  {i}: δ={:.4} (≥{:.4}), Δ={:.4} (≤{:.4}), φ={:.3} (≤{:.3})",
            profile.delta(),
            zb.delta_lower,
            profile.big_delta(),
            zb.delta_upper.unwrap_or(f64::INFINITY),
            profile.fatness().unwrap(),
            zb.fatness_const.unwrap(),
        );
    }

    // --- 4. The SINR diagram as ASCII art --------------------------------
    let map = ReceptionMap::compute(&net, BBox::centered_square(6.0), 72, 36);
    println!("\nSINR diagram (stations 0,1,2; '.' = silence):");
    print!("{}", render::ascii(&map));

    // --- 5. Approximate point location (Theorem 3) -----------------------
    let locator = sinr_diagrams::pointloc::PointLocator::build(
        &net,
        &sinr_diagrams::pointloc::QdsConfig::with_epsilon(0.2),
    )?;
    println!(
        "\npoint location (ε = 0.2, {} uncertainty cells):",
        locator.total_question_cells()
    );
    for q in [
        Point::new(-1.8, 0.1),
        Point::new(0.4, 0.9),
        Point::new(5.0, -4.0),
    ] {
        println!("  locate({q}) = {:?}", locator.locate(q));
    }
    Ok(())
}
