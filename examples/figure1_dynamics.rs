//! Figure 1 of the paper: reception is *dynamic* — moving one station or
//! silencing another flips what a fixed receiver hears.
//!
//! Panel A: p hears s2. Panel B: s1 moves next to p — silence. Panel C:
//! same placement, s3 silenced — p hears s1.
//!
//! The panel-by-panel narration uses the paper's immutable scenes; the
//! churn half then replays the same story on the **dynamic path**: one
//! network mutated in place (`move_station`, `remove_station`), one
//! engine following through incremental `NetworkDelta::apply`, and every
//! panel's reception map rasterised through that single engine.
//!
//! Run with: `cargo run --example figure1_dynamics`

use sinr_diagrams::core::engine::VoronoiAssisted;
use sinr_diagrams::diagram::figures::figure1;
use sinr_diagrams::diagram::render;
use sinr_diagrams::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let fig = figure1();
    let panels = [
        ("(A) initial placement", &fig.panel_a),
        ("(B) s1 moved next to p", &fig.panel_b),
        ("(C) as (B), s3 silent", &fig.panel_c),
    ];

    println!("receiver p = {}", fig.receiver);
    for (title, net) in panels {
        let heard = net.heard_at(fig.receiver);
        println!("\n=== {title} ===");
        for i in net.ids() {
            println!(
                "  {} at {}  SINR(p) = {:.3}",
                i,
                net.position(i),
                net.sinr(i, fig.receiver)
            );
        }
        match heard {
            Some(i) => println!("  → p hears {i}"),
            None => println!("  → p hears nothing"),
        }
        let map = ReceptionMap::compute(net, fig.window, 72, 36);
        print!("{}", render::ascii(&map));
    }

    println!("\npaper narration reproduced:");
    println!("  (A) p hears s2: {:?}", fig.panel_a.heard_at(fig.receiver));
    println!(
        "  (B) p hears nothing: {:?}",
        fig.panel_b.heard_at(fig.receiver)
    );
    println!("  (C) p hears s1: {:?}", fig.panel_c.heard_at(fig.receiver));

    // --- The churn half: the same story as in-place surgery -------------
    //
    // Panels B and C differ from A by exactly two ops: move s1 (index 0)
    // next to p, then silence s3 (index 2). Instead of three networks and
    // three engines, mutate ONE network and keep ONE engine in sync via
    // deltas; a skipped `apply` would make the next query panic with a
    // revision mismatch rather than answer stale.
    println!("\n=== the same dynamics, replayed as in-place churn ===");
    let mut net = fig.panel_a.clone();
    let mut engine = VoronoiAssisted::new(&net);
    let s1 = StationId(0);
    let s3 = StationId(2);

    println!(
        "  A  (revision {}): p hears {:?}",
        engine.revision(),
        engine.locate(fig.receiver).station()
    );

    let delta = net.move_station(s1, fig.panel_b.position(s1))?;
    engine.apply(&delta)?;
    println!(
        "  →B (revision {}, applied {:?} delta): p hears {:?}",
        engine.revision(),
        "Move",
        engine.locate(fig.receiver).station()
    );
    let map_b = ReceptionMap::compute_with_engine(&engine, fig.window, 72, 36);
    print!("{}", render::ascii(&map_b));

    let delta = net.remove_station(s3)?;
    engine.apply(&delta)?;
    println!(
        "  →C (revision {}, applied {:?} delta): p hears {:?}",
        engine.revision(),
        "Remove",
        engine.locate(fig.receiver).station()
    );
    let map_c = ReceptionMap::compute_with_engine(&engine, fig.window, 72, 36);
    print!("{}", render::ascii(&map_c));

    // The incrementally reached states match the paper's prebuilt panels.
    assert_eq!(net, fig.panel_c);
    assert_eq!(
        engine.locate(fig.receiver).station(),
        fig.panel_c.heard_at(fig.receiver)
    );
    println!(
        "  churn ≡ panels: the in-place network equals panel C and the engine \
         answered every panel without a single rebuild"
    );
    Ok(())
}
