//! Figure 1 of the paper: reception is *dynamic* — moving one station or
//! silencing another flips what a fixed receiver hears.
//!
//! Panel A: p hears s2. Panel B: s1 moves next to p — silence. Panel C:
//! same placement, s3 silenced — p hears s1.
//!
//! Run with: `cargo run --example figure1_dynamics`

use sinr_diagrams::diagram::figures::figure1;
use sinr_diagrams::diagram::render;
use sinr_diagrams::prelude::*;

fn main() {
    let fig = figure1();
    let panels = [
        ("(A) initial placement", &fig.panel_a),
        ("(B) s1 moved next to p", &fig.panel_b),
        ("(C) as (B), s3 silent", &fig.panel_c),
    ];

    println!("receiver p = {}", fig.receiver);
    for (title, net) in panels {
        let heard = net.heard_at(fig.receiver);
        println!("\n=== {title} ===");
        for i in net.ids() {
            println!(
                "  {} at {}  SINR(p) = {:.3}",
                i,
                net.position(i),
                net.sinr(i, fig.receiver)
            );
        }
        match heard {
            Some(i) => println!("  → p hears {i}"),
            None => println!("  → p hears nothing"),
        }
        let map = ReceptionMap::compute(net, fig.window, 72, 36);
        print!("{}", render::ascii(&map));
    }

    println!("\npaper narration reproduced:");
    println!("  (A) p hears s2: {:?}", fig.panel_a.heard_at(fig.receiver));
    println!(
        "  (B) p hears nothing: {:?}",
        fig.panel_b.heard_at(fig.receiver)
    );
    println!("  (C) p hears s1: {:?}", fig.panel_c.heard_at(fig.receiver));
}
